#!/usr/bin/env python3
"""Dependence analysis: why the paper's machines behave as they do.

For each Livermore loop this prints:

* the dependence-distance distribution (§6.2's lens: long distances are
  exactly the cases the no-bypass RUU pays for),
* the dataflow limit (critical-path bound with infinite resources),
* how close each machine gets to that limit.

Run:  python examples/dependence_analysis.py [loop numbers...]
"""

import sys

from repro import ENGINE_FACTORIES, MachineConfig
from repro.analysis import dataflow_limit, distance_summary
from repro.trace import FunctionalExecutor
from repro.workloads import LIVERMORE_FACTORIES

ENGINES = ["simple", "rstu", "ruu-bypass", "ruu-nobypass"]


def analyze(number: int) -> None:
    workload = LIVERMORE_FACTORIES[number]()
    executor = FunctionalExecutor(workload.program, workload.make_memory())
    trace = executor.run()
    limit = dataflow_limit(trace)

    print(f"=== {workload.name}: {workload.description} ===")
    print(distance_summary(trace))
    print(f"dataflow limit: {limit.describe()}")
    config = MachineConfig(window_size=20)
    for name in ENGINES:
        engine = ENGINE_FACTORIES[name](
            workload.program, config, workload.make_memory()
        )
        result = engine.run()
        fraction = limit.critical_path_cycles / result.cycles
        print(
            f"  {name:>14s}: {result.cycles:6d} cycles "
            f"(rate {result.issue_rate:.3f}, "
            f"{fraction:5.1%} of the dataflow limit)"
        )
    print()


def main(argv) -> None:
    numbers = [int(arg) for arg in argv[1:]] or [3, 5, 7, 12]
    for number in numbers:
        analyze(number)
    print(
        "Reading guide: serial kernels (LLL5, LLL11) sit close to their\n"
        "dataflow limit on every machine -- there is nothing for\n"
        "out-of-order issue to find.  Parallel kernels (LLL7, LLL12)\n"
        "have high ideal IPC, and the gap between the simple machine\n"
        "and the RUU is exactly the parallelism the paper's mechanism\n"
        "recovers."
    )


if __name__ == "__main__":
    main(sys.argv)
