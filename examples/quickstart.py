#!/usr/bin/env python3
"""Quickstart: assemble a program, run it on the RUU, inspect results.

Run:  python examples/quickstart.py
"""

from repro import (
    A,
    BypassMode,
    MachineConfig,
    Memory,
    RUUEngine,
    S,
    SimpleEngine,
    assemble,
    reference_state,
    speedup,
)

# A small kernel in the model ISA: scale an array by 2.5 and sum it.
SOURCE = """
        A_IMM A1, 100        ; input pointer
        A_IMM A2, 200        ; output pointer
        S_IMM S3, 2.5        ; scale factor
        S_IMM S4, 0.0        ; running sum
        A_IMM A0, 16         ; trip count
    loop:
        LOAD_S S1, A1[0]
        A_ADDI A1, A1, 1
        A_ADDI A0, A0, -1
        F_MUL  S2, S1, S3
        F_ADD  S4, S4, S2
        STORE_S A2[0], S2
        A_ADDI A2, A2, 1
        BR_NONZERO A0, loop
        HALT
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    print("=== program listing ===")
    print(program.listing())

    # Input data lives in a word-addressed memory.
    def fresh_memory() -> Memory:
        memory = Memory()
        memory.write_array(100, [float(i) for i in range(16)])
        return memory

    # The golden model: architectural execution, no timing.
    golden = reference_state(program, fresh_memory())
    print(f"\ngolden model executed {golden.executed} instructions; "
          f"sum = {golden.regs.read(S(4))}")

    # The Table 1 baseline: in-order blocking issue.
    base_memory = fresh_memory()
    baseline = SimpleEngine(program, MachineConfig(),
                            memory=base_memory).run()
    print(f"\n{baseline.describe()}")

    # The paper's machine: a 12-entry RUU with bypass logic.
    ruu_memory = fresh_memory()
    engine = RUUEngine(
        program,
        MachineConfig(window_size=12),
        memory=ruu_memory,
        bypass=BypassMode.FULL,
    )
    result = engine.run()
    print(result.describe())
    print(f"speedup over simple issue: {speedup(baseline, result):.2f}x")

    # Both engines computed exactly the golden state.
    assert engine.regs == golden.regs
    assert ruu_memory == golden.memory
    print("\narchitectural state matches the golden model on both engines")
    print(f"output array: {ruu_memory.read_array(200, 16)}")


if __name__ == "__main__":
    main()
