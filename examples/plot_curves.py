#!/usr/bin/env python3
"""Plot the paper's speedup curves as terminal ASCII charts.

Runs reduced-grid versions of Tables 2 and 4-6 and renders the four
mechanisms on one chart -- the saturating shapes and the
full > limited > none bypass ordering are visible at a glance.

Run:  python examples/plot_curves.py
"""

from repro import ENGINE_FACTORIES, run_suite, sweep_sizes
from repro.analysis import ascii_chart
from repro.workloads import all_loops

SIZES = [3, 5, 8, 12, 20, 30, 50]


def main() -> None:
    loops = all_loops()
    baseline = run_suite(ENGINE_FACTORIES["simple"], loops)
    curves = {}
    for engine in ("rstu", "ruu-bypass", "ruu-limited", "ruu-nobypass"):
        sweep = sweep_sizes(engine, SIZES, workloads=loops,
                            baseline=baseline)
        curves[engine] = sweep.speedups()
        print(f"measured {engine}")
    print()
    print(ascii_chart(
        curves,
        width=64,
        height=18,
        title="Speedup over simple issue vs. window entries "
              "(Tables 2, 4, 5, 6)",
        y_label="window entries",
    ))


if __name__ == "__main__":
    main()
