#!/usr/bin/env python3
"""Exhaustive fault-injection campaigns across the Livermore loops.

For each loop, inject a page fault at (a sample of) every distinct data
address it touches; verify at every site that the RUU's interrupt is
precise and that servicing + resuming reaches the fault-free state --
the strongest form of the paper's §5 claim.

Run:  python examples/fault_campaign.py [loop numbers...]
"""

import sys

from repro import BypassMode, MachineConfig, RUUEngine
from repro.core import fault_injection_campaign
from repro.workloads import LIVERMORE_FACTORIES

CONFIG = MachineConfig(window_size=12)


def main(argv) -> None:
    numbers = [int(arg) for arg in argv[1:]] or [1, 3, 5, 11, 12]
    total_faults = 0
    for number in numbers:
        workload = LIVERMORE_FACTORIES[number]()
        for bypass in (BypassMode.FULL, BypassMode.NONE):
            factory = lambda program, memory: RUUEngine(
                program, CONFIG, memory=memory, bypass=bypass
            )
            result = fault_injection_campaign(
                factory, workload, max_sites=25
            )
            total_faults += result.faults_taken
            print(f"  [{bypass.value:>8s}] {result.describe()}")
            assert result.all_precise and result.all_recovered
    print(
        f"\n{total_faults} faults injected; every one was precise and "
        f"every run resumed to the fault-free final state."
    )


if __name__ == "__main__":
    main(sys.argv)
