#!/usr/bin/env python3
"""Explore the (ILP x memory-intensity) design space with generated
workloads.

The Livermore loops sample fixed points of this space; the synthetic
generator walks it continuously.  This example sweeps both axes and
renders the issue-rate surfaces as ASCII charts -- showing where
out-of-order issue pays (many independent chains, light memory) and
where every machine converges (serial chains, heavy memory traffic).

Run:  python examples/design_space.py
"""

from repro import ENGINE_FACTORIES, MachineConfig
from repro.analysis import ascii_chart
from repro.workloads import GeneratorSpec, generate_workload

ENGINES = ["simple", "rstu", "ruu-bypass"]
CONFIG = MachineConfig(window_size=16)


def issue_rate(engine_name, workload):
    engine = ENGINE_FACTORIES[engine_name](
        workload.program, CONFIG, workload.make_memory()
    )
    return engine.run().issue_rate


def main() -> None:
    print("sweeping independent chains (no memory traffic)...")
    ilp_curves = {engine: {} for engine in ENGINES}
    for streams in (1, 2, 3):
        workload = generate_workload(GeneratorSpec(
            streams=streams, memory_fraction=0.0,
            iterations=24, body_ops=18, seed=11,
        ))
        for engine in ENGINES:
            ilp_curves[engine][streams] = issue_rate(engine, workload)
    print(ascii_chart(
        ilp_curves, width=48, height=14,
        title="issue rate vs independent chains",
        y_label="chains",
    ))
    print()

    print("sweeping memory intensity (3 chains)...")
    mem_curves = {engine: {} for engine in ENGINES}
    for percent in (0, 25, 50, 75):
        workload = generate_workload(GeneratorSpec(
            streams=3, memory_fraction=percent / 100,
            iterations=24, body_ops=18, seed=11,
        ))
        for engine in ENGINES:
            mem_curves[engine][percent] = issue_rate(engine, workload)
    print(ascii_chart(
        mem_curves, width=48, height=14,
        title="issue rate vs % of ops touching memory",
        y_label="% memory",
    ))
    print(
        "\nReading guide: with one chain all machines are pinned to the\n"
        "chain's latency; each added chain widens the out-of-order\n"
        "lead.  Memory traffic drags everyone down but never reorders\n"
        "the mechanisms."
    )


if __name__ == "__main__":
    main()
