#!/usr/bin/env python3
"""Explore the (ILP x memory-intensity) design space with generated
workloads.

The Livermore loops sample fixed points of this space; the synthetic
generator walks it continuously.  This example sweeps both axes and
renders the issue-rate surfaces as ASCII charts -- showing where
out-of-order issue pays (many independent chains, light memory) and
where every machine converges (serial chains, heavy memory traffic).

The whole (engine x workload) grid is one flat bag of independent
simulations, so it goes through the parallel runner; ``--jobs N`` fans
it over N worker processes with identical output.

Run:  python examples/design_space.py [--jobs 4]
"""

import argparse

from repro import MachineConfig
from repro.analysis import ParallelRunner, SimPoint, ascii_chart
from repro.workloads import GeneratorSpec, generate_workload

ENGINES = ["simple", "rstu", "ruu-bypass"]
CONFIG = MachineConfig(window_size=16)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1: serial)")
    args = parser.parse_args()
    runner = ParallelRunner(jobs=args.jobs)

    ilp_workloads = {
        streams: generate_workload(GeneratorSpec(
            streams=streams, memory_fraction=0.0,
            iterations=24, body_ops=18, seed=11,
        ))
        for streams in (1, 2, 3)
    }
    mem_workloads = {
        percent: generate_workload(GeneratorSpec(
            streams=3, memory_fraction=percent / 100,
            iterations=24, body_ops=18, seed=11,
        ))
        for percent in (0, 25, 50, 75)
    }

    # One flat fan-out over every (engine, workload) point; results come
    # back in submission order, so indexing below is deterministic.
    points = []
    for workload in ilp_workloads.values():
        points.extend(SimPoint(engine, workload, CONFIG)
                      for engine in ENGINES)
    for workload in mem_workloads.values():
        points.extend(SimPoint(engine, workload, CONFIG)
                      for engine in ENGINES)
    print(f"running {len(points)} simulation points "
          f"({runner.jobs} jobs)...")
    results = iter(runner.run_points(points))

    print("sweeping independent chains (no memory traffic)...")
    ilp_curves = {engine: {} for engine in ENGINES}
    for streams in ilp_workloads:
        for engine in ENGINES:
            ilp_curves[engine][streams] = next(results).issue_rate
    print(ascii_chart(
        ilp_curves, width=48, height=14,
        title="issue rate vs independent chains",
        y_label="chains",
    ))
    print()

    print("sweeping memory intensity (3 chains)...")
    mem_curves = {engine: {} for engine in ENGINES}
    for percent in mem_workloads:
        for engine in ENGINES:
            mem_curves[engine][percent] = next(results).issue_rate
    print(ascii_chart(
        mem_curves, width=48, height=14,
        title="issue rate vs % of ops touching memory",
        y_label="% memory",
    ))
    print(
        "\nReading guide: with one chain all machines are pinned to the\n"
        "chain's latency; each added chain widens the out-of-order\n"
        "lead.  Memory traffic drags everyone down but never reorders\n"
        "the mechanisms."
    )


if __name__ == "__main__":
    main()
