#!/usr/bin/env python3
"""Compare every issue mechanism in the repository on real workloads.

Runs the paper's design ladder -- simple issue, Tomasulo, Tag Unit,
RS pool, RSTU, the three RUU bypass variants, the speculative RUU, and
the four Smith & Pleszkun precise machines -- on a selection of
Livermore loops, and prints a speedup/issue-rate comparison.

Run:  python examples/compare_issue_mechanisms.py [loop numbers...]
"""

import sys

from repro import ENGINE_FACTORIES, MachineConfig, run_suite
from repro.workloads import LIVERMORE_FACTORIES

ORDER = [
    "simple",
    "dispatch-stack",
    "tomasulo",
    "tagunit",
    "rspool",
    "rstu",
    "ruu-bypass",
    "ruu-limited",
    "ruu-nobypass",
    "spec-ruu",
    "reorder-buffer",
    "rob-bypass",
    "history-buffer",
    "future-file",
]

PRECISE = {
    "ruu-bypass", "ruu-limited", "ruu-nobypass", "spec-ruu",
    "reorder-buffer", "rob-bypass", "history-buffer", "future-file",
}

OOO = {
    "dispatch-stack", "tomasulo", "tagunit", "rspool", "rstu",
    "ruu-bypass", "ruu-limited", "ruu-nobypass", "spec-ruu",
}


def main(argv) -> None:
    numbers = [int(arg) for arg in argv[1:]] or [1, 3, 5, 7, 12]
    workloads = [LIVERMORE_FACTORIES[n]() for n in numbers]
    names = "+".join(w.name for w in workloads)
    config = MachineConfig(window_size=12)

    print(f"workloads: {names}   (window/buffer size 12)\n")
    header = (
        f"{'mechanism':>16s} {'cycles':>9s} {'speedup':>8s} "
        f"{'issue rate':>11s} {'OoO?':>5s} {'precise?':>9s}"
    )
    print(header)
    print("-" * len(header))

    baseline = None
    for name in ORDER:
        result = run_suite(ENGINE_FACTORIES[name], workloads, config)
        if baseline is None:
            baseline = result
        print(
            f"{name:>16s} {result.cycles:9d} "
            f"{baseline.cycles / result.cycles:8.3f} "
            f"{result.issue_rate:11.3f} "
            f"{'yes' if name in OOO else 'no':>5s} "
            f"{'yes' if name in PRECISE else 'no':>9s}"
        )

    print(
        "\nNote the two families: reordering added to an in-order machine "
        "(reorder-buffer rows) costs performance, while the RUU gets "
        "precision and out-of-order speedup from the same structure."
    )


if __name__ == "__main__":
    main(sys.argv)
