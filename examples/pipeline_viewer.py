#!/usr/bin/env python3
"""Watch instructions move through each machine's pipeline.

Attaches a timeline recorder to three machines, runs the same code, and
renders the classic pipeline diagrams side by side -- the difference
between blocking issue, out-of-order completion, and in-order commit is
directly visible.

Run:  python examples/pipeline_viewer.py
"""

from repro import (
    MachineConfig,
    Memory,
    RUUEngine,
    SimpleEngine,
    assemble,
)
from repro.issue import RSTUEngine
from repro.machine import Timeline

SOURCE = """
    A_IMM A1, 100
    A_IMM A0, 3
loop:
    LOAD_S S1, A1[0]      ; 11-cycle memory load
    F_MUL  S2, S1, S1     ; depends on the load
    F_ADD  S3, S3, S2     ; accumulator chain
    STORE_S A1[50], S2
    A_ADDI A1, A1, 1      ; independent address arithmetic
    A_ADDI A0, A0, -1
    BR_NONZERO A0, loop
    HALT
"""


def show(cls, label, **kwargs) -> None:
    program = assemble(SOURCE)
    memory = Memory()
    memory.write_array(100, [1.5, 2.0, 2.5])
    engine = cls(program, MachineConfig(window_size=10), memory=memory,
                 **kwargs)
    engine.timeline = Timeline()
    result = engine.run()
    print(f"=== {label}: {result.cycles} cycles "
          f"(rate {result.issue_rate:.3f}) ===")
    print(engine.timeline.gantt(first=0, last=15, width=68))
    print(engine.timeline.summary())
    print()


def main() -> None:
    show(SimpleEngine, "simple issue (Table 1 baseline)")
    show(RSTUEngine, "RSTU (out-of-order commit; imprecise)")
    show(RUUEngine, "RUU (in-order commit; precise)")
    print(
        "Things to spot: on the simple machine every F_MUL's issue (I)\n"
        "waits for the load; on the RSTU the address arithmetic's C\n"
        "(complete/writeback) happens before older instructions finish\n"
        "-- the imprecision; on the RUU the R (commit) column is\n"
        "strictly diagonal: program order, whatever the C column does."
    )


if __name__ == "__main__":
    main()
