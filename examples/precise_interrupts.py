#!/usr/bin/env python3
"""Demonstrate the paper's core claim: the RUU makes interrupts precise.

Injects a page fault into a Livermore loop's data and runs it on:

1. the simple baseline (in-order issue, out-of-order completion) --
   the interrupted state does NOT match any sequential prefix;
2. the RSTU (out-of-order issue, out-of-order commit) -- worse;
3. the RUU -- the state is exactly the sequential prefix, and the
   program is *restartable*: service the fault, resume, and the final
   state equals a fault-free run.

Run:  python examples/precise_interrupts.py
"""

from repro import (
    BypassMode,
    MachineConfig,
    RSTUEngine,
    RUUEngine,
    SimpleEngine,
    check_precision,
    reference_state,
    run_with_page_fault,
)
from repro.workloads import lll1

CONFIG = MachineConfig(window_size=12)


def main() -> None:
    workload = lll1()
    fault_address = 2005  # y[5] -- read once per loop iteration

    print(f"workload: {workload.name} ({workload.description})")
    print(f"injected page fault at address {fault_address}\n")

    machines = [
        ("simple baseline", lambda p, m: SimpleEngine(p, CONFIG, memory=m)),
        ("RSTU", lambda p, m: RSTUEngine(p, CONFIG, memory=m)),
        ("RUU", lambda p, m: RUUEngine(p, CONFIG, memory=m,
                                       bypass=BypassMode.FULL)),
    ]

    for label, factory in machines:
        engine, record = run_with_page_fault(
            factory, workload.program, workload.initial_memory,
            fault_address,
        )
        report = check_precision(
            engine, workload.program, workload.initial_memory
        )
        print(f"--- {label} ---")
        print(report.describe())
        print()

    # Restartability: the operating-system view.
    print("--- RUU: service the fault and resume ---")
    memory = workload.initial_memory.copy()
    memory.inject_fault(fault_address)
    engine = RUUEngine(workload.program, CONFIG, memory=memory)
    engine.run()
    record = engine.interrupt_record
    print(f"trap taken: {record.describe()}")
    print("servicing: mapping the page and restarting at the trap PC...")
    memory.service_fault(fault_address)
    engine.continue_run()

    clean = reference_state(workload.program, workload.initial_memory)
    assert engine.regs == clean.regs
    assert engine.memory == clean.memory
    failures = workload.validate(engine.memory)
    assert not failures
    print(
        "resumed to completion: final state identical to a fault-free "
        "run, kernel output validated against the NumPy reference."
    )


if __name__ == "__main__":
    main()
