#!/usr/bin/env python3
"""Paper section 7: conditional execution of predicted branch paths.

Compares the blocking-branch RUU against the speculative RUU with three
predictors, on loop-dominated code (predictable) and on data-dependent
branches (hard), in both full-bypass and no-bypass configurations --
speculation matters most when branch conditions resolve late.

Run:  python examples/speculative_execution.py
"""

from repro import (
    BypassMode,
    MachineConfig,
    RUUEngine,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
    TwoBitPredictor,
    aggregate,
    reference_state,
)
from repro.core import AlwaysTakenPredictor
from repro.workloads import branch_heavy, lll3, lll5, lll11

CONFIG = MachineConfig(window_size=20)

PREDICTORS = [
    ("2-bit counters", TwoBitPredictor),
    ("static BTFN", StaticBTFNPredictor),
    ("always taken", AlwaysTakenPredictor),
]


def run_plain(workloads, bypass):
    results = []
    for workload in workloads:
        engine = RUUEngine(workload.program, CONFIG,
                           memory=workload.make_memory(), bypass=bypass)
        results.append(engine.run())
    return aggregate(results)


def run_spec(workloads, bypass, predictor_cls):
    results = []
    for workload in workloads:
        memory = workload.make_memory()
        engine = SpeculativeRUUEngine(
            workload.program, CONFIG, memory=memory, bypass=bypass,
            predictor=predictor_cls(),
        )
        results.append(engine.run())
        golden = reference_state(workload.program, workload.initial_memory)
        assert engine.regs == golden.regs, workload.name
        assert memory == golden.memory, workload.name
    return aggregate(results)


def report(title, workloads) -> None:
    print(f"=== {title} ===")
    for bypass in (BypassMode.FULL, BypassMode.NONE):
        plain = run_plain(workloads, bypass)
        print(f"\n  bypass={bypass.value}")
        print(f"    {'blocking branches':>22s}: {plain.cycles:7d} cycles "
              f"(rate {plain.issue_rate:.3f})")
        for label, predictor_cls in PREDICTORS:
            spec = run_spec(workloads, bypass, predictor_cls)
            gain = plain.cycles / spec.cycles
            print(
                f"    {label:>22s}: {spec.cycles:7d} cycles "
                f"(rate {spec.issue_rate:.3f}, {gain:.3f}x, "
                f"{spec.mispredictions} mispredicts, "
                f"{spec.squashed} squashed)"
            )
    print()


def main() -> None:
    report("predictable loop branches (LLL3, LLL5, LLL11)",
           [lll3(), lll5(), lll11()])
    report("data-dependent branches (synthetic)",
           [branch_heavy(length=150)])
    print(
        "All runs are checked against the golden model: wrong-path\n"
        "instructions never corrupt architectural state -- the RUU\n"
        "simply nullifies them, exactly as the paper argues."
    )


if __name__ == "__main__":
    main()
