#!/usr/bin/env python3
"""Regenerate every table of the paper's evaluation in one run.

Prints Tables 1-6 side by side with the paper's published columns, plus
the shape-fidelity summary recorded in EXPERIMENTS.md.  This is the
same machinery the benchmark suite uses (`pytest benchmarks/
--benchmark-only`), packaged as a single script.

Run:  python examples/reproduce_paper.py            (~2-3 minutes)
      python examples/reproduce_paper.py --jobs 4   (parallel sweeps;
      identical tables, limited by your core count)
"""

import argparse
import time

from repro import ENGINE_FACTORIES, run_suite
from repro.analysis import (
    ParallelRunner,
    format_sweep_table,
    format_table1,
    paper_data,
    per_loop_baseline,
    shape_report,
    sweep_sizes,
)
from repro.workloads import all_loops


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweeps "
                             "(default 1: serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache shared by the workers")
    args = parser.parse_args()

    runner = None
    if args.jobs > 1 or args.cache_dir:
        runner = ParallelRunner(jobs=args.jobs, cache_dir=args.cache_dir)

    start = time.time()
    loops = all_loops()

    print("Table 1: statistics for the benchmark programs (simple issue)")
    results = per_loop_baseline(loops, runner=runner)
    print(format_table1(results, paper_data.TABLE1_BASELINE))
    print()

    baseline = run_suite(ENGINE_FACTORIES["simple"], loops, runner=runner)

    tables = [
        ("Table 2: RSTU, one dispatch path", "rstu",
         paper_data.RSTU_SIZES, paper_data.TABLE2_RSTU, {}),
        ("Table 3: RSTU, two dispatch paths", "rstu",
         paper_data.RSTU_SIZES, paper_data.TABLE3_RSTU_2PATH,
         {"dispatch_paths": 2}),
        ("Table 4: RUU with bypass logic", "ruu-bypass",
         paper_data.RUU_SIZES, paper_data.TABLE4_RUU_BYPASS, {}),
        ("Table 5: RUU without bypass logic", "ruu-nobypass",
         paper_data.RUU_SIZES, paper_data.TABLE5_RUU_NOBYPASS, {}),
        ("Table 6: RUU with limited bypass (A future file)", "ruu-limited",
         paper_data.RUU_SIZES, paper_data.TABLE6_RUU_LIMITED, {}),
    ]

    for title, engine, sizes, paper_table, overrides in tables:
        sweep = sweep_sizes(engine, sizes, workloads=loops,
                            baseline=baseline, runner=runner, **overrides)
        print(format_sweep_table(sweep, paper_table, title))
        paper_curve = {s: v[0] for s, v in paper_table.items()}
        report = shape_report(sweep.speedups(), paper_curve, title)
        print(
            f"  shape: spearman={report['spearman']:.3f}  "
            f"monotone={report['monotonic_fraction']:.2f}  "
            f"saturation(meas/paper)="
            f"{report['saturation_measured']}/"
            f"{report['saturation_paper']}  "
            f"final(meas/paper)={report['final_measured']:.3f}/"
            f"{report['final_paper']:.3f}"
        )
        print()

    print(f"total wall time: {time.time() - start:.1f}s")
    if runner is not None and runner.points_run:
        print(
            f"parallel runner: {runner.points_run} points over "
            f"{runner.jobs} jobs, {runner.host_seconds:.1f}s simulator "
            f"time in {runner.wall_seconds:.1f}s wall, "
            f"cache {runner.hits} hits / {runner.misses} misses"
        )


if __name__ == "__main__":
    main()
