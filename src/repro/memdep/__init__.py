"""Memory disambiguation: the paper's load registers (section 3.2.1.2)."""

from .load_registers import FROM_MEMORY, MemoryDependencyUnit

__all__ = ["FROM_MEMORY", "MemoryDependencyUnit"]
