"""Load registers: memory disambiguation and forwarding (paper §3.2.1.2).

The paper resolves memory dependencies with a small set of *load
registers* holding the addresses of currently-active memory locations:

* if a load's address matches a pending load or store, the load is *not*
  submitted to memory -- it obtains its data when the pending operation's
  data is available (store-to-load forwarding / load-load merging);
* if a store's address matches, the store becomes the latest producer
  for that address (the tag is updated);
* addresses resolve strictly in program order: a load/store whose
  address is unknown blocks all younger loads/stores from proceeding;
* issue blocks when no load register is free.

This implementation tracks one in-flight memory operation per load
register (a conservative simplification of the paper's
one-register-per-distinct-address scheme; with the paper's sizing of 6
registers -- 4 sufficed -- the difference is not visible on the
benchmark loops, see DESIGN.md).

The unit is engine-agnostic.  Engines drive it:

1. ``add(seq, is_store)`` at issue (after checking ``can_accept``);
2. ``resolve(seq, address)`` when the operation's address becomes
   computable -- calls must be made oldest-first, and the unit enforces
   program order;
3. ``publish(seq, value)`` when the operation's datum (stores) or result
   (loads) becomes available for forwarding;
4. ``mark_dispatched(seq)`` when the memory access (or forward) starts;
5. ``finish(seq)`` when the operation leaves the machine (completion for
   the out-of-order-completion engines, commit for the RUU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.faults import SimulationError

#: Binding of a load to its data source.
FROM_MEMORY = "memory"


@dataclass
class _MemOp:
    seq: int
    is_store: bool
    address: Optional[int] = None
    binding: Optional[object] = None  # FROM_MEMORY or a producer seq
    dispatched: bool = False
    finished: bool = False


class MemoryDependencyUnit:
    """The load-register file plus its pseudo-queue of memory operations."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("need at least one load register")
        self.capacity = capacity
        self._ops: Dict[int, _MemOp] = {}
        self._order: List[int] = []            # in-flight, program order
        self._by_address: Dict[int, List[int]] = {}
        self._published: Dict[int, object] = {}
        self._consumers: Dict[int, int] = {}   # producer seq -> waiting loads
        self.blocked_issues = 0
        self.forwards = 0

    # -- issue ----------------------------------------------------------

    def can_accept(self) -> bool:
        """Is a load register free for a new memory instruction?"""
        if len(self._order) < self.capacity:
            return True
        self.blocked_issues += 1
        return False

    def add(self, seq: int, is_store: bool) -> None:
        """Track a newly issued memory operation."""
        if seq in self._ops:
            raise SimulationError(f"memory op {seq} added twice")
        if self._order and seq <= self._order[-1]:
            raise SimulationError("memory ops must be added in program order")
        self._ops[seq] = _MemOp(seq, is_store)
        self._order.append(seq)

    # -- address resolution -----------------------------------------------

    def oldest_unresolved(self) -> Optional[int]:
        """The seq of the oldest op without an address (next to resolve)."""
        for seq in self._order:
            if self._ops[seq].address is None:
                return seq
        return None

    def resolve(self, seq: int, address: int) -> object:
        """Give ``seq`` its effective address; returns the load's binding.

        For a load: the youngest *older* in-flight operation with the
        same address (forward from it), else :data:`FROM_MEMORY`.  For a
        store: the store becomes the latest producer for the address.
        """
        op = self._ops[seq]
        if op.address is not None:
            raise SimulationError(f"memory op {seq} resolved twice")
        if self.oldest_unresolved() != seq:
            raise SimulationError(
                f"memory op {seq} resolved out of program order"
            )
        op.address = address
        peers = self._by_address.setdefault(address, [])
        binding: object = FROM_MEMORY
        if not op.is_store:
            for other_seq in reversed(peers):
                other = self._ops[other_seq]
                if not other.finished:
                    binding = other_seq
                    self._consumers[other_seq] = (
                        self._consumers.get(other_seq, 0) + 1
                    )
                    self.forwards += 1
                    break
        op.binding = binding
        peers.append(seq)
        return binding

    def binding_of(self, seq: int) -> object:
        op = self._ops[seq]
        if op.binding is None:
            raise SimulationError(f"memory op {seq} not resolved yet")
        return op.binding

    def is_resolved(self, seq: int) -> bool:
        return self._ops[seq].address is not None

    # -- forwarding --------------------------------------------------------

    def publish(self, seq: int, value) -> None:
        """A producer's data is now available for forwarding."""
        self._published.setdefault(seq, value)

    def load_source_ready(self, seq: int) -> bool:
        """May this load start?  FROM_MEMORY loads are ready immediately
        once resolved; forwarded loads wait for the producer's value."""
        binding = self.binding_of(seq)
        if binding is FROM_MEMORY:
            return True
        return binding in self._published

    def forwarded_value(self, seq: int):
        """The value a forwarded load receives."""
        binding = self.binding_of(seq)
        if binding is FROM_MEMORY:
            raise SimulationError(f"load {seq} reads memory, not a forward")
        return self._published[binding]

    # -- per-address access ordering ------------------------------------------

    def store_may_dispatch(self, seq: int) -> bool:
        """A store may start its memory access only when every older
        operation on the same address has started (keeps per-address
        accesses in program order for the out-of-order-completion
        engines; a no-op constraint for the in-order-commit RUU)."""
        op = self._ops[seq]
        for other_seq in self._by_address.get(op.address, ()):
            if other_seq >= seq:
                break
            other = self._ops[other_seq]
            if not other.dispatched and not other.finished:
                return False
        return True

    def mark_dispatched(self, seq: int) -> None:
        self._ops[seq].dispatched = True

    # -- retirement -------------------------------------------------------------

    def finish(self, seq: int) -> None:
        """The operation has left the machine; free its load register."""
        op = self._ops.get(seq)
        if op is None or op.finished:
            raise SimulationError(f"memory op {seq} finished twice")
        op.finished = True
        self._order.remove(seq)
        if isinstance(op.binding, int):
            self._consumers[op.binding] -= 1
            self._maybe_drop(op.binding)
        self._maybe_drop(seq)

    def _maybe_drop(self, seq: int) -> None:
        """Drop a finished op once no forwarded load still needs it."""
        op = self._ops.get(seq)
        if op is None or not op.finished:
            return
        if self._consumers.get(seq, 0) > 0:
            return
        self._consumers.pop(seq, None)
        self._published.pop(seq, None)
        if op.address is not None:
            peers = self._by_address.get(op.address)
            if peers is not None:
                peers.remove(seq)
                if not peers:
                    del self._by_address[op.address]
        del self._ops[seq]

    # -- recovery ----------------------------------------------------------------

    def squash_from(self, boundary_seq: int) -> None:
        """Discard every in-flight op with ``seq >= boundary_seq``
        (interrupt or misprediction recovery)."""
        doomed = [seq for seq in self._order if seq >= boundary_seq]
        for seq in reversed(doomed):
            op = self._ops[seq]
            self._order.remove(seq)
            if isinstance(op.binding, int):
                self._consumers[op.binding] -= 1
            if op.address is not None:
                self._by_address[op.address].remove(seq)
                if not self._by_address[op.address]:
                    del self._by_address[op.address]
            self._published.pop(seq, None)
            self._consumers.pop(seq, None)
            del self._ops[seq]
        # Producers that lost all consumers may now be droppable.
        for seq in list(self._ops):
            self._maybe_drop(seq)

    # -- introspection ----------------------------------------------------------------

    def in_flight(self) -> int:
        return len(self._order)

    def active_addresses(self) -> int:
        """Distinct addresses currently held in load registers."""
        return len(self._by_address)
