"""Reaching-definitions analysis over the A/S/B/T register files.

A classic forward may-analysis on the static CFG: for every program
point, which definitions (static pcs) of each register may reach it.
The architectural initial state (all registers hold 0) is modelled as a
pseudo-definition ``INIT`` so "read before any write" is just "INIT
reaches the read".

Rules derived from the analysis:

* ``undefined-read`` (warning) -- a register read that the implicit
  initial zero may reach: on some path nothing ever wrote the register.
  Kernels that genuinely want the initial zero are rare enough (and the
  habit dangerous enough on real machines) that the linter flags it.
* ``dead-write`` (warning) -- a definition that no instruction reads
  and that cannot survive to HALT: on every path it is overwritten
  before use, so the instruction does no architectural work.

Unreachable blocks are excluded (they are reported separately by the
structural pass and have no dataflow facts).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..isa.program import Program
from ..isa.registers import Register
from .cfg import StaticCFG
from .diagnostics import Diagnostic, Severity

#: Pseudo-definition site standing for the architectural initial zero.
INIT = -1

_State = Dict[Register, FrozenSet[int]]


def _transfer(state: _State, instructions) -> _State:
    out = dict(state)
    for inst in instructions:
        if inst.dest is not None:
            out[inst.dest] = frozenset((inst.pc,))
    return out


def _lookup(state: _State, reg: Register) -> FrozenSet[int]:
    """Absent registers were never written on any path: INIT reaches."""
    return state.get(reg, frozenset((INIT,)))


class ReachingDefinitions:
    """Fixpoint solver exposing per-instruction reaching-def facts."""

    def __init__(self, program: Program, cfg: StaticCFG) -> None:
        self.program = program
        self.cfg = cfg
        self.reachable = cfg.reachable()
        self.block_in: Dict[int, _State] = {
            index: {} for index in self.reachable
        }
        self._solve()

    def _solve(self) -> None:
        """Worklist fixpoint.  A block that has received no flow yet is
        bottom; its state is seeded by copying the first incoming edge
        (an empty *seeded* map legitimately means "INIT everywhere",
        which is exactly right for the entry block)."""
        blocks = self.cfg.blocks
        block_out: Dict[int, _State] = {}
        seeded = {0}
        worklist: List[int] = [0]
        while worklist:
            index = worklist.pop(0)
            block = blocks[index]
            out = _transfer(self.block_in[index], block.instructions)
            if block_out.get(index) == out:
                continue
            block_out[index] = out
            for succ in block.successors:
                if succ not in self.reachable:
                    continue
                if succ not in seeded:
                    self.block_in[succ] = dict(out)
                    seeded.add(succ)
                    worklist.append(succ)
                    continue
                merged = self.block_in[succ]
                changed = False
                for reg in set(merged) | set(out):
                    joined = _lookup(merged, reg) | _lookup(out, reg)
                    if merged.get(reg) != joined:
                        merged[reg] = joined
                        changed = True
                if changed and succ not in worklist:
                    worklist.append(succ)

    # -- fact extraction -----------------------------------------------

    def walk(self):
        """Yield ``(inst, state_before)`` for every reachable instruction
        in pc order; states are reaching-def maps at that point."""
        for index in sorted(self.reachable):
            block = self.cfg.blocks[index]
            state = dict(self.block_in[index])
            for inst in block.instructions:
                yield inst, state
                if inst.dest is not None:
                    state = dict(state)
                    state[inst.dest] = frozenset((inst.pc,))


def check_dataflow(program: Program, cfg: StaticCFG) -> List[Diagnostic]:
    """Run reaching definitions and derive its two rules."""
    if not cfg.blocks:
        return []
    analysis = ReachingDefinitions(program, cfg)

    diagnostics: List[Diagnostic] = []
    used_defs: Set[int] = set()
    all_defs: Dict[int, Register] = {}
    surviving: Set[int] = set()

    for inst, state in analysis.walk():
        for reg in inst.sources:
            reaching = _lookup(state, reg)
            used_defs |= reaching
            if INIT in reaching:
                diagnostics.append(
                    Diagnostic(
                        rule="undefined-read",
                        severity=Severity.WARNING,
                        message=(
                            f"{inst.opcode.mnemonic} reads {reg.name}, "
                            f"which may never have been written (it would "
                            f"hold the architectural initial 0)"
                        ),
                        pc=inst.pc,
                        line=inst.line,
                    )
                )
        if inst.dest is not None:
            all_defs[inst.pc] = inst.dest
        if inst.is_halt:
            # Every definition live at HALT is architecturally
            # observable final state, hence not dead.
            for reaching in state.values():
                surviving |= reaching

    # Definitions in blocks that fall off the end also survive (the
    # structural pass reports the missing HALT itself).
    for block in cfg.falls_off_end():
        if block.index in analysis.reachable:
            state = dict(analysis.block_in[block.index])
            state = _transfer(state, block.instructions)
            for reaching in state.values():
                surviving |= reaching

    for pc, reg in sorted(all_defs.items()):
        if pc in used_defs or pc in surviving:
            continue
        inst = program[pc]
        diagnostics.append(
            Diagnostic(
                rule="dead-write",
                severity=Severity.WARNING,
                message=(
                    f"value written to {reg.name} by "
                    f"{inst.opcode.mnemonic} is overwritten before any "
                    f"read on every path (dead write)"
                ),
                pc=pc,
                line=inst.line,
            )
        )
    return diagnostics
