"""A static lower bound on execution time from must-execute blocks.

:func:`repro.analysis.depgraph.dataflow_limit` computes the *dynamic*
critical path -- the minimum cycles any machine needs given the trace's
true dependencies.  This module computes a *static* counterpart that is
provably no larger, for any terminating execution:

* a basic block is entered only at its leader and runs contiguously, so
  every intra-block RAW chain is a chain of the dynamic dependence DAG
  whenever the block executes;
* a block on every entry-to-HALT path (:meth:`StaticCFG.must_execute`)
  executes at least once in every terminating run;
* therefore the longest intra-block latency-weighted RAW chain over the
  must-execute blocks bounds the dynamic critical path from below, and
  hence every engine's simulated cycle count.

Loads are costed at ``min(memory latency, forward_latency)`` and stores
at ``min(memory latency, store_execute_latency)`` because the memory
dependency unit may satisfy them without a full memory access; using
the cheapest completion path keeps the bound sound for every engine.

The bound is deliberately conservative (it knows nothing about trip
counts), but it is *checkable*: the test suite asserts
``static <= dataflow_limit <= simulated cycles`` for every workload and
engine, which turns this linter pass into a correctness oracle for the
whole engine matrix -- an engine finishing faster than the static bound
has a timing bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import FUClass
from ..isa.program import Program
from ..isa.registers import Register
from ..machine.config import CRAY1_LIKE, MachineConfig
from .cfg import BasicBlock, StaticCFG


@dataclass
class StaticCriticalPath:
    """The static lower bound and the chain that realises it."""

    cycles: int
    pcs: List[int] = field(default_factory=list)
    fu_cycles: Dict[FUClass, int] = field(default_factory=dict)
    block_start: Optional[int] = None

    def describe(self) -> str:
        if not self.pcs:
            return "static critical path: 0 cycles (no mandatory work)"
        mix = ", ".join(
            f"{fu.value}={cycles}"
            for fu, cycles in sorted(
                self.fu_cycles.items(), key=lambda kv: -kv[1]
            )
        )
        return (
            f"static critical path: >= {self.cycles} cycles along "
            f"pcs {self.pcs} (block at pc {self.block_start}); "
            f"per-unit cycles: {mix}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "pcs": list(self.pcs),
            "block_start": self.block_start,
            "fu_cycles": {
                fu.value: cycles for fu, cycles in self.fu_cycles.items()
            },
        }


def _instruction_cost(inst: Instruction, config: MachineConfig) -> int:
    """Cheapest way this instruction can complete on any engine."""
    latency = config.latency(inst.fu)
    if inst.is_load:
        return min(latency, config.forward_latency)
    if inst.is_store:
        return min(latency, config.store_execute_latency)
    return latency


def _block_chain(
    block: BasicBlock, config: MachineConfig
) -> Tuple[int, List[int], Dict[FUClass, int]]:
    """Longest latency-weighted intra-block RAW chain."""
    finish: Dict[int, int] = {}
    best_pred: Dict[int, Optional[int]] = {}
    last_writer: Dict[Register, int] = {}
    for inst in block.instructions:
        if inst.is_halt:
            continue  # HALT never enters the dynamic trace
        start = 0
        pred: Optional[int] = None
        for reg in inst.sources:
            producer = last_writer.get(reg)
            if producer is not None and finish[producer] > start:
                start = finish[producer]
                pred = producer
        finish[inst.pc] = start + _instruction_cost(inst, config)
        best_pred[inst.pc] = pred
        if inst.dest is not None:
            last_writer[inst.dest] = inst.pc
    if not finish:
        return 0, [], {}
    tail = max(finish, key=lambda pc: finish[pc])
    chain: List[int] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        chain.append(cursor)
        cursor = best_pred[cursor]
    chain.reverse()
    fu_cycles: Dict[FUClass, int] = {}
    for pc in chain:
        inst = block.instructions[pc - block.start]
        fu_cycles[inst.fu] = (
            fu_cycles.get(inst.fu, 0) + _instruction_cost(inst, config)
        )
    return finish[tail], chain, fu_cycles


def static_critical_path(
    program: Program,
    config: Optional[MachineConfig] = None,
    cfg: Optional[StaticCFG] = None,
) -> StaticCriticalPath:
    """The static per-FU-class critical-path lower bound for a program."""
    config = config or CRAY1_LIKE
    cfg = cfg or StaticCFG(program)
    best = StaticCriticalPath(cycles=0)
    for index in sorted(cfg.must_execute()):
        block = cfg.blocks[index]
        cycles, chain, fu_cycles = _block_chain(block, config)
        if cycles > best.cycles:
            best = StaticCriticalPath(
                cycles=cycles,
                pcs=chain,
                fu_cycles=fu_cycles,
                block_start=block.start,
            )
    return best
