"""Structured lint findings: severities, diagnostics, and reports.

Every rule in :mod:`repro.lint` reports a :class:`Diagnostic` -- a rule
id, a severity, the static instruction index (``pc``) and, when the
program came from :func:`repro.isa.assembler.assemble`, the source line
number.  A :class:`LintReport` collects the diagnostics for one program
together with the static critical-path bound, and renders them either
as compiler-style text or as JSON-ready dictionaries.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .critical_path import StaticCriticalPath


class Severity(enum.IntEnum):
    """How bad a finding is; ordering allows threshold comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in rendered diagnostics ("error", ...)."""
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one program point.

    ``pc`` is the static instruction index (None for whole-program
    findings such as configuration mismatches); ``line`` is the source
    line recorded by the assembler, when the program has one.
    """

    rule: str
    severity: Severity
    message: str
    pc: Optional[int] = None
    line: Optional[int] = None

    def format(self, program_name: str = "<program>") -> str:
        """Render compiler-style: ``name:line: severity: [rule] text``."""
        where = program_name
        if self.line is not None:
            where = f"{program_name}:{self.line}"
        elif self.pc is not None:
            where = f"{program_name}:pc{self.pc}"
        return f"{where}: {self.severity.label}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready mapping (machine-readable output)."""
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "pc": self.pc,
            "line": self.line,
        }


class LintReport:
    """All findings for one program, ordered and queryable by rule."""

    def __init__(
        self,
        program_name: str,
        diagnostics: List[Diagnostic],
        critical_path: Optional["StaticCriticalPath"] = None,
    ) -> None:
        self.program_name = program_name
        self.diagnostics = sorted(
            diagnostics,
            key=lambda d: (
                d.pc if d.pc is not None else len(diagnostics) + 10 ** 9,
                -int(d.severity),
                d.rule,
            ),
        )
        self.critical_path = critical_path

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the program has no error-severity findings."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        """All findings of one rule (empty list when clean)."""
        return [d for d in self.diagnostics if d.rule == rule]

    # -- rendering -----------------------------------------------------

    def describe(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [d.format(self.program_name) for d in self.diagnostics]
        lines.append(
            f"{self.program_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        if self.critical_path is not None:
            lines.append(self.critical_path.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "program": self.program_name,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.critical_path is not None:
            payload["critical_path"] = self.critical_path.to_dict()
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
