"""Static control-flow graph over a finalized :class:`Program`.

Basic blocks are maximal straight-line instruction runs: a leader starts
at instruction 0, at every (in-range) branch/jump target, and after
every control-flow or HALT instruction.  Because resolved branch targets
always name a leader, a block is entered only at its first instruction
and -- absent a fault -- executes contiguously to its last.  That
atomicity is what makes the intra-block dependence chains of
:mod:`repro.lint.critical_path` a sound dynamic lower bound.

The builder is deliberately tolerant of malformed programs (unresolved
string targets, out-of-range indices): bad edges are dropped here and
reported by :mod:`repro.lint.structural`, so every rule can still run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.program import Program


def _valid_target(target: object, length: int) -> Optional[int]:
    """Return the target as an in-range int index, else None."""
    if isinstance(target, bool) or not isinstance(target, int):
        return None
    if 0 <= target < length:
        return target
    return None


@dataclass
class BasicBlock:
    """One basic block: instructions ``program[start:end]``."""

    index: int
    start: int
    end: int  # one past the last pc in the block
    instructions: Tuple[Instruction, ...]
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    @property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    @property
    def is_exit(self) -> bool:
        """Does this block end the program (terminates with HALT)?"""
        return self.terminator.is_halt

    def __str__(self) -> str:
        return f"B{self.index}[{self.start}..{self.end - 1}]"


class StaticCFG:
    """Basic blocks plus edges for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: List[BasicBlock] = []
        self.block_of: Dict[int, int] = {}
        self._build()

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        length = len(self.program)
        if length == 0:
            return
        leaders: Set[int] = {0}
        for inst in self.program:
            if inst.is_control_flow:
                target = _valid_target(inst.target, length)
                if target is not None:
                    leaders.add(target)
                if inst.pc + 1 < length:
                    leaders.add(inst.pc + 1)
            elif inst.is_halt and inst.pc + 1 < length:
                leaders.add(inst.pc + 1)

        starts = sorted(leaders)
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else length
            block = BasicBlock(
                index=index,
                start=start,
                end=end,
                instructions=tuple(
                    self.program[pc] for pc in range(start, end)
                ),
            )
            self.blocks.append(block)
            for pc in block.pcs:
                self.block_of[pc] = index

        for block in self.blocks:
            terminator = block.terminator
            succs: List[int] = []
            if terminator.is_halt:
                pass
            elif terminator.is_control_flow:
                target = _valid_target(terminator.target, length)
                if target is not None:
                    succs.append(self.block_of[target])
                if terminator.is_branch and terminator.pc + 1 < length:
                    succs.append(self.block_of[terminator.pc + 1])
            elif terminator.pc + 1 < length:
                succs.append(self.block_of[terminator.pc + 1])
            block.successors = succs
            for succ in succs:
                self.blocks[succ].predecessors.append(block.index)

    # -- queries -------------------------------------------------------

    @property
    def entry(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    @property
    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks whose terminator is HALT."""
        return [block for block in self.blocks if block.is_exit]

    def falls_off_end(self) -> List[BasicBlock]:
        """Blocks whose fall-through runs past the last instruction."""
        length = len(self.program)
        bad = []
        for block in self.blocks:
            terminator = block.terminator
            if terminator.is_halt:
                continue
            if terminator.is_control_flow:
                if not terminator.is_branch:
                    continue  # unconditional jump never falls through
                if terminator.pc + 1 >= length:
                    bad.append(block)
            elif terminator.pc + 1 >= length:
                bad.append(block)
        return bad

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        if not self.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reaches_exit(self) -> Set[int]:
        """Block indices from which some HALT block is reachable."""
        seen = {block.index for block in self.exit_blocks}
        stack = list(seen)
        while stack:
            current = stack.pop()
            for pred in self.blocks[current].predecessors:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    def must_execute(self) -> Set[int]:
        """Blocks on *every* entry-to-HALT path.

        Any terminating execution runs each of these blocks (fully, since
        blocks execute atomically) at least once.  Computed by deletion:
        block ``b`` is mandatory iff removing it disconnects the entry
        from every exit block.  Programs here are tens of blocks, so the
        O(blocks * edges) sweep is negligible.
        """
        if not self.blocks:
            return set()
        exits = {block.index for block in self.exit_blocks}
        if not exits:
            return {0}
        mandatory = {0}
        for candidate in range(1, len(self.blocks)):
            if not self._exit_reachable_without(candidate, exits):
                mandatory.add(candidate)
        return mandatory

    def _exit_reachable_without(self, banned: int, exits: Set[int]) -> bool:
        if banned == 0:
            return False
        seen = {0}
        stack = [0]
        while stack:
            current = stack.pop()
            if current in exits:
                return True
            for succ in self.blocks[current].successors:
                if succ != banned and succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False
