"""Static program verification for the model ISA (``repro.lint``).

The dynamic analyses in :mod:`repro.analysis` measure what a program
*did*; this package checks what a program *could do* before it runs.
:func:`lint_program` builds a static CFG with basic blocks, runs a
reaching-definitions dataflow analysis over the A/S/B/T register files,
validates structural properties (branch targets, termination, loops
with no exit, statically-known addresses), cross-checks the
:class:`~repro.machine.config.MachineConfig` against the program, and
computes a static critical-path lower bound that the test suite asserts
against the dynamic dataflow limit and every engine's simulated cycles.

Rule catalogue (see ``docs/lint.md`` for the full reference):

==========================  ========  =====================================
rule id                     severity  meaning
==========================  ========  =====================================
``unresolved-target``       error     control transfer to an unresolved
                                      label
``bad-branch-target``       error     branch/jump index outside the program
``missing-halt``            error     control can fall off the end
``no-exit-path``            error     reachable loop from which HALT is
                                      unreachable
``unreachable-code``        warning   basic block no path reaches
``undefined-read``          warning   register read that may precede any
                                      write
``dead-write``              warning   value overwritten before any read on
                                      every path
``address-bounds``          warning   statically-known negative address
``config-missing-latency``  error     program uses an FU class with no
                                      latency
``config-bad-latency``      error     FU latency below one cycle
``config-bad-sizing``       error     non-positive structural parameter
``config-no-load-registers`` error    memory ops with no load registers
``config-counter-window``   warning   NI counters cannot fill the window
==========================  ========  =====================================

Library use::

    from repro.lint import lint_program
    report = lint_program(program, config)
    assert report.ok, report.describe()

CLI use: ``python -m repro lint FILE [--json] [--strict]``.
"""

from __future__ import annotations

from typing import Optional

from ..isa.program import Program
from ..machine.config import CRAY1_LIKE, MachineConfig
from .cfg import BasicBlock, StaticCFG
from .configcheck import check_config
from .critical_path import StaticCriticalPath, static_critical_path
from .dataflow import INIT, ReachingDefinitions, check_dataflow
from .diagnostics import Diagnostic, LintReport, Severity
from .structural import check_structure

#: Rules whose findings make the CFG untrustworthy for deeper passes.
_FATAL_STRUCTURE = frozenset({"unresolved-target", "bad-branch-target"})


def lint_program(
    program: Program,
    config: Optional[MachineConfig] = None,
) -> LintReport:
    """Run every static check over ``program`` and return the report.

    ``config`` defaults to the paper's machine (:data:`CRAY1_LIKE`); it
    is only consulted by the configuration cross-checks and the
    critical-path bound, so linting a bare program is meaningful too.
    """
    config = config or CRAY1_LIKE
    cfg = StaticCFG(program)
    diagnostics = check_structure(program, cfg)
    fatal = any(d.rule in _FATAL_STRUCTURE for d in diagnostics)
    config_diagnostics = check_config(program, config)
    config_broken = any(
        d.severity >= Severity.ERROR for d in config_diagnostics
    )
    critical_path: Optional[StaticCriticalPath] = None
    if not fatal:
        diagnostics.extend(check_dataflow(program, cfg))
        # The bound needs a latency for every FU class the program uses;
        # a config error already explains why it is absent.
        if not config_broken:
            critical_path = static_critical_path(program, config, cfg)
    diagnostics.extend(config_diagnostics)
    return LintReport(program.name, diagnostics, critical_path=critical_path)


__all__ = [
    "BasicBlock",
    "Diagnostic",
    "INIT",
    "LintReport",
    "ReachingDefinitions",
    "Severity",
    "StaticCFG",
    "StaticCriticalPath",
    "check_config",
    "check_dataflow",
    "check_structure",
    "lint_program",
    "static_critical_path",
]
