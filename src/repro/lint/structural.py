"""Structural validity rules over the static CFG.

* ``unresolved-target`` / ``bad-branch-target`` (error) -- a control
  transfer to a label that was never resolved, or to an instruction
  index outside the program.  :func:`repro.isa.program.build_program`
  rejects these, but hand-built :class:`Program` tuples can smuggle
  them in, and they crash engines mid-simulation.
* ``missing-halt`` (error) -- control can fall off the end of the
  instruction stream (no terminating HALT on some path).
* ``unreachable-code`` (warning) -- a basic block no path from entry
  reaches.
* ``no-exit-path`` (error) -- a reachable block from which no HALT is
  reachable: once control enters, the program can never terminate
  (a loop with no exit path).
* ``address-bounds`` (warning) -- a memory access whose effective
  address is statically known (by constant propagation over the
  register files) and negative; the sparse :class:`Memory` accepts it
  after 24-bit wrapping, but it almost certainly indicates a pointer
  arithmetic bug.

Constant propagation is a tiny abstract interpretation: each register
is either a known constant or TOP, joined across CFG edges, reusing the
real ISA semantics (:func:`repro.isa.semantics.evaluate`) so the
analysis can never disagree with execution.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.instruction import Instruction
from ..isa.opcodes import OpKind
from ..isa.program import Program
from ..isa.registers import Register
from ..isa.semantics import ArithmeticFault, coerce_for_bank, evaluate
from .cfg import StaticCFG, _valid_target
from .diagnostics import Diagnostic, Severity


def check_structure(program: Program, cfg: StaticCFG) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    length = len(program)

    if length == 0:
        return [
            Diagnostic(
                rule="missing-halt",
                severity=Severity.ERROR,
                message="program is empty (no instructions, no HALT)",
            )
        ]

    for inst in program:
        if not inst.is_control_flow:
            continue
        if isinstance(inst.target, str):
            diagnostics.append(
                Diagnostic(
                    rule="unresolved-target",
                    severity=Severity.ERROR,
                    message=(
                        f"{inst.opcode.mnemonic} targets unresolved label "
                        f"{inst.target!r} (program was never finalized)"
                    ),
                    pc=inst.pc,
                    line=inst.line,
                )
            )
        elif _valid_target(inst.target, length) is None:
            diagnostics.append(
                Diagnostic(
                    rule="bad-branch-target",
                    severity=Severity.ERROR,
                    message=(
                        f"{inst.opcode.mnemonic} targets instruction "
                        f"{inst.target!r}, outside the program "
                        f"(0..{length - 1})"
                    ),
                    pc=inst.pc,
                    line=inst.line,
                )
            )

    for block in cfg.falls_off_end():
        terminator = block.terminator
        diagnostics.append(
            Diagnostic(
                rule="missing-halt",
                severity=Severity.ERROR,
                message=(
                    f"control falls off the end of the program after "
                    f"{terminator.opcode.mnemonic} (no terminating HALT)"
                ),
                pc=terminator.pc,
                line=terminator.line,
            )
        )

    reachable = cfg.reachable()
    reaches_exit = cfg.reaches_exit()
    for block in cfg.blocks:
        first = block.instructions[0]
        if block.index not in reachable:
            diagnostics.append(
                Diagnostic(
                    rule="unreachable-code",
                    severity=Severity.WARNING,
                    message=(
                        f"instructions {block.start}..{block.end - 1} are "
                        f"unreachable from the program entry"
                    ),
                    pc=block.start,
                    line=first.line,
                )
            )
        elif block.index not in reaches_exit:
            diagnostics.append(
                Diagnostic(
                    rule="no-exit-path",
                    severity=Severity.ERROR,
                    message=(
                        f"no path from instruction {block.start} ever "
                        f"reaches HALT (loop with no exit path)"
                    ),
                    pc=block.start,
                    line=first.line,
                )
            )

    diagnostics.extend(_check_addresses(program, cfg, reachable))
    return diagnostics


# ----------------------------------------------------------------------
# constant propagation for statically-known effective addresses
# ----------------------------------------------------------------------

#: Abstract "unknown value" for the constant domain.
TOP = object()

_ConstState = Dict[Register, object]


def _const_transfer(state: _ConstState, inst: Instruction) -> None:
    """Update the constant map across one instruction, in place."""
    if inst.dest is None:
        return
    kind = inst.opcode.kind
    if kind is OpKind.LOAD:
        state[inst.dest] = TOP
        return
    operands = [state.get(reg, 0) for reg in inst.srcs]
    if any(value is TOP for value in operands):
        state[inst.dest] = TOP
        return
    try:
        raw = evaluate(inst.opcode, operands, inst.imm)
        state[inst.dest] = coerce_for_bank(inst.dest, raw)
    except (ArithmeticFault, ArithmeticError, ValueError, TypeError):
        state[inst.dest] = TOP


def _propagate_constants(
    program: Program, cfg: StaticCFG, reachable
) -> Dict[int, _ConstState]:
    """Fixpoint constant map at each reachable block entry.

    Registers architecturally start at 0 and propagated maps carry every
    assignment forward, so a register absent from a map is known-0 along
    every path the map summarises; lookups use ``get(reg, 0)``.  A block
    that has not yet received any flow is bottom, handled by seeding its
    state from the first incoming edge rather than joining.
    """
    block_in: Dict[int, _ConstState] = {0: {}}
    block_out: Dict[int, _ConstState] = {}
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        state = dict(block_in[index])
        for inst in cfg.blocks[index].instructions:
            _const_transfer(state, inst)
        if block_out.get(index) == state:
            continue
        block_out[index] = state
        for succ in cfg.blocks[index].successors:
            if succ not in reachable:
                continue
            if succ not in block_in:
                block_in[succ] = dict(state)
                worklist.append(succ)
                continue
            merged = block_in[succ]
            changed = False
            for reg in set(merged) | set(state):
                mine = state.get(reg, 0)
                theirs = merged.get(reg, 0)
                joined = mine if mine == theirs else TOP
                if reg not in merged or merged[reg] != joined:
                    merged[reg] = joined
                    changed = True
            if changed and succ not in worklist:
                worklist.append(succ)
    return block_in


def _check_addresses(
    program: Program, cfg: StaticCFG, reachable
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    block_in = _propagate_constants(program, cfg, reachable)
    for index in sorted(reachable):
        state = dict(block_in.get(index, {}))
        for inst in cfg.blocks[index].instructions:
            if inst.is_memory:
                base = state.get(inst.base, 0)
                if base is not TOP and isinstance(base, int):
                    address = base + int(inst.imm)
                    if address < 0:
                        diagnostics.append(
                            Diagnostic(
                                rule="address-bounds",
                                severity=Severity.WARNING,
                                message=(
                                    f"{inst.opcode.mnemonic} address is "
                                    f"statically {address} "
                                    f"({inst.base.name}={base} + "
                                    f"{inst.imm}): negative addresses "
                                    f"wrap through the 24-bit A width"
                                ),
                                pc=inst.pc,
                                line=inst.line,
                            )
                        )
            _const_transfer(state, inst)
    return diagnostics
