"""Cross-checks between a :class:`MachineConfig` and a program.

A configuration that cannot run the program -- or can only run it
degenerately -- should be caught before a simulation produces a
confusing mid-run fault or a silently meaningless number:

* ``config-missing-latency`` (error) -- a functional-unit class the
  program uses has no latency entry.
* ``config-bad-latency`` (error) -- a latency below one cycle.
* ``config-bad-sizing`` (error) -- non-positive issue width, window
  size, dispatch/commit paths, tag-pool size, counter width, or cycle
  budget; negative branch penalties.
* ``config-no-load-registers`` (error) -- the program performs memory
  operations but the machine has no load registers to disambiguate
  them.
* ``config-counter-window`` (warning) -- the NI/LI instance counters
  (``counter_bits`` wide, at most ``2^n - 1`` live instances per
  destination register) cannot cover the configured window: with ``d``
  distinct destination registers in the program, at most
  ``d * (2^n - 1)`` window entries can ever be live, so a larger
  window is dead silicon for this program.
"""

from __future__ import annotations

from typing import List, Set

from ..isa.opcodes import FUClass
from ..isa.program import Program
from ..isa.registers import Register
from ..machine.config import MachineConfig
from .diagnostics import Diagnostic, Severity


def check_config(program: Program, config: MachineConfig) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    used_fus: Set[FUClass] = {inst.fu for inst in program}
    for fu in sorted(used_fus, key=lambda f: f.value):
        if fu not in config.latencies:
            diagnostics.append(
                Diagnostic(
                    rule="config-missing-latency",
                    severity=Severity.ERROR,
                    message=(
                        f"program uses the {fu.value} unit but the config "
                        f"defines no latency for it"
                    ),
                )
            )
        elif config.latencies[fu] < 1:
            diagnostics.append(
                Diagnostic(
                    rule="config-bad-latency",
                    severity=Severity.ERROR,
                    message=(
                        f"latency for {fu.value} is "
                        f"{config.latencies[fu]}; functional units need "
                        f"at least 1 cycle"
                    ),
                )
            )

    for attribute, minimum in (
        ("issue_width", 1),
        ("window_size", 1),
        ("dispatch_paths", 1),
        ("commit_paths", 1),
        ("n_tags", 1),
        ("counter_bits", 1),
        ("max_cycles", 1),
        ("watchdog_cycles", 0),
        ("branch_taken_penalty", 0),
        ("branch_not_taken_penalty", 0),
        ("forward_latency", 1),
        ("store_execute_latency", 1),
    ):
        value = getattr(config, attribute)
        if value < minimum:
            diagnostics.append(
                Diagnostic(
                    rule="config-bad-sizing",
                    severity=Severity.ERROR,
                    message=(
                        f"{attribute} = {value}; must be at least "
                        f"{minimum}"
                    ),
                )
            )

    if any(inst.is_memory for inst in program) \
            and config.n_load_registers < 1:
        diagnostics.append(
            Diagnostic(
                rule="config-no-load-registers",
                severity=Severity.ERROR,
                message=(
                    "program performs memory operations but "
                    "n_load_registers is "
                    f"{config.n_load_registers}; memory disambiguation "
                    "needs at least one load register"
                ),
            )
        )

    dests: Set[Register] = {
        inst.dest for inst in program if inst.dest is not None
    }
    if dests and config.counter_bits >= 1:
        coverable = config.max_instances * len(dests)
        if coverable < config.window_size:
            diagnostics.append(
                Diagnostic(
                    rule="config-counter-window",
                    severity=Severity.WARNING,
                    message=(
                        f"{config.counter_bits}-bit instance counters "
                        f"allow at most {config.max_instances} live "
                        f"instances of each of the program's "
                        f"{len(dests)} destination register(s) "
                        f"({coverable} total), so the {config.window_size}"
                        f"-entry window can never fill"
                    ),
                )
            )

    return diagnostics
