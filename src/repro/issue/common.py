"""Shared reservation-station machinery for the windowed engines.

Tomasulo, the Tag Unit, the RS pool, the RSTU and the RUU all hold
waiting instructions in entries of the same shape: per-source operand
slots that either have a value or snoop a tag, a destination tag, and
execution bookkeeping.  The engines differ in how tags are *allocated*
and when entries are *freed* -- that logic stays in each engine.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instruction import Instruction
from ..isa.semantics import effective_address


class Operand:
    """One source-operand slot of a reservation station."""

    __slots__ = ("ready", "value", "tag")

    def __init__(self, ready: bool, value=None, tag=None) -> None:
        self.ready = ready
        self.value = value
        self.tag = tag

    def capture(self, value) -> None:
        """A matching tag appeared on a bus: latch the value."""
        self.ready = True
        self.value = value
        self.tag = None

    def __repr__(self) -> str:
        if self.ready:
            return f"Operand(ready, {self.value!r})"
        return f"Operand(waiting on {self.tag!r})"


class WindowEntry:
    """A reservation station (or RSTU/RUU slot) holding one instruction.

    ``operands`` are in :attr:`Instruction.sources` order -- explicit
    sources first, then the memory base register (if any).  For a store,
    ``operands[0]`` is the datum.
    """

    __slots__ = (
        "seq",
        "inst",
        "operands",
        "dest_tag",
        "dispatched",
        "executed_cycle",
        "result",
        "fault",
        "address",
        "datum_published",
        "spec_depth",
        "squashed",
    )

    def __init__(self, seq: int, inst: Instruction,
                 operands: List[Operand], dest_tag=None) -> None:
        self.seq = seq
        self.inst = inst
        self.operands = operands
        self.dest_tag = dest_tag
        self.dispatched = False
        self.executed_cycle: Optional[int] = None
        self.result = None
        self.fault: Optional[Exception] = None
        self.address: Optional[int] = None
        self.datum_published = False
        self.spec_depth = 0        # unresolved predicted branches older
        self.squashed = False      # dropped by recovery; ignore completions

    # -- readiness ---------------------------------------------------------

    def operands_ready(self) -> bool:
        return all(operand.ready for operand in self.operands)

    @property
    def base_operand(self) -> Operand:
        """The address-base operand of a memory instruction."""
        assert self.inst.is_memory
        return self.operands[-1]

    @property
    def datum_operand(self) -> Operand:
        """The datum operand of a store."""
        assert self.inst.is_store
        return self.operands[0]

    def address_computable(self) -> bool:
        return self.inst.is_memory and self.base_operand.ready

    def compute_address(self) -> int:
        """Resolve and cache the effective address (base must be ready)."""
        if self.address is None:
            self.address = effective_address(
                self.base_operand.value, self.inst.imm
            )
        return self.address

    @property
    def executed(self) -> bool:
        return self.executed_cycle is not None

    def operand_values(self) -> List[object]:
        """Values of the explicit sources (excludes the address base)."""
        count = len(self.inst.srcs)
        return [operand.value for operand in self.operands[:count]]

    def snoop(self, tag, value) -> bool:
        """Capture ``value`` into any operand waiting on ``tag``."""
        hit = False
        for operand in self.operands:
            if not operand.ready and operand.tag == tag:
                operand.capture(value)
                hit = True
        return hit

    def __repr__(self) -> str:
        state = "done" if self.executed else (
            "dispatched" if self.dispatched else "waiting"
        )
        return f"<#{self.seq} {self.inst} [{state}]>"
