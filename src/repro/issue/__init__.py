"""Issue mechanisms from the paper's design progression (section 3).

``SimpleEngine`` -> ``TomasuloEngine`` -> ``TagUnitEngine`` ->
``RSPoolEngine`` -> ``RSTUEngine``; the RUU itself lives in
:mod:`repro.core` as the paper's contribution.
"""

from .common import Operand, WindowEntry
from .dispatch_stack import DispatchStackEngine
from .rspool import RSPoolEngine
from .rstu import RSTUEngine
from .simple import SimpleEngine
from .tagunit import TagUnitEngine, TagUnitEntry
from .tomasulo import TomasuloEngine

__all__ = [
    "DispatchStackEngine",
    "Operand",
    "RSPoolEngine",
    "RSTUEngine",
    "SimpleEngine",
    "TagUnitEngine",
    "TagUnitEntry",
    "TomasuloEngine",
    "WindowEntry",
]
