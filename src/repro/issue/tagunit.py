"""The Tag Unit extension of Tomasulo's algorithm (paper §3.2.1, Fig 2).

Observation: very few of the 144 *possible* destination registers are
active at once, so associating tag hardware with every register wastes
silicon.  Instead, a common pool of tags (the Tag Unit) is allocated
only to *currently active* destination registers:

* each register keeps a single busy bit (modelled here as presence in
  the latest-tag map);
* issuing with a busy destination gets a *new* tag and clears the old
  tag's "latest copy" bit -- the older instruction may complete, but it
  may not unlock the register;
* results flow to the reservation stations and to the Tag Unit; *only
  the Tag Unit* writes the register file (no direct FU-to-register
  path), and only a latest-copy result performs the write;
* issue blocks when the Tag Unit is full (``config.n_tags`` entries).

The reservation stations stay distributed per functional unit, exactly
as in :class:`~repro.issue.tomasulo.TomasuloEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.registers import Register
from ..machine.faults import SimulationError
from .common import WindowEntry
from .tomasulo import TomasuloEngine


@dataclass
class TagUnitEntry:
    """One slot of the Tag Unit: Register Number | Tag Free | Latest Copy."""

    register: Optional[Register] = None
    free: bool = True
    latest: bool = False


class TagUnitEngine(TomasuloEngine):
    """Tomasulo with a consolidated tag pool instead of per-register tags."""

    name = "tagunit"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tag_unit: List[TagUnitEntry] = [
            TagUnitEntry() for _ in range(self.config.n_tags)
        ]
        self._free_tags: List[int] = list(range(self.config.n_tags))

    # ------------------------------------------------------------------

    def _allocate_dest_tag(self, dest: Register, seq: int):
        """Take a free Tag Unit slot for ``dest``; None when exhausted.

        If the register already has a tag, the old slot loses its
        latest-copy bit (its instruction keeps the slot until it
        completes but can no longer unlock the register).
        """
        if not self._free_tags:
            return None
        slot = self._free_tags.pop()
        old_slot = self._reg_tag.get(dest)
        if old_slot is not None:
            self._tag_unit[old_slot].latest = False
        entry = self._tag_unit[slot]
        entry.register = dest
        entry.free = False
        entry.latest = True
        self._reg_tag[dest] = slot
        return slot

    def _writeback(self, entry: WindowEntry) -> None:
        """The Tag Unit forwards the result to the register file.

        A latest-copy tag writes the register and clears its busy bit;
        a superseded tag is simply freed.  Either way the slot returns
        to the pool -- safe against tag aliasing because every waiting
        reservation station captured the value from this broadcast in
        the same cycle.
        """
        slot = entry.dest_tag
        tu_entry = self._tag_unit[slot]
        if tu_entry.free or tu_entry.register != entry.inst.dest:
            raise SimulationError(
                f"tag {slot} does not belong to {entry.inst.dest}"
            )
        if tu_entry.latest:
            self.regs.write(entry.inst.dest, entry.result)
            if self._reg_tag.get(entry.inst.dest) == slot:
                del self._reg_tag[entry.inst.dest]
        tu_entry.register = None
        tu_entry.free = True
        tu_entry.latest = False
        self._free_tags.append(slot)

    # ------------------------------------------------------------------

    def tags_in_use(self) -> int:
        return self.config.n_tags - len(self._free_tags)
