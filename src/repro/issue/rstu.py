"""The RS Tag Unit -- merged reservation stations and tags (paper §3.2.3).

In the Tag Unit + RS Pool design, every instruction in the pool or in a
functional unit holds exactly one tag, so the tag pool and the station
pool can be one structure: the **RSTU**.  Reserving a station *is*
reserving a tag:

* issue takes a free RSTU entry (blocking when full) -- the entry index
  is the tag;
* the associative latest-copy logic lives on the entries themselves;
* an entry is occupied until its instruction *completes* (a station is
  "wasted" while the instruction is in a functional unit -- the paper
  accepts this because the same organization later yields the RUU);
* completion broadcasts on the result bus, updates the register file if
  the entry holds the latest copy, and frees the entry.

This is the machine of Tables 2 (one dispatch path) and 3 (two dispatch
paths).  It does *not* implement precise interrupts: entries complete
and update architectural state out of program order.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.registers import Register
from .rspool import RSPoolEngine


class RSTUEngine(RSPoolEngine):
    """Merged reservation-station/tag pool, out-of-order commitment.

    ``config.window_size`` is the number of RSTU entries (the x-axis of
    Tables 2 and 3); ``config.dispatch_paths`` selects between them.
    """

    name = "rstu"

    # -- tags are the entries themselves --------------------------------

    def _allocate_dest_tag(self, dest: Register, seq: int):
        """Reserving the station reserved the tag: use the dynamic seq as
        the unique identifier of this entry's slot.  Capacity was already
        checked by ``_station_available``; the old latest copy (if any)
        is superseded by updating the latest-tag map."""
        self._reg_tag[dest] = seq
        return seq

    def _writeback(self, entry) -> None:
        """Write the register file only from the latest copy."""
        dest = entry.inst.dest
        if self._reg_tag.get(dest) == entry.dest_tag:
            self.regs.write(dest, entry.result)
            del self._reg_tag[dest]

    # -- entries persist through execution --------------------------------

    def _entry_released_at_dispatch(self) -> bool:
        return False
