"""Tag Unit with merged reservation stations (paper §3.2.2).

With one pool of reservation stations per functional unit, one unit can
run out of stations while another's sit idle.  Merging all stations
into a single *RS Pool* shares them across units; the cost is a limited
number of dispatch paths from the pool to the functional units
(``config.dispatch_paths``, versus one implicit path per unit in the
distributed design).

``config.window_size`` is the *total* pool size for this engine.
Tags still come from the separate Tag Unit (``config.n_tags``).
"""

from __future__ import annotations

from typing import Iterable, List

from ..isa.instruction import Instruction
from ..machine.stats import StallReason
from .common import WindowEntry
from .tagunit import TagUnitEngine


class RSPoolEngine(TagUnitEngine):
    """A common reservation-station pool in front of all functional units."""

    name = "rspool"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pool: List[WindowEntry] = []

    # -- station organization -------------------------------------------

    def _station_available(self, inst: Instruction) -> bool:
        return len(self._pool) < self.config.window_size

    def _insert_entry(self, entry: WindowEntry) -> None:
        self._pool.append(entry)

    def _release_entry(self, entry: WindowEntry) -> None:
        self._pool.remove(entry)

    def _iter_entries(self) -> Iterable[WindowEntry]:
        return iter(self._pool)

    def _occupied(self) -> int:
        return len(self._pool)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_from_stations(self) -> None:
        """Up to ``dispatch_paths`` instructions leave the pool per cycle.

        Selection priority follows the paper's RUU rule: memory
        operations first, then age.  (The pool list is in program
        order; a snapshot is taken because dispatch removes entries.)
        """
        budget = self.config.dispatch_paths
        candidates = [e for e in self._pool if not e.dispatched]
        candidates.sort(key=lambda e: (not e.inst.is_memory, e.seq))
        for entry in candidates:
            if budget == 0:
                break
            if not self._entry_ready(entry):
                continue
            if self._dispatch(entry):
                budget -= 1
