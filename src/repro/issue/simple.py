"""The simple instruction issue mechanism (the paper's Table 1 baseline).

This is CRAY-1-style issue logic: instructions issue strictly in program
order from the decode stage, and an instruction *blocks issue* until

* none of its source registers is busy (reserved by an in-flight write),
* its destination register is not busy,
* its functional unit can accept an operation, and
* the single result bus is free at the cycle its result will emerge
  (the bus is reserved at issue; CRAY-1 latencies are fixed, so this is
  decidable at issue time).

There is no window: a stalled instruction holds the decode stage and
everything behind it.  Instructions still *complete* out of program
order (different functional-unit latencies), which is exactly why this
machine has imprecise interrupts -- the motivating problem of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpKind
from ..isa.registers import Register
from ..isa.semantics import (
    coerce_for_bank,
    effective_address,
    evaluate,
)
from ..machine.engine import Engine
from ..machine.faults import FAULT_TYPES
from ..machine.stats import StallReason


class _Completion:
    """An in-flight instruction awaiting its writeback cycle."""

    __slots__ = ("seq", "inst", "value", "fault")

    def __init__(self, seq: int, inst: Instruction, value=None,
                 fault: Optional[Exception] = None) -> None:
        self.seq = seq
        self.inst = inst
        self.value = value
        self.fault = fault


class SimpleEngine(Engine):
    """In-order blocking issue with register busy bits."""

    name = "simple"
    claims_precise_interrupts = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._busy: Set[Register] = set()
        self._inflight = 0

    # ------------------------------------------------------------------

    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        for reg in inst.sources:
            if reg in self._busy:
                self.stall(StallReason.SOURCE_BUSY)
                return False
        dest = inst.dest
        if dest is not None and dest in self._busy:
            self.stall(StallReason.DEST_BUSY)
            return False
        if not self.fus.can_accept(inst.fu, self.cycle):
            self.stall(StallReason.FU_BUSY)
            return False
        done_cycle = self.fus.result_cycle(inst.fu, self.cycle)
        if dest is not None and not self.result_bus.is_free(done_cycle):
            self.stall(StallReason.RESULT_BUS)
            return False

        value, fault = self._execute(inst)
        self.fus.accept(inst.fu, self.cycle)
        if dest is not None:
            self.result_bus.reserve(done_cycle)
            self._busy.add(dest)
        self._schedule_completion(done_cycle, _Completion(seq, inst, value, fault))
        self._inflight += 1
        self.note(seq, "issue")
        self.note(seq, "dispatch")  # issue is dispatch on this machine
        return True

    def _execute(self, inst: Instruction) -> Tuple[object, Optional[Exception]]:
        """Perform the instruction's state reads (and store writes) now.

        In-order issue means register reads and memory accesses at issue
        time see the correct architectural values: per-address memory
        order equals program order.  Stores therefore update memory at
        issue -- which is precisely what makes this machine's interrupts
        imprecise with respect to memory.
        """
        kind = inst.opcode.kind
        try:
            if kind is OpKind.LOAD:
                address = effective_address(self.regs.read(inst.base), inst.imm)
                value = self.memory.read(address)
                return coerce_for_bank(inst.dest, value), None
            if kind is OpKind.STORE:
                address = effective_address(self.regs.read(inst.base), inst.imm)
                self.memory.write(address, self.regs.read(inst.srcs[0]))
                return None, None
            operands = [self.regs.read(reg) for reg in inst.srcs]
            raw = evaluate(inst.opcode, operands, inst.imm)
            return coerce_for_bank(inst.dest, raw), None
        except FAULT_TYPES as fault:
            return None, fault

    # ------------------------------------------------------------------

    def _phase_complete(self) -> None:
        for completion in self._pop_completions():
            self._inflight -= 1
            if completion.fault is not None:
                self._take_interrupt(
                    completion.fault,
                    seq=completion.seq,
                    pc=completion.inst.pc,
                    precise=False,
                )
                return
            dest = completion.inst.dest
            if dest is not None:
                self.regs.write(dest, completion.value)
                self._busy.discard(dest)
            self.note(completion.seq, "complete")
            self._note_retired(completion.seq)

    def _register_pending(self, reg: Register) -> bool:
        return reg in self._busy

    def _drained(self) -> bool:
        return self._inflight == 0
