"""The dispatch stack: out-of-order issue *without* renaming.

The paper cites Acosta, Kjelstrup & Torng [18] as the other family of
dependency-resolution mechanisms in the literature.  Their *dispatch
stack* holds decoded instructions in a central window and issues any
instruction whose hazards are clear -- but unlike Tomasulo's scheme it
captures **no operand values and allocates no tags**, so it must
respect anti- and output-dependencies in addition to true ones.  An
entry may dispatch only when, among *older* window entries:

* no one still writes any of its sources (RAW),
* no one still reads its destination without having dispatched (WAR --
  operands are read from the register file at dispatch), and
* no one still writes its destination (WAW -- results go straight to
  the register file at completion).

Comparing this engine against Tomasulo/RSTU isolates the value of
register renaming: both issue out of order from a window, but the
dispatch stack serializes on WAR/WAW hazards that multiple register
instances simply remove (ablation A3).
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instruction import Instruction
from ..isa.registers import Register
from ..isa.semantics import coerce_for_bank, evaluate
from ..machine.engine import Engine
from ..machine.faults import FAULT_TYPES
from ..machine.stats import StallReason
from ..memdep import FROM_MEMORY, MemoryDependencyUnit
from .common import WindowEntry


class _StackEntry:
    """One dispatch-stack slot (no operand copies, no tags)."""

    __slots__ = ("seq", "inst", "dispatched", "done", "result",
                 "fault", "address")

    def __init__(self, seq: int, inst: Instruction) -> None:
        self.seq = seq
        self.inst = inst
        self.dispatched = False
        self.done = False
        self.result = None
        self.fault: Optional[Exception] = None
        self.address: Optional[int] = None


class DispatchStackEngine(Engine):
    """Centralized out-of-order issue with no register renaming."""

    name = "dispatch-stack"
    claims_precise_interrupts = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.mdu = MemoryDependencyUnit(self.config.n_load_registers)
        self.stack: List[_StackEntry] = []
        self._inflight = 0
        self.occupancy_accum = 0

    # ------------------------------------------------------------------

    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        if len(self.stack) >= self.config.window_size:
            self.stall(StallReason.WINDOW_FULL)
            return False
        if inst.is_memory and not self.mdu.can_accept():
            self.stall(StallReason.NO_LOAD_REGISTER)
            return False
        entry = _StackEntry(seq, inst)
        self.stack.append(entry)
        if inst.is_memory:
            self.mdu.add(seq, inst.is_store)
        self.note(seq, "issue")
        return True

    # ------------------------------------------------------------------

    def _phase_dispatch(self) -> None:
        if self.interrupt_record is not None:
            return
        self.occupancy_accum += len(self.stack)
        self._resolve_addresses()
        for entry in self.stack:
            if entry.dispatched:
                continue
            if not self._hazards_clear(entry):
                continue
            if self._dispatch(entry):
                break  # one dispatch port, as in the base RSTU machine

    def _resolve_addresses(self) -> None:
        """Addresses resolve in program order once hazard-free.

        Without operand capture, the base register is read at
        resolution time; this is safe only when no older entry still
        writes it -- the same check dispatching uses.
        """
        while True:
            seq = self.mdu.oldest_unresolved()
            if seq is None:
                return
            entry = next(e for e in self.stack if e.seq == seq)
            if not self._raw_clear_for(entry, [entry.inst.base]):
                return
            base_value = self.regs.read(entry.inst.base)
            from ..isa.semantics import effective_address
            entry.address = effective_address(base_value, entry.inst.imm)
            self.mdu.resolve(seq, entry.address)
            if entry.inst.is_store:
                # datum is read at dispatch; publish then
                pass

    def _raw_clear_for(self, entry: _StackEntry, regs) -> bool:
        for other in self.stack:
            if other.seq >= entry.seq:
                break
            if other.done or other.inst.dest is None:
                continue
            if other.inst.dest in regs:
                return False
        return True

    def _hazards_clear(self, entry: _StackEntry) -> bool:
        inst = entry.inst
        sources = inst.sources
        dest = inst.dest
        for other in self.stack:
            if other.seq >= entry.seq:
                break
            other_inst = other.inst
            # RAW: an older, unfinished writer of one of our sources.
            if not other.done and other_inst.dest is not None \
                    and other_inst.dest in sources:
                return False
            if dest is not None:
                # WAR: an older entry reads our destination and has not
                # yet picked its operands up (reads happen at dispatch).
                if not other.dispatched and dest in other_inst.sources:
                    return False
                # WAW: an older, unfinished writer of our destination.
                if not other.done and other_inst.dest == dest:
                    return False
        if inst.is_memory:
            if not self.mdu.is_resolved(entry.seq):
                return False
            if inst.is_store:
                return self.mdu.store_may_dispatch(entry.seq)
            return self.mdu.load_source_ready(entry.seq)
        return True

    def _dispatch(self, entry: _StackEntry) -> bool:
        inst = entry.inst
        if not self.fus.can_accept(inst.fu, self.cycle):
            return False
        latency = self.config.latency(inst.fu)
        if inst.is_load and self.mdu.binding_of(entry.seq) is not FROM_MEMORY:
            latency = self.config.forward_latency
        done_cycle = self.cycle + latency
        if inst.dest is not None and not self.result_bus.is_free(done_cycle):
            self.result_bus.conflicts += 1
            return False
        # operands are read from the register file *now*
        try:
            if inst.is_load:
                if self.mdu.binding_of(entry.seq) is FROM_MEMORY:
                    raw = self.memory.read(entry.address)
                else:
                    raw = self.mdu.forwarded_value(entry.seq)
                entry.result = coerce_for_bank(inst.dest, raw)
            elif inst.is_store:
                datum = self.regs.read(inst.srcs[0])
                self.mdu.publish(entry.seq, datum)
                self.memory.write(entry.address, datum)
            else:
                operands = [self.regs.read(reg) for reg in inst.srcs]
                raw = evaluate(inst.opcode, operands, inst.imm)
                entry.result = coerce_for_bank(inst.dest, raw)
        except FAULT_TYPES as fault:
            entry.fault = fault
        self.fus.accept(inst.fu, self.cycle)
        if inst.dest is not None:
            self.result_bus.reserve(done_cycle)
        entry.dispatched = True
        if inst.is_memory:
            self.mdu.mark_dispatched(entry.seq)
        self._schedule_completion(done_cycle, entry)
        self._inflight += 1
        self.note(entry.seq, "dispatch")
        return True

    # ------------------------------------------------------------------

    def _phase_complete(self) -> None:
        for entry in self._pop_completions():
            self._inflight -= 1
            if entry.fault is not None:
                self._take_interrupt(
                    entry.fault, seq=entry.seq, pc=entry.inst.pc,
                    precise=False,
                )
                return
            entry.done = True
            if entry.inst.dest is not None:
                self.regs.write(entry.inst.dest, entry.result)
            if entry.inst.is_memory:
                if entry.inst.is_load:
                    self.mdu.publish(entry.seq, entry.result)
                self.mdu.finish(entry.seq)
            self.stack.remove(entry)
            self.note(entry.seq, "complete")
            self._note_retired(entry.seq)

    # ------------------------------------------------------------------

    def _register_pending(self, reg: Register) -> bool:
        return any(
            not entry.done and entry.inst.dest == reg
            for entry in self.stack
        )

    def _drained(self) -> bool:
        return not self.stack and self._inflight == 0

    def result(self):
        sim_result = super().result()
        if self.cycle:
            sim_result.extra["avg_window_occupancy"] = (
                self.occupancy_accum / self.cycle
            )
        return sim_result
