"""Tomasulo's algorithm with distributed reservation stations (paper §3.1).

The IBM 360/91 dependency-resolution scheme, extended (as in Weiss &
Smith [17]) to the full CRAY-1 register complement:

* every register carries a busy bit and a tag identifying its pending
  producer -- for our 144 registers that means 144 tag-matching units,
  the hardware cost that motivates the paper's Tag Unit;
* an issuing instruction reads available operands from the register
  file and takes *tags* for busy ones, then parks in a reservation
  station attached to its functional unit;
* reservation stations monitor the common result bus and capture
  matching results;
* when all operands are present the instruction is dispatched and its
  station is released;
* memory operations resolve their dependencies through the load
  registers (:mod:`repro.memdep`).

Instructions complete -- and update registers and memory -- out of
program order, so interrupts are imprecise.

The subclasses in :mod:`repro.issue.tagunit`, :mod:`repro.issue.rspool`
and :mod:`repro.issue.rstu` reuse this engine's dispatch/complete
machinery and override only tag allocation and station organization,
mirroring how the paper evolves the design (§3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import FUClass
from ..isa.registers import Register
from ..isa.semantics import coerce_for_bank, evaluate
from ..machine.engine import Engine
from ..machine.faults import FAULT_TYPES, SimulationError
from ..machine.stats import StallReason
from ..memdep import FROM_MEMORY, MemoryDependencyUnit
from .common import Operand, WindowEntry


class TomasuloEngine(Engine):
    """Out-of-order issue via per-register tags and distributed stations.

    ``config.window_size`` is the reservation-station count *per
    functional unit* for this engine (the stations are distributed).
    """

    name = "tomasulo"
    claims_precise_interrupts = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.mdu = MemoryDependencyUnit(self.config.n_load_registers)
        self._stations: Dict[FUClass, List[WindowEntry]] = {
            fu: [] for fu in FUClass
        }
        self._reg_tag: Dict[Register, object] = {}
        self._unresolved: Deque[WindowEntry] = deque()
        self._pending_publish: List[WindowEntry] = []
        self._inflight = 0
        self.occupancy_accum = 0

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        if inst.is_memory and not self.mdu.can_accept():
            self.stall(StallReason.NO_LOAD_REGISTER)
            return False
        if not self._station_available(inst):
            self.stall(StallReason.WINDOW_FULL)
            return False
        # Read sources *before* tagging the destination: an instruction
        # like ``A_ADDI A1, A1, 1`` must take A1's previous tag, not its
        # own freshly allocated one.
        operands = [self._source_operand(reg) for reg in inst.sources]
        dest_tag = None
        if inst.dest is not None:
            dest_tag = self._allocate_dest_tag(inst.dest, seq)
            if dest_tag is None:
                self.stall(StallReason.NO_TAG)
                return False
        entry = WindowEntry(seq, inst, operands, dest_tag=dest_tag)
        self._insert_entry(entry)
        if inst.is_memory:
            self.mdu.add(seq, inst.is_store)
            self._unresolved.append(entry)
            if inst.is_store:
                self._pending_publish.append(entry)
        self.note(seq, "issue")
        return True

    def _source_operand(self, reg: Register) -> Operand:
        """Register-file read or tag capture, per the busy bit."""
        tag = self._reg_tag.get(reg)
        if tag is None:
            return Operand(True, self.regs.read(reg))
        return Operand(False, tag=tag)

    # -- hooks specialized by the Tag Unit / RS pool / RSTU engines -----

    def _station_available(self, inst: Instruction) -> bool:
        return len(self._stations[inst.fu]) < self.config.window_size

    def _insert_entry(self, entry: WindowEntry) -> None:
        self._stations[entry.inst.fu].append(entry)

    def _allocate_dest_tag(self, dest: Register, seq: int):
        """Tomasulo proper: an unbounded tag space (tag = dynamic seq)."""
        self._reg_tag[dest] = seq
        return seq

    def _writeback(self, entry: WindowEntry) -> None:
        """Update the register file and clear the busy bit if this result
        carries the *latest* tag for its destination register."""
        dest = entry.inst.dest
        if self._reg_tag.get(dest) == entry.dest_tag:
            self.regs.write(dest, entry.result)
            del self._reg_tag[dest]

    def _release_entry(self, entry: WindowEntry) -> None:
        """Free the reservation station.  Tomasulo/TagUnit/RSPool release
        at dispatch; the RSTU overrides to release at completion."""
        self._stations[entry.inst.fu].remove(entry)

    def _entry_released_at_dispatch(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _phase_dispatch(self) -> None:
        if self.interrupt_record is not None:
            return
        self._resolve_addresses()
        self._publish_store_data()
        self.occupancy_accum += self._occupied()
        self._dispatch_from_stations()

    def _resolve_addresses(self) -> None:
        """Compute effective addresses strictly in program order: an
        unknown address blocks all younger memory ops (paper §3.2.1.2)."""
        while self._unresolved:
            entry = self._unresolved[0]
            if not entry.address_computable():
                break
            self.mdu.resolve(entry.seq, entry.compute_address())
            self._unresolved.popleft()

    def _publish_store_data(self) -> None:
        """Make store data visible to forwarded loads once available."""
        still_waiting: List[WindowEntry] = []
        for entry in self._pending_publish:
            if entry.squashed:
                continue
            if entry.datum_operand.ready:
                self.mdu.publish(entry.seq, entry.datum_operand.value)
                entry.datum_published = True
            else:
                still_waiting.append(entry)
        self._pending_publish = still_waiting

    def _dispatch_from_stations(self) -> None:
        """Each functional unit independently dispatches its oldest ready
        instruction (distributed stations: no shared dispatch port)."""
        for fu, stations in self._stations.items():
            for entry in stations:
                if entry.dispatched:
                    continue
                if not self._entry_ready(entry):
                    continue
                self._dispatch(entry)
                break

    def _entry_ready(self, entry: WindowEntry) -> bool:
        """Operands present plus the memory-ordering conditions."""
        inst = entry.inst
        if inst.is_memory:
            if not self.mdu.is_resolved(entry.seq):
                return False
            if inst.is_store:
                return (
                    entry.operands_ready()
                    and self.mdu.store_may_dispatch(entry.seq)
                )
            return self.mdu.load_source_ready(entry.seq)
        return entry.operands_ready()

    def _dispatch(self, entry: WindowEntry) -> bool:
        """Send one ready entry to its functional unit.

        Reserves the result bus for the completion cycle; a bus conflict
        cancels the dispatch (retried next cycle).
        """
        inst = entry.inst
        if not self.fus.can_accept(inst.fu, self.cycle):
            return False
        latency = self._execution_latency(entry)
        done_cycle = self.cycle + latency
        if inst.dest is not None and not self.result_bus.is_free(done_cycle):
            self.result_bus.conflicts += 1
            return False
        self._execute(entry)
        self.fus.accept(inst.fu, self.cycle)
        if inst.dest is not None:
            self.result_bus.reserve(done_cycle)
        entry.dispatched = True
        if inst.is_memory:
            self.mdu.mark_dispatched(entry.seq)
        if self._entry_released_at_dispatch():
            self._release_entry(entry)
        self._schedule_completion(done_cycle, entry)
        self._inflight += 1
        self.note(entry.seq, "dispatch")
        return True

    def _execution_latency(self, entry: WindowEntry) -> int:
        if entry.inst.is_load and \
                self.mdu.binding_of(entry.seq) is not FROM_MEMORY:
            return self.config.forward_latency
        return self.config.latency(entry.inst.fu)

    def _execute(self, entry: WindowEntry) -> None:
        """Compute the entry's result (delivered at its completion cycle).

        Memory is accessed here, at dispatch: stores become visible
        out of program order relative to other instructions -- the
        imprecise behaviour under study -- but in per-address order
        (``store_may_dispatch`` and the in-order address resolution).
        """
        inst = entry.inst
        try:
            if inst.is_load:
                if self.mdu.binding_of(entry.seq) is FROM_MEMORY:
                    raw = self.memory.read(entry.address)
                else:
                    raw = self.mdu.forwarded_value(entry.seq)
                entry.result = coerce_for_bank(inst.dest, raw)
            elif inst.is_store:
                self._store_to_memory(entry)
            else:
                raw = evaluate(inst.opcode, entry.operand_values(), inst.imm)
                entry.result = coerce_for_bank(inst.dest, raw)
        except FAULT_TYPES as fault:
            entry.fault = fault

    def _store_to_memory(self, entry: WindowEntry) -> None:
        """Out-of-order-completion engines write memory at dispatch."""
        self.memory.write(entry.address, entry.datum_operand.value)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _phase_complete(self) -> None:
        for entry in self._pop_completions():
            if entry.squashed:
                self._inflight -= 1
                continue
            if entry.fault is not None:
                self._take_interrupt(
                    entry.fault, seq=entry.seq, pc=entry.inst.pc,
                    precise=False,
                )
                return
            self._inflight -= 1
            entry.executed_cycle = self.cycle
            if entry.inst.dest is not None:
                self._broadcast(entry.dest_tag, entry.result)
                self._writeback(entry)
            if entry.inst.is_memory:
                if entry.inst.is_load:
                    self.mdu.publish(entry.seq, entry.result)
                self.mdu.finish(entry.seq)
            if not self._entry_released_at_dispatch():
                self._release_entry(entry)
            self.note(entry.seq, "complete")
            self._note_retired(entry.seq)

    def _broadcast(self, tag, value) -> None:
        """Drive (tag, value) on the result bus: every waiting station
        operand with a matching tag captures the value."""
        for entry in self._iter_entries():
            entry.snoop(tag, value)

    def _iter_entries(self) -> Iterable[WindowEntry]:
        for stations in self._stations.values():
            for entry in stations:
                yield entry

    def _occupied(self) -> int:
        return sum(len(stations) for stations in self._stations.values())

    # ------------------------------------------------------------------

    def _register_pending(self, reg: Register) -> bool:
        return reg in self._reg_tag

    def _drained(self) -> bool:
        return self._inflight == 0 and self._occupied() == 0

    def result(self):
        sim_result = super().result()
        if self.cycle:
            sim_result.extra["avg_window_occupancy"] = (
                self.occupancy_accum / self.cycle
            )
        sim_result.extra["memory_forwards"] = self.mdu.forwards
        return sim_result
