"""The Register Update Unit (paper sections 5 and 6) -- the contribution.

The RUU is the RSTU *managed as a queue*: instructions enter at the tail
in program order and leave at the head in program order.  That single
constraint buys two things at once:

1. **Precise interrupts.**  Architectural state (registers *and*
   memory) is updated only at the head, in program order -- the RUU is
   simultaneously a reorder buffer.  When the head instruction has a
   fault, everything younger is squashed and the visible state is
   exactly the sequential state before the faulting instruction.

2. **Cheap tags.**  Because results return to each register in program
   order, the associative latest-copy search of the RSTU collapses to
   two small counters per register (paper §5.1):

   * ``NI`` -- Number of Instances of the register in the RUU, and
   * ``LI`` -- the Latest Instance number (incremented modulo 2^n).

   A source tag is simply ``(register, LI)``; issue blocks when
   ``NI == 2^n - 1``.  No associative tag allocation remains -- only
   the tag *match* in the reservation stations, which every scheme
   needs.

Three bypass configurations from section 6 are supported:

* ``BypassMode.FULL`` (Table 4): an operand whose producer has executed
  but not yet committed is read directly from the RUU at issue time.
* ``BypassMode.NONE`` (Table 5): no such read path.  Reservation
  stations (and a branch waiting in decode) monitor **both** the result
  bus and the RUU-to-register-file commit bus, so the dependency
  resolves when the producer's value travels on either -- but a value
  that is already sitting in the RUU when the consumer issues is only
  obtained when the producer *commits*.
* ``BypassMode.LIMITED`` (Table 6): the A register file is duplicated
  as a *future file* updated at completion time, restoring the bypass
  path for A registers only (the branch-condition registers); B, S and
  T behave as in ``NONE``.  Reading the newest executed instance from
  the RUU entry is exactly the future-file read, and is implemented
  that way here.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.registers import RegBank, Register
from ..isa.semantics import coerce_for_bank, evaluate
from ..machine.engine import Engine
from ..machine.faults import FAULT_TYPES, PageFault, SimulationError
from ..machine.stats import StallReason
from ..memdep import FROM_MEMORY, MemoryDependencyUnit
from ..issue.common import Operand, WindowEntry

Tag = Tuple[Register, int]


class BypassMode(enum.Enum):
    """Operand-bypass configurations evaluated in section 6."""

    FULL = "bypass"       # Table 4: read executed results from the RUU
    NONE = "nobypass"     # Table 5: wait for a bus (result or commit)
    LIMITED = "limited"   # Table 6: future file for the A registers only


class RUUEngine(Engine):
    """Queue-managed reservation stations with in-order commit."""

    name = "ruu"
    claims_precise_interrupts = True

    def __init__(self, *args, bypass: BypassMode = BypassMode.FULL,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bypass = bypass
        self.name = f"ruu-{bypass.value}"
        self.mdu = MemoryDependencyUnit(self.config.n_load_registers)
        self.window: Deque[WindowEntry] = deque()
        self._ni: Dict[Register, int] = {}
        self._li: Dict[Register, int] = {}
        self._live: Dict[Tag, WindowEntry] = {}
        self._unresolved: Deque[WindowEntry] = deque()
        self._pending_publish: List[WindowEntry] = []
        self._decode_watch_tag: Optional[Tag] = None
        self._decode_watch_value = None
        self._decode_watch_hit = False
        self._inflight = 0
        self.max_ni_observed = 0
        self.occupancy_accum = 0

    # ------------------------------------------------------------------
    # issue (tail of the queue)
    # ------------------------------------------------------------------

    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        if len(self.window) >= self.config.window_size:
            self.stall(StallReason.WINDOW_FULL)
            return False
        if inst.is_memory and not self.mdu.can_accept():
            self.stall(StallReason.NO_LOAD_REGISTER)
            return False
        dest = inst.dest
        if dest is not None and \
                self._ni.get(dest, 0) >= self.config.max_instances:
            self.stall(StallReason.INSTANCE_LIMIT)
            return False

        # Sources first (an instruction may read its own destination's
        # previous instance), then create the new destination instance.
        operands = [self._source_operand(reg) for reg in inst.sources]
        dest_tag: Optional[Tag] = None
        if dest is not None:
            ni = self._ni.get(dest, 0) + 1
            self._ni[dest] = ni
            self.max_ni_observed = max(self.max_ni_observed, ni)
            li = (self._li.get(dest, 0) + 1) % (1 << self.config.counter_bits)
            self._li[dest] = li
            dest_tag = (dest, li)
        entry = WindowEntry(seq, inst, operands, dest_tag=dest_tag)
        self.window.append(entry)
        if dest_tag is not None:
            self._live[dest_tag] = entry
        if inst.is_memory:
            self.mdu.add(seq, inst.is_store)
            self._unresolved.append(entry)
            if inst.is_store:
                self._pending_publish.append(entry)
        self.note(seq, "issue")
        return True

    def _source_operand(self, reg: Register) -> Operand:
        """Register-file read, RUU bypass read, or tag to snoop.

        With ``NI == 0`` the register file holds the latest instance
        (commits are in order).  Otherwise the latest instance is tag
        ``(reg, LI)``: a bypass-enabled bank may read it from the RUU if
        it has executed; a bypass-disabled bank waits for the value to
        travel on the result bus or the commit bus.
        """
        if self._ni.get(reg, 0) == 0:
            return Operand(True, self.regs.read(reg))
        tag = (reg, self._li[reg])
        if self._bypass_allows(reg):
            producer = self._live.get(tag)
            if producer is not None and producer.executed \
                    and producer.fault is None:
                return Operand(True, producer.result)
        return Operand(False, tag=tag)

    def _bypass_allows(self, reg: Register) -> bool:
        if self.bypass is BypassMode.FULL:
            return True
        if self.bypass is BypassMode.LIMITED:
            return reg.bank is RegBank.A
        return False

    # ------------------------------------------------------------------
    # dispatch (RUU -> functional units)
    # ------------------------------------------------------------------

    def _phase_dispatch(self) -> None:
        if self.interrupt_record is not None:
            return
        self._resolve_addresses()
        self._publish_store_data()
        self.occupancy_accum += len(self.window)
        budget = self.config.dispatch_paths
        budget = self._dispatch_pass(budget, memory_only=True)
        self._dispatch_pass(budget, memory_only=False)

    def _dispatch_pass(self, budget: int, memory_only: bool) -> int:
        """One priority class, oldest first (paper: loads/stores first,
        then the instruction that entered the RUU earliest)."""
        if budget <= 0:
            return 0
        for entry in self.window:
            if budget == 0:
                break
            if entry.dispatched or entry.inst.is_memory != memory_only:
                continue
            if not self._entry_ready(entry):
                continue
            if self._dispatch(entry):
                budget -= 1
        return budget

    def _resolve_addresses(self) -> None:
        """Effective addresses resolve strictly in program order."""
        while self._unresolved:
            entry = self._unresolved[0]
            if not entry.address_computable():
                break
            self.mdu.resolve(entry.seq, entry.compute_address())
            self._unresolved.popleft()

    def _publish_store_data(self) -> None:
        still_waiting: List[WindowEntry] = []
        for entry in self._pending_publish:
            if entry.squashed:
                continue
            if entry.datum_operand.ready:
                self.mdu.publish(entry.seq, entry.datum_operand.value)
                entry.datum_published = True
            else:
                still_waiting.append(entry)
        self._pending_publish = still_waiting

    def _entry_ready(self, entry: WindowEntry) -> bool:
        inst = entry.inst
        if inst.is_memory:
            if not self.mdu.is_resolved(entry.seq):
                return False
            if inst.is_store:
                return (
                    entry.operands_ready()
                    and self.mdu.store_may_dispatch(entry.seq)
                )
            return self.mdu.load_source_ready(entry.seq)
        return entry.operands_ready()

    def _execution_latency(self, entry: WindowEntry) -> int:
        inst = entry.inst
        if inst.is_store:
            return self.config.store_execute_latency
        if inst.is_load and self.mdu.binding_of(entry.seq) is not FROM_MEMORY:
            return self.config.forward_latency
        return self.config.latency(inst.fu)

    def _dispatch(self, entry: WindowEntry) -> bool:
        """Send a ready entry to its functional unit, reserving the
        result bus for its completion cycle (paper: "The RUU reserves
        the result bus when it issues an instruction")."""
        inst = entry.inst
        if not self.fus.can_accept(inst.fu, self.cycle):
            return False
        done_cycle = self.cycle + self._execution_latency(entry)
        if inst.dest is not None and not self.result_bus.is_free(done_cycle):
            self.result_bus.conflicts += 1
            return False
        self._execute(entry)
        self.fus.accept(inst.fu, self.cycle)
        if inst.dest is not None:
            self.result_bus.reserve(done_cycle)
        entry.dispatched = True
        if inst.is_memory:
            self.mdu.mark_dispatched(entry.seq)
        self._schedule_completion(done_cycle, entry)
        self._inflight += 1
        self.note(entry.seq, "dispatch")
        return True

    def _execute(self, entry: WindowEntry) -> None:
        """Compute the result now; it reaches the buses at completion.

        Loads read memory here (at dispatch): uncommitted older stores
        cannot be missed because a same-address pending store would have
        captured the load at binding time, and memory itself is only
        written by in-order commits.  Stores touch nothing until commit.
        """
        inst = entry.inst
        try:
            if inst.is_load:
                if self.mdu.binding_of(entry.seq) is FROM_MEMORY:
                    raw = self.memory.read(entry.address)
                else:
                    raw = self.mdu.forwarded_value(entry.seq)
                entry.result = coerce_for_bank(inst.dest, raw)
            elif inst.is_store:
                pass  # memory is written at commit, in program order
            else:
                raw = evaluate(inst.opcode, entry.operand_values(), inst.imm)
                entry.result = coerce_for_bank(inst.dest, raw)
        except FAULT_TYPES as fault:
            entry.fault = fault

    # ------------------------------------------------------------------
    # completion (functional units -> result bus)
    # ------------------------------------------------------------------

    def _phase_complete(self) -> None:
        for entry in self._pop_completions():
            self._inflight -= 1
            if entry.squashed:
                continue
            entry.executed_cycle = self.cycle
            self.note(entry.seq, "complete")
            if entry.fault is not None:
                continue  # no result to broadcast; trap taken at commit
            if entry.inst.dest is not None:
                self._broadcast(entry.dest_tag, entry.result)
            if entry.inst.is_load:
                self.mdu.publish(entry.seq, entry.result)

    def _broadcast(self, tag: Tag, value) -> None:
        """Result-bus (and, from commit, commit-bus) tag match: waiting
        reservation stations and a watching decode stage capture."""
        for waiter in self.window:
            waiter.snoop(tag, value)
        if tag == self._decode_watch_tag:
            self._decode_watch_value = value
            self._decode_watch_hit = True

    # ------------------------------------------------------------------
    # commit (head of the queue -> architectural state)
    # ------------------------------------------------------------------

    def _phase_commit(self) -> None:
        if self.interrupt_record is not None:
            return
        budget = self.config.commit_paths
        while budget > 0 and self.window:
            entry = self.window[0]
            if not entry.executed or entry.executed_cycle >= self.cycle:
                return
            if entry.fault is not None:
                self._interrupt_at(entry)
                return
            if not self._commit_head(entry):
                return
            budget -= 1

    def _commit_head(self, entry: WindowEntry) -> bool:
        """Retire the head entry, updating the architectural state."""
        inst = entry.inst
        if inst.is_store:
            try:
                self.memory.write(entry.address, entry.datum_operand.value)
            except PageFault as fault:
                entry.fault = fault
                self._interrupt_at(entry)
                return False
        if inst.dest is not None:
            self.regs.write(inst.dest, entry.result)
            ni = self._ni[inst.dest] - 1
            if ni:
                self._ni[inst.dest] = ni
            else:
                del self._ni[inst.dest]
            # The RUU-to-register-file bus is snooped like the result bus.
            self._broadcast(entry.dest_tag, entry.result)
            self._live.pop(entry.dest_tag, None)
        if inst.is_memory:
            self.mdu.finish(entry.seq)
        self.window.popleft()
        self.note(entry.seq, "commit")
        self._note_retired(entry.seq)
        return True

    # ------------------------------------------------------------------
    # precise interrupts
    # ------------------------------------------------------------------

    def _interrupt_at(self, entry: WindowEntry) -> None:
        """Take a precise trap at the head instruction.

        Every younger instruction (all of which are in the RUU or still
        in a functional-unit pipeline) is squashed; none has touched
        architectural state.  The machine restarts at the faulting PC.
        """
        self._take_interrupt(
            entry.fault, seq=entry.seq, pc=entry.inst.pc, precise=True
        )
        # Branches and NOPs retire in the decode stage; any that were
        # younger than the trap will re-execute, so un-count them.
        doomed = sum(1 for seq in self.retire_log if seq >= entry.seq)
        if doomed:
            self.retired -= doomed
            self.retire_log = [
                seq for seq in self.retire_log if seq < entry.seq
            ]
        self._squash_all()
        self.pc = entry.inst.pc
        self.decode_slot = None
        # The squashed instructions (the faulting one included) will be
        # refetched; recycle their sequence numbers so ``seq`` remains
        # the dynamic program-order index across resumes.
        self.next_seq = entry.seq
        self.fetch_done = False
        self.fetch_resume_cycle = self.cycle + 1

    def _squash_all(self) -> None:
        for entry in self.window:
            entry.squashed = True
        self.squashed += len(self.window)
        self.window.clear()
        self._live.clear()
        self._ni.clear()
        self._unresolved.clear()
        self._pending_publish.clear()
        self.mdu.squash_from(0)
        self._clear_decode_watch()

    def _prepare_resume(self) -> None:
        """Nothing to rebuild: ``_interrupt_at`` already restored a clean
        machine (empty RUU, zero NI counters, PC at the trap)."""

    # ------------------------------------------------------------------
    # branches in the decode stage
    # ------------------------------------------------------------------

    def _branch_operand(self, reg: Register) -> Tuple[bool, object]:
        """Condition-register read under the configured bypass mode.

        This is where Table 6's mechanism lives: with no bypass, a
        branch whose condition was computed *before* the branch reached
        decode can only obtain it from the commit bus; duplicating the
        A register file (the future file) restores an immediate read.
        """
        if self._ni.get(reg, 0) == 0:
            self._clear_decode_watch()
            return True, self.regs.read(reg)
        tag = (reg, self._li[reg])
        if self._bypass_allows(reg):
            producer = self._live.get(tag)
            if producer is not None and producer.executed \
                    and producer.fault is None:
                self._clear_decode_watch()
                return True, producer.result
        if self._decode_watch_tag == tag and self._decode_watch_hit:
            value = self._decode_watch_value
            self._clear_decode_watch()
            return True, value
        self._decode_watch_tag = tag
        return False, None

    def _clear_decode_watch(self) -> None:
        self._decode_watch_tag = None
        self._decode_watch_value = None
        self._decode_watch_hit = False

    def _register_pending(self, reg: Register) -> bool:
        return self._ni.get(reg, 0) > 0

    # ------------------------------------------------------------------

    def _drained(self) -> bool:
        return not self.window and self._inflight == 0

    def result(self):
        sim_result = super().result()
        if self.cycle:
            sim_result.extra["avg_window_occupancy"] = (
                self.occupancy_accum / self.cycle
            )
        sim_result.extra["memory_forwards"] = self.mdu.forwards
        sim_result.extra["max_ni_observed"] = self.max_ni_observed
        sim_result.extra["bypass_mode"] = self.bypass.value
        return sim_result
