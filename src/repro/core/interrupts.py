"""Precise-interrupt experiment drivers (paper sections 4 and 5).

The paper's claim is qualitative: the RUU *implements precise
interrupts*, while machines that update state out of program order do
not.  This module turns that into checkable experiments:

* :func:`run_with_page_fault` injects a page fault at a chosen address
  and runs an engine until the interrupt;
* :func:`check_precision` compares the interrupted machine's visible
  state against the golden model's prefix state -- the definition of a
  precise interrupt (Smith & Pleszkun [5]): all instructions before the
  trap have completed, none after it has changed state;
* :func:`run_with_recovery` demonstrates restartability: service the
  fault, resume at the interrupt PC, and verify the final state equals
  a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..isa.program import Program
from ..machine.engine import Engine
from ..machine.faults import SimulationError
from ..machine.interrupts import InterruptRecord
from ..machine.memory import Memory
from ..trace.iss import FunctionalExecutor, prefix_state, reference_state

EngineFactory = Callable[[Program, Memory], Engine]


@dataclass
class PrecisionReport:
    """Outcome of one fault-injection run."""

    engine: str
    interrupt: Optional[InterruptRecord]
    register_diff: dict
    memory_diff: dict

    @property
    def precise(self) -> bool:
        """Was the visible state exactly the sequential prefix state?"""
        return (
            self.interrupt is not None
            and not self.register_diff
            and not self.memory_diff
        )

    def describe(self) -> str:
        if self.interrupt is None:
            return f"{self.engine}: no interrupt was taken"
        verdict = "PRECISE" if self.precise else "IMPRECISE"
        detail = ""
        if self.register_diff:
            detail += f" register deviations: {self.register_diff}"
        if self.memory_diff:
            detail += f" memory deviations: {self.memory_diff}"
        return f"{self.engine}: {self.interrupt.describe()} -> {verdict}{detail}"


def run_with_page_fault(
    factory: EngineFactory,
    program: Program,
    memory: Memory,
    fault_address: int,
) -> Tuple[Engine, Optional[InterruptRecord]]:
    """Run ``program`` with ``fault_address`` unmapped.

    Returns the engine (stopped at the interrupt, or completed if the
    address was never touched) and the interrupt record.
    """
    faulty = memory.copy()
    faulty.inject_fault(fault_address)
    engine = factory(program, faulty)
    engine.run()
    return engine, engine.interrupt_record


def check_precision(
    engine: Engine,
    program: Program,
    clean_memory: Memory,
) -> PrecisionReport:
    """Compare an interrupted engine's state with the golden prefix.

    ``clean_memory`` is the original (fault-free) input memory; the
    prefix is executed on a copy of it, so page-fault markers do not
    perturb the comparison.
    """
    record = engine.interrupt_record
    if record is None:
        return PrecisionReport(engine.name, None, {}, {})
    prefix = prefix_state(program, record.seq, memory=clean_memory)
    return PrecisionReport(
        engine=engine.name,
        interrupt=record,
        register_diff=prefix.regs.diff(engine.regs),
        memory_diff=prefix.memory.diff(engine.memory),
    )


def run_with_recovery(
    factory: EngineFactory,
    program: Program,
    memory: Memory,
    fault_address: int,
) -> Tuple[Engine, List[InterruptRecord]]:
    """Fault, service, resume -- possibly repeatedly -- to completion.

    Models the operating system mapping the missing page and restarting
    the user program at the interrupt PC.  Only engines with precise
    interrupts can do this; an imprecise engine raises
    :class:`SimulationError` from ``continue_run``.
    """
    faulty = memory.copy()
    faulty.inject_fault(fault_address)
    engine = factory(program, faulty)
    records: List[InterruptRecord] = []
    engine.run()
    while engine.interrupt_record is not None:
        records.append(engine.interrupt_record)
        faulty.service_fault(fault_address)
        engine.continue_run()
    return engine, records


@dataclass
class CampaignResult:
    """Outcome of a fault-injection campaign over one workload."""

    engine: str
    workload: str
    sites_tested: int
    faults_taken: int
    all_precise: bool
    all_recovered: bool
    imprecise_sites: List[int]

    def describe(self) -> str:
        status = "OK" if (self.all_precise and self.all_recovered) \
            else "FAILED"
        return (
            f"{self.engine} on {self.workload}: {self.faults_taken} faults "
            f"across {self.sites_tested} sites -> {status}"
        )


def fault_injection_campaign(
    factory: EngineFactory,
    workload,
    max_sites: Optional[int] = None,
) -> CampaignResult:
    """Inject a page fault at *every* distinct data address the workload
    touches (optionally capped) and verify precision + recovery at each.

    This is the exhaustive version of the paper's claim: not "an
    interrupt can be precise" but "every interrupt, at every memory
    site, is precise and restartable."
    """
    from ..trace.iss import FunctionalExecutor

    executor = FunctionalExecutor(workload.program, workload.make_memory())
    trace = executor.run()
    addresses: List[int] = []
    seen = set()
    for entry in trace:
        if entry.address is not None and entry.address not in seen:
            seen.add(entry.address)
            addresses.append(entry.address)
    if max_sites is not None:
        step = max(1, len(addresses) // max_sites)
        addresses = addresses[::step][:max_sites]

    golden = reference_state(workload.program, workload.initial_memory)
    faults_taken = 0
    imprecise: List[int] = []
    all_recovered = True
    engine_name = "?"
    for address in addresses:
        memory = workload.initial_memory.copy()
        memory.inject_fault(address)
        engine = factory(workload.program, memory)
        engine_name = engine.name
        engine.run()
        if engine.interrupt_record is None:
            continue  # e.g. a store-only page never read before write...
        faults_taken += 1
        report = check_precision(
            engine, workload.program, workload.initial_memory
        )
        if not report.precise:
            imprecise.append(address)
            continue
        while engine.interrupt_record is not None:
            memory.service_fault(engine.interrupt_record.cause.address)
            engine.continue_run()
        if engine.regs != golden.regs or engine.memory != golden.memory:
            all_recovered = False
    return CampaignResult(
        engine=engine_name,
        workload=workload.name,
        sites_tested=len(addresses),
        faults_taken=faults_taken,
        all_precise=not imprecise,
        all_recovered=all_recovered,
        imprecise_sites=imprecise,
    )


def demonstrate_restartability(
    factory: EngineFactory,
    program: Program,
    memory: Memory,
    fault_address: int,
) -> bool:
    """End-to-end check: fault + resume reaches the fault-free state."""
    engine, records = run_with_recovery(factory, program, memory, fault_address)
    if not records:
        raise SimulationError(
            f"address {fault_address} was never accessed; no fault taken"
        )
    clean = reference_state(program, memory)
    return engine.regs == clean.regs and engine.memory == clean.memory
