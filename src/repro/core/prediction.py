"""Branch predictors for the speculative RUU (paper section 7).

The paper points at Smith's branch-prediction study [6] and Lee & Smith
[7]; the standard mechanisms from those papers are provided:

* :class:`TwoBitPredictor` -- a table of two-bit saturating counters
  indexed by branch address (Smith's strategy 7);
* :class:`StaticBTFNPredictor` -- backward-taken / forward-not-taken;
* :class:`AlwaysTakenPredictor` -- the degenerate baseline.
"""

from __future__ import annotations

from typing import Dict

from ..isa.instruction import Instruction


class BranchPredictor:
    """Interface: predict by branch site, learn from outcomes."""

    def predict(self, inst: Instruction) -> bool:
        raise NotImplementedError

    def update(self, inst: Instruction, taken: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history."""


class TwoBitPredictor(BranchPredictor):
    """Per-site two-bit saturating counters (0..3; >=2 predicts taken).

    Counters start at ``initial`` (default 1: weakly not-taken) and are
    allocated on first use; ``table_size`` hashes sites into a finite
    table like a real branch-history table would.
    """

    def __init__(self, table_size: int = 256, initial: int = 1) -> None:
        if not 0 <= initial <= 3:
            raise ValueError("two-bit counter initial value must be 0..3")
        self.table_size = table_size
        self.initial = initial
        self._counters: Dict[int, int] = {}

    def _slot(self, inst: Instruction) -> int:
        return inst.pc % self.table_size

    def predict(self, inst: Instruction) -> bool:
        return self._counters.get(self._slot(inst), self.initial) >= 2

    def update(self, inst: Instruction, taken: bool) -> None:
        slot = self._slot(inst)
        counter = self._counters.get(slot, self.initial)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[slot] = counter

    def reset(self) -> None:
        self._counters.clear()


class StaticBTFNPredictor(BranchPredictor):
    """Backward branches predicted taken, forward not taken.

    Needs no state; loops (the dominant pattern in the Livermore
    benchmarks) are backward branches, so this static rule is strong.
    """

    def predict(self, inst: Instruction) -> bool:
        return inst.target is not None and inst.target <= inst.pc

    def update(self, inst: Instruction, taken: bool) -> None:
        pass


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken unconditionally."""

    def predict(self, inst: Instruction) -> bool:
        return True

    def update(self, inst: Instruction, taken: bool) -> None:
        pass
