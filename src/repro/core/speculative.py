"""Conditional (speculative) execution on the RUU (paper section 7).

The paper observes that the RUU is "a very powerful mechanism for
nullifying instructions": entries that have not committed can simply be
discarded, so executing down a *predicted* branch path costs no extra
state-recovery hardware -- no duplicated register file, and no hard
limit on the number of outstanding predicted branches (each path's
values are just further instances of the registers).

This engine extends :class:`~repro.core.ruu.RUUEngine`:

* a conditional branch whose condition is not yet readable no longer
  blocks the decode stage -- its direction is *predicted*, fetch is
  redirected, and the branch is parked in a pending-branch list that
  snoops the buses for the condition value (the paper's "additional
  field in the RUU" marking conditional instructions is modelled by
  this side list plus a commit gate);
* instructions younger than an unresolved branch may issue, dispatch
  and execute, but may **not commit** (nor raise their interrupts);
* when the condition arrives: a correct prediction simply lifts the
  gate; a misprediction squashes every younger entry, rolls the NI/LI
  instance counters back, and restarts fetch on the correct path.

Architectural equivalence with the golden model is preserved by
construction -- wrong-path instructions never touch registers (their
instances die with them), never write memory (stores write at commit),
and never trap (interrupts are commit-gated).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.semantics import branch_taken
from ..machine.stats import StallReason
from .prediction import BranchPredictor, TwoBitPredictor
from .ruu import RUUEngine, Tag


@dataclass
class PendingBranch:
    """A predicted, not-yet-resolved conditional branch."""

    seq: int
    inst: Instruction
    tag: Tag                  # condition-register instance to snoop for
    predicted: bool
    value: object = None
    value_ready: bool = False


class SpeculativeRUUEngine(RUUEngine):
    """RUU with branch prediction and conditional instruction execution."""

    def __init__(self, *args, predictor: Optional[BranchPredictor] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.predictor = predictor if predictor is not None \
            else TwoBitPredictor()
        self.name = f"spec-{self.name}"
        self._pending_branches: List[PendingBranch] = []
        self.predictions = 0

    # ------------------------------------------------------------------
    # decode: predict instead of blocking
    # ------------------------------------------------------------------

    def tick(self) -> None:
        self._phase_complete()
        self._resolve_pending_branches()
        self._phase_commit()
        self._phase_dispatch()
        self._phase_issue()

    def _issue_control_flow(self, inst: Instruction) -> None:
        if inst.opcode is Opcode.JMP:
            super()._issue_control_flow(inst)
            return
        ready, value = self._branch_operand(inst.srcs[0])
        if ready:
            taken = branch_taken(inst.opcode, value)
            self.predictor.update(inst, taken)
            self._redirect_after_branch(inst, taken)
            self.note(self.decode_seq, "issue")
            self.note(self.decode_seq, "commit")
            self._note_retired(self.decode_seq)
            self.decode_slot = None
            return
        if len(self._pending_branches) >= self.config.spec_max_branches:
            self.stall(StallReason.BRANCH_WAIT)
            return
        # Predict and continue down the chosen path in conditional mode.
        reg = inst.srcs[0]
        tag = (reg, self._li[reg])
        predicted = self.predictor.predict(inst)
        self.predictions += 1
        self._pending_branches.append(
            PendingBranch(self.decode_seq, inst, tag, predicted)
        )
        # The branch leaves decode into the pending list: that is its
        # issue, even though it resolves (and retires) much later.
        self.note(self.decode_seq, "issue")
        self._clear_decode_watch()
        if predicted:
            self.pc = inst.target
            penalty = self.config.spec_predict_taken_penalty
        else:
            self.pc = inst.pc + 1
            penalty = 0
        self.fetch_resume_cycle = self.cycle + 1 + penalty
        self.decode_slot = None

    def _redirect_after_branch(self, inst: Instruction, taken: bool) -> None:
        """Non-speculative resolution in decode (condition was readable)."""
        self.branches += 1
        if taken:
            self.branches_taken += 1
            self.pc = inst.target
            penalty = self.config.branch_taken_penalty
        else:
            self.pc = inst.pc + 1
            penalty = self.config.branch_not_taken_penalty
        self.fetch_resume_cycle = self.cycle + 1 + penalty

    # ------------------------------------------------------------------
    # condition arrival and resolution
    # ------------------------------------------------------------------

    def _broadcast(self, tag: Tag, value) -> None:
        super()._broadcast(tag, value)
        for pending in self._pending_branches:
            if not pending.value_ready and pending.tag == tag:
                pending.value = value
                pending.value_ready = True

    def _resolve_pending_branches(self) -> None:
        """Resolve oldest-first; a misprediction discards the rest."""
        while self._pending_branches:
            pending = self._pending_branches[0]
            if not pending.value_ready and not self._probe_condition(pending):
                return
            taken = branch_taken(pending.inst.opcode, pending.value)
            self.predictor.update(pending.inst, taken)
            self.branches += 1
            if taken:
                self.branches_taken += 1
            self._pending_branches.pop(0)
            self.note(pending.seq, "commit")
            self._note_retired(pending.seq)
            if taken != pending.predicted:
                self.mispredictions += 1
                correct_pc = (
                    pending.inst.target if taken else pending.inst.pc + 1
                )
                self._recover_from(pending.seq + 1, correct_pc)
                return

    def _probe_condition(self, pending: PendingBranch) -> bool:
        """A branch that missed the bus traffic can still read its
        condition once the producing instance has committed (the
        register file is then current) or through the bypass path."""
        reg, instance = pending.tag
        producer = self._live.get(pending.tag)
        if producer is None:
            # Producer left the RUU: committed (value in the register
            # file) or squashed along with this branch's own squash --
            # the latter cannot happen while the branch is still listed.
            pending.value = self.regs.read(reg)
            pending.value_ready = True
            return True
        if self._bypass_allows(reg) and producer.executed \
                and producer.fault is None:
            pending.value = producer.result
            pending.value_ready = True
            return True
        return False

    # ------------------------------------------------------------------
    # commit gating
    # ------------------------------------------------------------------

    def _phase_commit(self) -> None:
        if self.interrupt_record is not None:
            return
        gate = (
            self._pending_branches[0].seq
            if self._pending_branches else None
        )
        budget = self.config.commit_paths
        while budget > 0 and self.window:
            entry = self.window[0]
            if gate is not None and entry.seq > gate:
                return  # conditional: not yet proven on the correct path
            if not entry.executed or entry.executed_cycle >= self.cycle:
                return
            if entry.fault is not None:
                self._interrupt_at(entry)
                return
            if not self._commit_head(entry):
                return
            budget -= 1

    # ------------------------------------------------------------------
    # misprediction recovery
    # ------------------------------------------------------------------

    def _recover_from(self, boundary_seq: int, correct_pc: int) -> None:
        """Nullify everything younger than the mispredicted branch."""
        modulus = 1 << self.config.counter_bits
        while self.window and self.window[-1].seq >= boundary_seq:
            entry = self.window.pop()
            entry.squashed = True
            self.squashed += 1
            if entry.dest_tag is not None:
                reg, instance = entry.dest_tag
                remaining = self._ni[reg] - 1
                if remaining:
                    self._ni[reg] = remaining
                else:
                    del self._ni[reg]
                # Walking youngest to oldest, the last write leaves LI at
                # the instance just before the oldest squashed one.
                self._li[reg] = (instance - 1) % modulus
                self._live.pop(entry.dest_tag, None)
        self._unresolved = deque(
            entry for entry in self._unresolved if entry.seq < boundary_seq
        )
        self._pending_publish = [
            entry for entry in self._pending_publish
            if entry.seq < boundary_seq
        ]
        self.mdu.squash_from(boundary_seq)
        self._pending_branches = [
            pending for pending in self._pending_branches
            if pending.seq < boundary_seq
        ]
        doomed = sum(1 for seq in self.retire_log if seq >= boundary_seq)
        if doomed:
            self.retired -= doomed
            self.retire_log = [
                seq for seq in self.retire_log if seq < boundary_seq
            ]
        self.decode_slot = None
        self.fetch_done = False
        self._clear_decode_watch()
        # Wrong-path instructions consumed sequence numbers; give them
        # back so ``seq`` stays the dynamic program-order index.  The
        # interrupt machinery (and the checkpoint drill) rely on
        # ``record.seq`` meaning "first seq instructions completed".
        self.next_seq = boundary_seq
        self.pc = correct_pc
        self.fetch_resume_cycle = (
            self.cycle + 1 + self.config.spec_mispredict_penalty
        )

    def _squash_all(self) -> None:
        super()._squash_all()
        self._pending_branches.clear()

    # ------------------------------------------------------------------

    def _drained(self) -> bool:
        return super()._drained() and not self._pending_branches

    def result(self):
        sim_result = super().result()
        sim_result.extra["predictions"] = self.predictions
        if self.predictions:
            sim_result.extra["prediction_accuracy"] = (
                1.0 - self.mispredictions / self.predictions
            )
        return sim_result
