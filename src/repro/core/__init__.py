"""The paper's contribution: the Register Update Unit and its extensions."""

from .interrupts import (
    CampaignResult,
    PrecisionReport,
    check_precision,
    demonstrate_restartability,
    fault_injection_campaign,
    run_with_page_fault,
    run_with_recovery,
)
from .prediction import (
    AlwaysTakenPredictor,
    BranchPredictor,
    StaticBTFNPredictor,
    TwoBitPredictor,
)
from .ruu import BypassMode, RUUEngine
from .speculative import PendingBranch, SpeculativeRUUEngine

__all__ = [
    "AlwaysTakenPredictor",
    "BranchPredictor",
    "BypassMode",
    "CampaignResult",
    "fault_injection_campaign",
    "PendingBranch",
    "PrecisionReport",
    "RUUEngine",
    "SpeculativeRUUEngine",
    "StaticBTFNPredictor",
    "TwoBitPredictor",
    "check_precision",
    "demonstrate_restartability",
    "run_with_page_fault",
    "run_with_recovery",
]
