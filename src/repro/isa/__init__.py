"""The model ISA: a CRAY-1-flavoured scalar instruction set.

Public surface:

* :class:`Register`, :class:`RegBank`, :class:`RegisterFile` and the
  ``A``/``S``/``B``/``T`` register constructors;
* :class:`Opcode`, :class:`FUClass`, :class:`OpKind` and the default
  CRAY-1 latency table;
* :class:`Instruction`, :class:`Program` and :func:`build_program`;
* :class:`ProgramBuilder` and the text :func:`assemble` entry point;
* the shared value semantics (:func:`evaluate`, :func:`branch_taken`,
  :func:`effective_address`, :class:`ArithmeticFault`).
"""

from .assembler import AssemblyError, assemble
from .builder import ProgramBuilder
from .encoding import (
    EncodingError,
    decode_program,
    encode_program,
    parcel_count,
    program_parcel_size,
)
from .instruction import Instruction
from .opcodes import DEFAULT_LATENCY, FUClass, OpKind, Opcode
from .program import Program, ProgramError, build_program
from .registers import (
    TOTAL_REGISTERS,
    A,
    B,
    RegBank,
    Register,
    RegisterFile,
    S,
    T,
    all_registers,
)
from .semantics import (
    ArithmeticFault,
    branch_taken,
    coerce_for_bank,
    effective_address,
    evaluate,
    wrap_a,
    wrap_s_int,
)

__all__ = [
    "A",
    "B",
    "S",
    "T",
    "ArithmeticFault",
    "AssemblyError",
    "DEFAULT_LATENCY",
    "EncodingError",
    "FUClass",
    "Instruction",
    "OpKind",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "RegBank",
    "Register",
    "RegisterFile",
    "TOTAL_REGISTERS",
    "all_registers",
    "assemble",
    "branch_taken",
    "build_program",
    "coerce_for_bank",
    "decode_program",
    "effective_address",
    "encode_program",
    "evaluate",
    "parcel_count",
    "program_parcel_size",
    "wrap_a",
    "wrap_s_int",
]
