"""Binary encoding of the model ISA (CRAY-style 16-bit parcels).

The CRAY-1 packs instructions into 16-bit *parcels*; simple register
operations occupy one parcel and instructions carrying a large constant
or address occupy two (the paper notes that its model machine issues
either kind in a single cycle).  This module gives the model ISA a
concrete parcel-level encoding so programs can be stored, hashed and
round-tripped, and so the instruction-buffer model in
:mod:`repro.machine.fetch` has real instruction sizes to work with.

Format (parcel 0)::

    15        9 8      6 5      3 2      0
    +----------+--------+--------+--------+
    |  opcode  |  dest  |  src1  |  src2  |
    +----------+--------+--------+--------+

* ``opcode`` -- 7 bits, the :class:`~repro.isa.opcodes.Opcode` ordinal;
* register fields are 3-bit indices into the bank implied by the
  opcode; B/T indices (6 bits) borrow the low bits of neighbouring
  fields as described below.

Instructions with an immediate, a memory offset, or a branch target
carry a second 16-bit parcel holding the 16-bit two's-complement value
(floating immediates are indexed into a per-program literal pool, as a
real assembler would place them in memory).

The encoder/decoder pair is exact: ``decode(encode(p)) == p`` for every
encodable program, which the property tests enforce.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from .instruction import Instruction
from .opcodes import OpKind, Opcode
from .program import Program, build_program
from .registers import RegBank, Register

#: Parcel width in bits.
PARCEL_BITS = 16

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

#: Opcode ordinals must fit the 7-bit field.
assert len(_OPCODES) < 128


class EncodingError(ValueError):
    """Instruction or program cannot be encoded/decoded."""


def parcel_count(inst: Instruction) -> int:
    """Static size of an instruction in 16-bit parcels (1 or 2)."""
    if inst.opcode.kind in (
        OpKind.IMMEDIATE, OpKind.LOAD, OpKind.STORE,
        OpKind.BRANCH, OpKind.JUMP,
    ):
        return 2
    if inst.opcode is Opcode.MOV:
        return 2  # carries explicit bank codes in its second parcel
    if inst.imm is not None:
        return 2
    return 1


def _pack_reg(reg: Optional[Register]) -> Tuple[int, int]:
    """Return (3-bit low field, 3-bit high extension) for a register.

    A/S indices fit 3 bits directly; B/T indices (0..63) split into a
    low 3-bit field and a 3-bit extension carried in an otherwise unused
    neighbouring field.
    """
    if reg is None:
        return 0, 0
    return reg.index & 0b111, (reg.index >> 3) & 0b111


class _LiteralPool:
    """Deduplicated constants that do not fit a 16-bit immediate."""

    def __init__(self) -> None:
        self.values: List[object] = []
        self._index: Dict[object, int] = {}

    def intern(self, value) -> int:
        key = (type(value).__name__, value)
        if key not in self._index:
            self._index[key] = len(self.values)
            self.values.append(value)
        return self._index[key]


def _fits_imm16(value) -> bool:
    return isinstance(value, int) and -(1 << 15) <= value < (1 << 15)


# Encoded operand-register banks are implied by the opcode for A_/S_/F_
# ops; MOV and the loads/stores need explicit bank bits, carried in a
# 4-bit bank descriptor packed into the first parcel's unused space for
# those opcodes.  To keep the format simple and fully reversible we
# instead encode MOV's banks in the *second* parcel (MOV is therefore
# always 2 parcels) -- a modest size cost the CRAY also pays for some
# transmit forms.

_BANK_CODES = {RegBank.A: 0, RegBank.S: 1, RegBank.B: 2, RegBank.T: 3}
_BANKS_BY_CODE = {code: bank for bank, code in _BANK_CODES.items()}


def instruction_parcels(inst: Instruction,
                        pool: _LiteralPool) -> List[int]:
    """Encode one instruction into 1 or 2 parcel values."""
    opcode = inst.opcode
    op_bits = _OPCODE_INDEX[opcode] << 9

    dest_lo, dest_hi = _pack_reg(inst.dest)
    srcs = list(inst.srcs)
    src1 = srcs[0] if srcs else None
    src2 = srcs[1] if len(srcs) > 1 else None

    if opcode is Opcode.MOV:
        # parcel 0: opcode | dest-low | src-low | bank codes
        # parcel 1: dest-high(3) src-high(3) destbank(2) srcbank(2)
        s_lo, s_hi = _pack_reg(src1)
        word0 = op_bits | (dest_lo << 6) | (s_lo << 3)
        word1 = (
            (dest_hi << 13) | (s_hi << 10)
            | (_BANK_CODES[inst.dest.bank] << 8)
            | (_BANK_CODES[src1.bank] << 6)
        )
        return [word0, word1]

    if opcode.kind in (OpKind.LOAD, OpKind.STORE):
        # register field carries dest (load) or datum (store); the base
        # A register sits in src2's slot; parcel 1 is the offset.
        data_reg = inst.dest if opcode.kind is OpKind.LOAD else src1
        d_lo, d_hi = _pack_reg(data_reg)
        base_lo, _ = _pack_reg(inst.base)
        word0 = op_bits | (d_lo << 6) | (d_hi << 3) | base_lo
        if not _fits_imm16(inst.imm):
            raise EncodingError(f"memory offset {inst.imm!r} too large")
        return [word0, inst.imm & 0xFFFF]

    if opcode.kind is OpKind.BRANCH:
        s_lo, _ = _pack_reg(src1)
        bank_bit = 1 if src1.bank is RegBank.S else 0
        word0 = op_bits | (s_lo << 6) | bank_bit
        return [word0, int(inst.target) & 0xFFFF]

    if opcode.kind is OpKind.JUMP:
        return [op_bits, int(inst.target) & 0xFFFF]

    if opcode.kind is OpKind.IMMEDIATE:
        word0 = op_bits | (dest_lo << 6) | (dest_hi << 3)
        if _fits_imm16(inst.imm):
            return [word0, inst.imm & 0xFFFF]
        # constant pool reference, flagged by the low bit of parcel 0
        word0 |= 1
        return [word0, pool.intern(inst.imm) & 0xFFFF]

    # plain ALU forms
    s1_lo, _ = _pack_reg(src1)
    s2_lo, _ = _pack_reg(src2)
    word0 = op_bits | (dest_lo << 6) | (s1_lo << 3) | s2_lo
    if inst.imm is not None:  # A_ADDI and shifts
        if not _fits_imm16(inst.imm):
            raise EncodingError(f"immediate {inst.imm!r} too large")
        return [word0, inst.imm & 0xFFFF]
    return [word0]


def _reg_for(opcode: Opcode, field: str, index: int) -> Register:
    """Resolve a register index to a bank implied by the opcode."""
    mnemonic = opcode.mnemonic
    if mnemonic.startswith("A_") or mnemonic.startswith("LOAD_A") \
            or mnemonic.startswith("STORE_A") or opcode.kind is OpKind.BRANCH:
        bank = RegBank.A
    else:
        bank = RegBank.S
    if mnemonic.endswith("_B"):
        bank = RegBank.B
    if mnemonic.endswith("_T"):
        bank = RegBank.T
    return Register(bank, index)


def _signed16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


def decode_instruction(parcels: Sequence[int], offset: int,
                       pool_values: Sequence[object]) -> Tuple[Instruction, int]:
    """Decode one instruction at ``offset``; returns (inst, parcels used)."""
    word0 = parcels[offset]
    opcode = _OPCODES[(word0 >> 9) & 0x7F]

    def second() -> int:
        return parcels[offset + 1]

    if opcode is Opcode.MOV:
        word1 = second()
        dest_bank = _BANKS_BY_CODE[(word1 >> 8) & 0b11]
        src_bank = _BANKS_BY_CODE[(word1 >> 6) & 0b11]
        dest = Register(
            dest_bank, ((word1 >> 13) << 3) | ((word0 >> 6) & 0b111)
        )
        src = Register(
            src_bank, (((word1 >> 10) & 0b111) << 3) | ((word0 >> 3) & 0b111)
        )
        return Instruction(opcode, dest=dest, srcs=(src,)), 2

    if opcode.kind in (OpKind.LOAD, OpKind.STORE):
        index = ((word0 >> 3) & 0b111) << 3 | ((word0 >> 6) & 0b111)
        bank = {
            "A": RegBank.A, "S": RegBank.S, "B": RegBank.B, "T": RegBank.T,
        }[opcode.mnemonic.rsplit("_", 1)[1]]
        data_reg = Register(bank, index)
        base = Register(RegBank.A, word0 & 0b111)
        imm = _signed16(second())
        if opcode.kind is OpKind.LOAD:
            return Instruction(opcode, dest=data_reg, base=base, imm=imm), 2
        return Instruction(opcode, srcs=(data_reg,), base=base, imm=imm), 2

    if opcode.kind is OpKind.BRANCH:
        bank = RegBank.S if word0 & 1 else RegBank.A
        reg = Register(bank, (word0 >> 6) & 0b111)
        return Instruction(opcode, srcs=(reg,), target=second()), 2

    if opcode.kind is OpKind.JUMP:
        return Instruction(opcode, target=second()), 2

    if opcode.kind is OpKind.IMMEDIATE:
        dest_idx = (((word0 >> 3) & 0b111) << 3) | ((word0 >> 6) & 0b111)
        dest = _reg_for(opcode, "dest", dest_idx & 0b111)
        if word0 & 1:
            return Instruction(
                opcode, dest=dest, imm=pool_values[second()]
            ), 2
        return Instruction(opcode, dest=dest, imm=_signed16(second())), 2

    if opcode.kind in (OpKind.NOP, OpKind.HALT):
        return Instruction(opcode), 1

    dest = _reg_for(opcode, "dest", (word0 >> 6) & 0b111)
    src1 = _reg_for(opcode, "src", (word0 >> 3) & 0b111)
    src2 = _reg_for(opcode, "src", word0 & 0b111)
    if opcode.n_srcs == 1:
        srcs: Tuple[Register, ...] = (src1,)
    else:
        srcs = (src1, src2)
    if opcode.uses_immediate:
        return Instruction(
            opcode, dest=dest, srcs=srcs, imm=_signed16(second())
        ), 2
    return Instruction(opcode, dest=dest, srcs=srcs), 1


MAGIC = b"RUU1"


def encode_program(program: Program) -> bytes:
    """Serialize a program to bytes (parcels + literal pool)."""
    pool = _LiteralPool()
    parcels: List[int] = []
    for inst in program:
        parcels.extend(instruction_parcels(inst, pool))
    blob = bytearray(MAGIC)
    blob += struct.pack("<II", len(parcels), len(pool.values))
    for parcel in parcels:
        blob += struct.pack("<H", parcel & 0xFFFF)
    for value in pool.values:
        if isinstance(value, float):
            blob += b"F" + struct.pack("<d", value)
        else:
            blob += b"I" + struct.pack("<q", int(value))
    return bytes(blob)


def decode_program(blob: bytes, name: str = "decoded") -> Program:
    """Deserialize a program produced by :func:`encode_program`."""
    if blob[:4] != MAGIC:
        raise EncodingError("bad magic")
    n_parcels, n_pool = struct.unpack_from("<II", blob, 4)
    offset = 12
    parcels = [
        struct.unpack_from("<H", blob, offset + 2 * i)[0]
        for i in range(n_parcels)
    ]
    offset += 2 * n_parcels
    pool_values: List[object] = []
    for _ in range(n_pool):
        kind = blob[offset:offset + 1]
        offset += 1
        if kind == b"F":
            pool_values.append(struct.unpack_from("<d", blob, offset)[0])
        else:
            pool_values.append(struct.unpack_from("<q", blob, offset)[0])
        offset += 8
    instructions: List[Instruction] = []
    cursor = 0
    while cursor < n_parcels:
        inst, used = decode_instruction(parcels, cursor, pool_values)
        instructions.append(inst)
        cursor += used
    return build_program(instructions, name=name)


def program_parcel_size(program: Program) -> int:
    """Total static code size in parcels."""
    return sum(parcel_count(inst) for inst in program)
