"""Opcodes of the model ISA, with functional-unit classes and latencies.

The model architecture executes the same kind of instruction mix as the
CRAY-1 scalar unit (paper, section 2): address (A-register) integer
arithmetic, scalar (S-register) integer/logical/shift arithmetic,
floating-point arithmetic, transmits between the A/S files and their B/T
backup files, scalar loads/stores, and branches that test ``A0``/``S0``.

Latencies are the CRAY-1 *functional unit times* from the hardware
reference manual; they are defaults only -- every simulator takes a
:class:`repro.machine.config.MachineConfig` that can override them.
"""

from __future__ import annotations

import enum
from typing import Dict


class FUClass(enum.Enum):
    """Functional-unit classes (one pipelined unit of each in the model)."""

    ADDR_ADD = "addr_add"          # A-register integer add/subtract
    ADDR_MUL = "addr_mul"          # A-register integer multiply
    SCALAR_ADD = "scalar_add"      # S-register integer add/subtract
    SCALAR_LOGICAL = "scalar_logical"  # S-register and/or/xor
    SCALAR_SHIFT = "scalar_shift"  # S-register shifts
    FLOAT_ADD = "float_add"        # floating add/subtract
    FLOAT_MUL = "float_mul"        # floating multiply
    RECIP = "recip"                # reciprocal approximation
    TRANSMIT = "transmit"          # register-to-register moves, immediates
    MEMORY = "memory"              # scalar loads and stores
    BRANCH = "branch"              # branch condition evaluation
    CONTROL = "control"            # NOP / HALT


#: Default functional-unit latency in clock cycles (CRAY-1 unit times).
DEFAULT_LATENCY: Dict[FUClass, int] = {
    FUClass.ADDR_ADD: 2,
    FUClass.ADDR_MUL: 6,
    FUClass.SCALAR_ADD: 3,
    FUClass.SCALAR_LOGICAL: 1,
    FUClass.SCALAR_SHIFT: 2,
    FUClass.FLOAT_ADD: 6,
    FUClass.FLOAT_MUL: 7,
    FUClass.RECIP: 14,
    FUClass.TRANSMIT: 1,
    FUClass.MEMORY: 11,
    FUClass.BRANCH: 1,
    FUClass.CONTROL: 1,
}


class OpKind(enum.Enum):
    """Structural category of an opcode (decides operand layout)."""

    ALU = "alu"            # dest <- f(srcs)
    IMMEDIATE = "imm"      # dest <- imm
    LOAD = "load"          # dest <- mem[base + imm]
    STORE = "store"        # mem[base + imm] <- src
    BRANCH = "branch"      # conditional jump testing one register
    JUMP = "jump"          # unconditional jump
    NOP = "nop"
    HALT = "halt"


class Opcode(enum.Enum):
    """Every instruction of the model ISA.

    The value tuple is ``(mnemonic, fu_class, kind, n_srcs)`` where
    ``n_srcs`` is the number of explicit register sources (memory ops
    additionally have a base-address register).
    """

    # --- address (A) arithmetic -------------------------------------
    A_ADD = ("A_ADD", FUClass.ADDR_ADD, OpKind.ALU, 2)
    A_SUB = ("A_SUB", FUClass.ADDR_ADD, OpKind.ALU, 2)
    A_MUL = ("A_MUL", FUClass.ADDR_MUL, OpKind.ALU, 2)
    A_IMM = ("A_IMM", FUClass.TRANSMIT, OpKind.IMMEDIATE, 0)
    A_ADDI = ("A_ADDI", FUClass.ADDR_ADD, OpKind.ALU, 1)  # Ai <- Aj + imm

    # --- scalar (S) integer/logical/shift ---------------------------
    S_ADD = ("S_ADD", FUClass.SCALAR_ADD, OpKind.ALU, 2)
    S_SUB = ("S_SUB", FUClass.SCALAR_ADD, OpKind.ALU, 2)
    S_AND = ("S_AND", FUClass.SCALAR_LOGICAL, OpKind.ALU, 2)
    S_OR = ("S_OR", FUClass.SCALAR_LOGICAL, OpKind.ALU, 2)
    S_XOR = ("S_XOR", FUClass.SCALAR_LOGICAL, OpKind.ALU, 2)
    S_SHL = ("S_SHL", FUClass.SCALAR_SHIFT, OpKind.ALU, 1)  # shift by imm
    S_SHR = ("S_SHR", FUClass.SCALAR_SHIFT, OpKind.ALU, 1)
    S_IMM = ("S_IMM", FUClass.TRANSMIT, OpKind.IMMEDIATE, 0)

    # --- floating point (on S registers) ----------------------------
    F_ADD = ("F_ADD", FUClass.FLOAT_ADD, OpKind.ALU, 2)
    F_SUB = ("F_SUB", FUClass.FLOAT_ADD, OpKind.ALU, 2)
    F_MUL = ("F_MUL", FUClass.FLOAT_MUL, OpKind.ALU, 2)
    F_RECIP = ("F_RECIP", FUClass.RECIP, OpKind.ALU, 1)

    # --- transmits between register files ---------------------------
    MOV = ("MOV", FUClass.TRANSMIT, OpKind.ALU, 1)  # any bank -> any bank

    # --- memory ------------------------------------------------------
    LOAD_A = ("LOAD_A", FUClass.MEMORY, OpKind.LOAD, 0)
    LOAD_S = ("LOAD_S", FUClass.MEMORY, OpKind.LOAD, 0)
    LOAD_B = ("LOAD_B", FUClass.MEMORY, OpKind.LOAD, 0)
    LOAD_T = ("LOAD_T", FUClass.MEMORY, OpKind.LOAD, 0)
    STORE_A = ("STORE_A", FUClass.MEMORY, OpKind.STORE, 1)
    STORE_S = ("STORE_S", FUClass.MEMORY, OpKind.STORE, 1)
    STORE_B = ("STORE_B", FUClass.MEMORY, OpKind.STORE, 1)
    STORE_T = ("STORE_T", FUClass.MEMORY, OpKind.STORE, 1)

    # --- control flow (CRAY-1 style: branches test a register) ------
    BR_ZERO = ("BR_ZERO", FUClass.BRANCH, OpKind.BRANCH, 1)   # JAZ / JSZ
    BR_NONZERO = ("BR_NONZERO", FUClass.BRANCH, OpKind.BRANCH, 1)  # JAN
    BR_PLUS = ("BR_PLUS", FUClass.BRANCH, OpKind.BRANCH, 1)   # JAP: >= 0
    BR_MINUS = ("BR_MINUS", FUClass.BRANCH, OpKind.BRANCH, 1)  # JAM: < 0
    JMP = ("JMP", FUClass.BRANCH, OpKind.JUMP, 0)

    # --- miscellaneous ------------------------------------------------
    NOP = ("NOP", FUClass.CONTROL, OpKind.NOP, 0)
    HALT = ("HALT", FUClass.CONTROL, OpKind.HALT, 0)

    def __init__(self, mnemonic: str, fu: FUClass, kind: OpKind,
                 n_srcs: int) -> None:
        self.mnemonic = mnemonic
        self.fu = fu
        self.kind = kind
        self.n_srcs = n_srcs

    # -- structural predicates ----------------------------------------

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_branch(self) -> bool:
        """True for conditional branches (not unconditional jumps)."""
        return self.kind is OpKind.BRANCH

    @property
    def is_control_flow(self) -> bool:
        return self.kind in (OpKind.BRANCH, OpKind.JUMP)

    @property
    def has_dest(self) -> bool:
        """True if the instruction writes a destination register."""
        return self.kind in (OpKind.ALU, OpKind.IMMEDIATE, OpKind.LOAD)

    @property
    def uses_immediate(self) -> bool:
        return self in _IMMEDIATE_OPS or self.is_memory

    @property
    def default_latency(self) -> int:
        return DEFAULT_LATENCY[self.fu]

    @classmethod
    def parse(cls, mnemonic: str) -> "Opcode":
        """Look up an opcode by its assembly mnemonic."""
        try:
            return _BY_MNEMONIC[mnemonic.strip().upper()]
        except KeyError as exc:
            raise ValueError(f"unknown opcode: {mnemonic!r}") from exc


_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}

_IMMEDIATE_OPS = frozenset(
    {Opcode.A_IMM, Opcode.S_IMM, Opcode.A_ADDI, Opcode.S_SHL, Opcode.S_SHR}
)
