"""A fluent builder API for constructing programs in Python.

The Livermore-loop workloads and the hypothesis program generators both
construct programs through this builder; the text assembler
(:mod:`repro.isa.assembler`) is a thin layer over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instruction import Instruction
from .opcodes import Opcode
from .program import Program, ProgramError, build_program
from .registers import Register

Target = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions and labels, then finalizes a Program.

    Example::

        pb = ProgramBuilder("countdown")
        pb.a_imm(A(0), 10)
        pb.label("loop")
        pb.a_addi(A(0), A(0), -1)
        pb.br_nonzero(A(0), "loop")
        program = pb.finish()
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    # -- structure ------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach a label to the *next* emitted instruction."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        """Append an already-constructed instruction."""
        self._instructions.append(instruction)
        return self

    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    def finish(self) -> Program:
        """Resolve labels and return the immutable program."""
        return build_program(self._instructions, self._labels, self.name)

    # -- address arithmetic ----------------------------------------------

    def a_imm(self, dest: Register, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.A_IMM, dest=dest, imm=imm))

    def a_add(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.A_ADD, dest=dest, srcs=(lhs, rhs)))

    def a_sub(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.A_SUB, dest=dest, srcs=(lhs, rhs)))

    def a_mul(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.A_MUL, dest=dest, srcs=(lhs, rhs)))

    def a_addi(self, dest: Register, src: Register,
               imm: int) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.A_ADDI, dest=dest, srcs=(src,), imm=imm)
        )

    # -- scalar arithmetic -------------------------------------------------

    def s_imm(self, dest: Register, imm) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_IMM, dest=dest, imm=imm))

    def s_add(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_ADD, dest=dest, srcs=(lhs, rhs)))

    def s_sub(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_SUB, dest=dest, srcs=(lhs, rhs)))

    def s_and(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_AND, dest=dest, srcs=(lhs, rhs)))

    def s_or(self, dest: Register, lhs: Register,
             rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_OR, dest=dest, srcs=(lhs, rhs)))

    def s_xor(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.S_XOR, dest=dest, srcs=(lhs, rhs)))

    def s_shl(self, dest: Register, src: Register,
              amount: int) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.S_SHL, dest=dest, srcs=(src,), imm=amount)
        )

    def s_shr(self, dest: Register, src: Register,
              amount: int) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.S_SHR, dest=dest, srcs=(src,), imm=amount)
        )

    # -- floating point ---------------------------------------------------

    def f_add(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.F_ADD, dest=dest, srcs=(lhs, rhs)))

    def f_sub(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.F_SUB, dest=dest, srcs=(lhs, rhs)))

    def f_mul(self, dest: Register, lhs: Register,
              rhs: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.F_MUL, dest=dest, srcs=(lhs, rhs)))

    def f_recip(self, dest: Register, src: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.F_RECIP, dest=dest, srcs=(src,)))

    # -- moves --------------------------------------------------------------

    def mov(self, dest: Register, src: Register) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.MOV, dest=dest, srcs=(src,)))

    # -- memory ---------------------------------------------------------------

    def load_a(self, dest: Register, base: Register,
               offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.LOAD_A, dest=dest, base=base, imm=offset)
        )

    def load_s(self, dest: Register, base: Register,
               offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.LOAD_S, dest=dest, base=base, imm=offset)
        )

    def load_b(self, dest: Register, base: Register,
               offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.LOAD_B, dest=dest, base=base, imm=offset)
        )

    def load_t(self, dest: Register, base: Register,
               offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.LOAD_T, dest=dest, base=base, imm=offset)
        )

    def store_a(self, src: Register, base: Register,
                offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.STORE_A, srcs=(src,), base=base, imm=offset)
        )

    def store_s(self, src: Register, base: Register,
                offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.STORE_S, srcs=(src,), base=base, imm=offset)
        )

    def store_b(self, src: Register, base: Register,
                offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.STORE_B, srcs=(src,), base=base, imm=offset)
        )

    def store_t(self, src: Register, base: Register,
                offset: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.STORE_T, srcs=(src,), base=base, imm=offset)
        )

    # -- control flow -----------------------------------------------------------

    def br_zero(self, test: Register, target: Target) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.BR_ZERO, srcs=(test,), target=target)
        )

    def br_nonzero(self, test: Register, target: Target) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.BR_NONZERO, srcs=(test,), target=target)
        )

    def br_plus(self, test: Register, target: Target) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.BR_PLUS, srcs=(test,), target=target)
        )

    def br_minus(self, test: Register, target: Target) -> "ProgramBuilder":
        return self.emit(
            Instruction(Opcode.BR_MINUS, srcs=(test,), target=target)
        )

    def jmp(self, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.JMP, target=target))

    def nop(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.NOP))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.HALT))
