"""Pure value semantics of the model ISA.

Every engine (the golden functional executor and all timing simulators)
computes results through these functions, so architectural equivalence
between engines is a property of the *issue logic*, not of duplicated
arithmetic code.

Width discipline follows the CRAY-1: A-register results wrap to 24-bit
two's complement, S-register integer results wrap to 64-bit two's
complement, floating results are IEEE doubles.  Arithmetic faults
(reciprocal of zero, float overflow to infinity) raise
:class:`ArithmeticFault` -- the timing engines convert these into the
paper's "instruction-generated traps".
"""

from __future__ import annotations

import math
from typing import Sequence

from .opcodes import Opcode
from .registers import RegBank, Register

A_BITS = 24
S_BITS = 64


class ArithmeticFault(Exception):
    """An instruction-generated arithmetic trap (paper, section 1)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def wrap_signed(value: int, bits: int) -> int:
    """Wrap an integer to ``bits``-bit two's complement."""
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def wrap_a(value: int) -> int:
    """Wrap to the 24-bit A-register width."""
    return wrap_signed(int(value), A_BITS)


def wrap_s_int(value: int) -> int:
    """Wrap to the 64-bit S-register integer width."""
    return wrap_signed(int(value), S_BITS)


def _as_int(value) -> int:
    """Coerce an operand to an integer for logical/integer ops."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ArithmeticFault(f"integer operation on non-integer value {value!r}")


def _as_float(value) -> float:
    return float(value)


def coerce_for_bank(reg: Register, value):
    """Apply the destination register file's width discipline."""
    if reg.bank in (RegBank.A, RegBank.B):
        return wrap_a(_as_int(value))
    if isinstance(value, float):
        return value
    return wrap_s_int(_as_int(value))


def evaluate(opcode: Opcode, operands: Sequence, imm=None):
    """Compute the raw result of an ALU/immediate opcode.

    ``operands`` are the source register values in order.  The result is
    *not* yet width-coerced; callers pass it through
    :func:`coerce_for_bank` with the destination register (this keeps MOV
    between banks well-defined).
    """
    if opcode in (Opcode.A_ADD, Opcode.S_ADD):
        return _as_int(operands[0]) + _as_int(operands[1])
    if opcode in (Opcode.A_SUB, Opcode.S_SUB):
        return _as_int(operands[0]) - _as_int(operands[1])
    if opcode is Opcode.A_MUL:
        return _as_int(operands[0]) * _as_int(operands[1])
    if opcode is Opcode.A_ADDI:
        return _as_int(operands[0]) + int(imm)
    if opcode in (Opcode.A_IMM, Opcode.S_IMM):
        return imm
    if opcode is Opcode.S_AND:
        return _as_int(operands[0]) & _as_int(operands[1])
    if opcode is Opcode.S_OR:
        return _as_int(operands[0]) | _as_int(operands[1])
    if opcode is Opcode.S_XOR:
        return _as_int(operands[0]) ^ _as_int(operands[1])
    if opcode is Opcode.S_SHL:
        return _shift(operands[0], int(imm))
    if opcode is Opcode.S_SHR:
        return _shift(operands[0], -int(imm))
    if opcode is Opcode.F_ADD:
        return _check_float(_as_float(operands[0]) + _as_float(operands[1]))
    if opcode is Opcode.F_SUB:
        return _check_float(_as_float(operands[0]) - _as_float(operands[1]))
    if opcode is Opcode.F_MUL:
        return _check_float(_as_float(operands[0]) * _as_float(operands[1]))
    if opcode is Opcode.F_RECIP:
        denom = _as_float(operands[0])
        if denom == 0.0:
            raise ArithmeticFault("reciprocal of zero")
        return _check_float(1.0 / denom)
    if opcode is Opcode.MOV:
        return operands[0]
    raise ValueError(f"{opcode.mnemonic} has no ALU semantics")


def _shift(value, amount: int):
    """Logical shift on the 64-bit pattern (positive = left)."""
    pattern = _as_int(value) & ((1 << S_BITS) - 1)
    if amount >= 0:
        pattern = (pattern << amount) & ((1 << S_BITS) - 1)
    else:
        pattern >>= -amount
    return wrap_s_int(pattern)


def _check_float(value: float) -> float:
    if math.isinf(value) or math.isnan(value):
        raise ArithmeticFault(f"floating-point range error ({value})")
    return value


def branch_taken(opcode: Opcode, value) -> bool:
    """Evaluate a conditional branch's condition on the tested value."""
    if opcode is Opcode.BR_ZERO:
        return value == 0
    if opcode is Opcode.BR_NONZERO:
        return value != 0
    if opcode is Opcode.BR_PLUS:
        return value >= 0
    if opcode is Opcode.BR_MINUS:
        return value < 0
    raise ValueError(f"{opcode.mnemonic} is not a conditional branch")


def effective_address(base_value, imm) -> int:
    """Compute a memory address (word-addressed, wrapped to A width)."""
    return wrap_a(_as_int(base_value) + int(imm))
