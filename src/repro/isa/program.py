"""Program container: an ordered list of instructions plus labels."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence

from .instruction import Instruction
from .opcodes import Opcode


class ProgramError(ValueError):
    """Raised for malformed programs (undefined labels, no HALT, ...)."""


def _source_line(inst: Instruction) -> str:
    """``" (line N)"`` when the assembler recorded a source line."""
    return f" (line {inst.line})" if inst.line is not None else ""


@dataclass(frozen=True)
class Program:
    """An immutable, finalized program.

    Instructions carry resolved integer branch targets and their own
    ``pc``.  Construct via :func:`build_program`,
    :class:`repro.isa.builder.ProgramBuilder`, or
    :func:`repro.isa.assembler.assemble`.
    """

    instructions: tuple
    labels: Dict[str, int]
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def label_of(self, pc: int) -> Optional[str]:
        """Return a label pointing at ``pc``, if any."""
        for label, index in self.labels.items():
            if index == pc:
                return label
        return None

    def listing(self) -> str:
        """Return a human-readable disassembly listing."""
        lines = []
        for pc, inst in enumerate(self.instructions):
            label = self.label_of(pc)
            prefix = f"{label}:" if label else ""
            lines.append(f"{prefix:>12s} {pc:5d}  {inst}")
        return "\n".join(lines)


def build_program(
    instructions: Sequence[Instruction],
    labels: Optional[Dict[str, int]] = None,
    name: str = "program",
) -> Program:
    """Finalize a program: resolve label targets and assign PCs.

    Every control-flow instruction's ``target`` may be a label name (a
    string) or an absolute instruction index; labels are resolved here.
    A ``HALT`` is appended if the program does not end with one, so every
    program has a well-defined end.
    """
    labels = dict(labels or {})
    insts: List[Instruction] = list(instructions)
    if not insts or insts[-1].opcode is not Opcode.HALT:
        insts.append(Instruction(Opcode.HALT))

    resolved: List[Instruction] = []
    for pc, inst in enumerate(insts):
        target = inst.target
        if isinstance(target, str):
            if target not in labels:
                raise ProgramError(
                    f"undefined label {target!r} at pc {pc}"
                    f"{_source_line(inst)}"
                )
            target = labels[target]
        if target is not None and not 0 <= target < len(insts):
            raise ProgramError(
                f"branch target {target} out of range at pc {pc}"
                f"{_source_line(inst)}"
            )
        resolved.append(replace(inst, target=target, pc=pc))

    for label, index in labels.items():
        if not 0 <= index <= len(insts):
            raise ProgramError(f"label {label!r} points outside the program")

    return Program(tuple(resolved), labels, name)
