"""The :class:`Instruction` type shared by the assembler and all engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import FUClass, OpKind, Opcode
from .registers import RegBank, Register


@dataclass(frozen=True)
class Instruction:
    """One static instruction of the model ISA.

    Fields not used by a given :class:`~repro.isa.opcodes.OpKind` are
    ``None``:

    * ALU ops use ``dest`` and ``srcs`` (plus ``imm`` for shift counts
      and ``A_ADDI``).
    * Immediates use ``dest`` and ``imm``.
    * Loads use ``dest``, ``base`` and ``imm`` (address = base + imm).
    * Stores use ``srcs[0]`` (the datum), ``base`` and ``imm``.
    * Branches use ``srcs[0]`` (the tested register) and ``target``.
    * Jumps use ``target``.

    ``target`` is a label name until :meth:`repro.isa.program.Program.
    finalize` resolves it to an instruction index.

    ``line`` is the 1-based source line recorded by the assembler (None
    for programs built programmatically); error messages and the
    :mod:`repro.lint` diagnostics use it to point at real source lines.
    """

    opcode: Opcode
    dest: Optional[Register] = None
    srcs: Tuple[Register, ...] = ()
    base: Optional[Register] = None
    imm: Optional[object] = None
    target: Optional[object] = None  # label str before, int index after
    pc: int = field(default=-1, compare=False)
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        kind = self.opcode.kind
        if self.opcode.has_dest and self.dest is None:
            raise ValueError(f"{self.opcode.mnemonic} requires a destination")
        if not self.opcode.has_dest and self.dest is not None:
            raise ValueError(
                f"{self.opcode.mnemonic} must not have a destination"
            )
        if len(self.srcs) != self.opcode.n_srcs:
            raise ValueError(
                f"{self.opcode.mnemonic} takes {self.opcode.n_srcs} register "
                f"source(s), got {len(self.srcs)}"
            )
        if self.opcode.is_memory and self.base is None:
            raise ValueError(
                f"{self.opcode.mnemonic} requires a base register"
            )
        if self.opcode.is_memory and self.base.bank is not RegBank.A:
            raise ValueError("memory base register must be an A register")
        if kind in (OpKind.IMMEDIATE, OpKind.LOAD, OpKind.STORE) \
                and self.imm is None:
            raise ValueError(f"{self.opcode.mnemonic} requires an immediate")
        if self.opcode.is_control_flow and self.target is None:
            raise ValueError(f"{self.opcode.mnemonic} requires a target")

    # -- dependency views ----------------------------------------------

    @property
    def sources(self) -> Tuple[Register, ...]:
        """All registers read: explicit sources plus the address base."""
        if self.base is not None:
            return self.srcs + (self.base,)
        return self.srcs

    @property
    def fu(self) -> FUClass:
        return self.opcode.fu

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @property
    def is_memory(self) -> bool:
        return self.opcode.is_memory

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_control_flow(self) -> bool:
        return self.opcode.is_control_flow

    @property
    def is_halt(self) -> bool:
        return self.opcode is Opcode.HALT

    # -- display ---------------------------------------------------------

    def __str__(self) -> str:
        op = self.opcode
        parts = []
        if self.dest is not None:
            parts.append(self.dest.name)
        if op.kind is OpKind.LOAD:
            parts.append(f"{self.base.name}[{self.imm}]")
        elif op.kind is OpKind.STORE:
            parts.append(f"{self.base.name}[{self.imm}]")
            parts.append(self.srcs[0].name)
        else:
            parts.extend(reg.name for reg in self.srcs)
            if self.imm is not None:
                parts.append(repr(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        body = ", ".join(parts)
        return f"{op.mnemonic} {body}".strip()
