"""Register model for the CRAY-1-flavoured scalar ISA.

The model architecture (paper, section 2) has four register files:

* ``A`` -- 8 address registers (24-bit integers; loop counters, addresses)
* ``S`` -- 8 scalar registers (64-bit; integers and floating-point data)
* ``B`` -- 64 backup registers for A (transmit-only)
* ``T`` -- 64 backup registers for S (transmit-only)

for a total of 144 registers.  The size of the register file is the whole
motivation for the Tag Unit / RSTU / RUU line of designs: tagging every
register in Tomasulo's style would need 144 tag-matching units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


class RegBank(enum.Enum):
    """The four register files of the model architecture."""

    A = "A"
    S = "S"
    B = "B"
    T = "T"

    @property
    def size(self) -> int:
        """Number of registers in this bank (8 for A/S, 64 for B/T)."""
        return _BANK_SIZES[self]


_BANK_SIZES = {RegBank.A: 8, RegBank.S: 8, RegBank.B: 64, RegBank.T: 64}

#: Total number of architectural registers (8 + 8 + 64 + 64).
TOTAL_REGISTERS = sum(bank.size for bank in RegBank)


@dataclass(frozen=True)
class Register:
    """An architectural register: a bank plus an index within the bank."""

    bank: RegBank
    index: int

    def __lt__(self, other: "Register") -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self.flat_index < other.flat_index

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.bank.size:
            raise ValueError(
                f"register index {self.index} out of range for bank "
                f"{self.bank.value} (size {self.bank.size})"
            )

    @property
    def name(self) -> str:
        """Assembly name, e.g. ``A0``, ``S7``, ``B63``."""
        return f"{self.bank.value}{self.index}"

    @property
    def flat_index(self) -> int:
        """Index into a flat 0..143 register numbering (used as tag base)."""
        return _BANK_OFFSETS[self.bank] + self.index

    def __repr__(self) -> str:
        return self.name

    @classmethod
    def parse(cls, text: str) -> "Register":
        """Parse an assembly register name such as ``A3`` or ``T17``."""
        text = text.strip().upper()
        if len(text) < 2 or text[0] not in "ASBT":
            raise ValueError(f"not a register name: {text!r}")
        try:
            index = int(text[1:])
        except ValueError as exc:
            raise ValueError(f"not a register name: {text!r}") from exc
        return cls(RegBank(text[0]), index)


_BANK_OFFSETS = {RegBank.A: 0, RegBank.S: 8, RegBank.B: 16, RegBank.T: 80}


def A(index: int) -> Register:
    """Address register ``A<index>``."""
    return Register(RegBank.A, index)


def S(index: int) -> Register:
    """Scalar register ``S<index>``."""
    return Register(RegBank.S, index)


def B(index: int) -> Register:
    """Backup address register ``B<index>``."""
    return Register(RegBank.B, index)


def T(index: int) -> Register:
    """Backup scalar register ``T<index>``."""
    return Register(RegBank.T, index)


def all_registers() -> Iterator[Register]:
    """Iterate over every architectural register (144 of them)."""
    for bank in RegBank:
        for index in range(bank.size):
            yield Register(bank, index)


class RegisterFile:
    """Architectural register values for all four banks.

    A registers hold 24-bit integers and S registers hold 64-bit values
    (ints or floats); B mirrors A's width and T mirrors S's.  All values
    are plain Python numbers; width discipline is applied by the ISA
    semantics (:mod:`repro.isa.semantics`), not by storage.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[Register, object] = {
            reg: 0 for reg in all_registers()
        }

    def read(self, reg: Register):
        """Return the current value of ``reg``."""
        return self._values[reg]

    def write(self, reg: Register, value) -> None:
        """Set the value of ``reg``."""
        self._values[reg] = value

    def copy(self) -> "RegisterFile":
        """Return an independent snapshot of this register file."""
        clone = RegisterFile.__new__(RegisterFile)
        clone._values = dict(self._values)
        return clone

    def snapshot(self) -> Dict[str, object]:
        """Return ``{name: value}`` for every register (for comparisons)."""
        return {reg.name: value for reg, value in self._values.items()}

    def nonzero(self) -> Dict[str, object]:
        """Return ``{name: value}`` restricted to non-zero registers."""
        return {
            reg.name: value for reg, value in self._values.items() if value
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._values == other._values

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def diff(self, other: "RegisterFile") -> Dict[str, Tuple[object, object]]:
        """Return ``{name: (self_value, other_value)}`` where they differ."""
        return {
            reg.name: (self._values[reg], other._values[reg])
            for reg in all_registers()
            if self._values[reg] != other._values[reg]
        }
