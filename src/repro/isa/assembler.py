"""A small text assembler for the model ISA.

Syntax (one instruction per line, ``;`` or ``#`` starts a comment)::

        A_IMM  A1, 100        ; dest, immediate
    loop:
        LOAD_S S1, A1[0]      ; dest, base[offset]
        F_MUL  S2, S1, S3     ; dest, src, src
        S_SHL  S4, S2, 3      ; dest, src, shift amount
        STORE_S A2[4], S2     ; base[offset], src
        A_ADDI A1, A1, -1
        BR_NONZERO A1, loop   ; tested register, label
        HALT

Memory operands also accept the two-argument form ``base, offset``.
Immediates may be integers (decimal, ``0x..``) or floats.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import List, Tuple

from .instruction import Instruction
from .opcodes import OpKind, Opcode
from .program import Program, ProgramError, build_program
from .registers import Register


class AssemblyError(ProgramError):
    """Raised on a syntax or operand error, with the offending line."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_LABEL_RE = re.compile(r"^\s*([A-Za-z_][\w.]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^([ASBT]\d+)\s*\[\s*([+-]?\w+)\s*\]$", re.IGNORECASE)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` text into a finalized :class:`Program`."""
    instructions: List[Instruction] = []
    labels = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            label, line = match.group(1), match.group(2)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
            labels[label] = len(instructions)
        if not line.strip():
            continue
        instructions.append(_parse_instruction(line, line_no, raw))
    return build_program(instructions, labels, name)


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line


def _parse_instruction(line: str, line_no: int, raw: str) -> Instruction:
    parts = line.strip().split(None, 1)
    mnemonic = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    try:
        opcode = Opcode.parse(mnemonic)
    except ValueError as exc:
        raise AssemblyError(str(exc), line_no, raw) from exc
    operands = [
        field.strip() for field in operand_text.split(",") if field.strip()
    ]
    try:
        inst = _build(opcode, operands)
    except (ValueError, IndexError) as exc:
        raise AssemblyError(str(exc), line_no, raw) from exc
    return replace(inst, line=line_no)


def _build(opcode: Opcode, operands: List[str]) -> Instruction:
    kind = opcode.kind
    if kind is OpKind.NOP or kind is OpKind.HALT:
        _expect(operands, 0, opcode)
        return Instruction(opcode)
    if kind is OpKind.IMMEDIATE:
        _expect(operands, 2, opcode)
        return Instruction(
            opcode, dest=Register.parse(operands[0]),
            imm=_parse_number(operands[1]),
        )
    if kind is OpKind.LOAD:
        base, offset, rest = _parse_memory_operand(operands[1:], opcode)
        _expect(rest, 0, opcode)
        return Instruction(
            opcode, dest=Register.parse(operands[0]), base=base, imm=offset
        )
    if kind is OpKind.STORE:
        base, offset, rest = _parse_memory_operand(operands, opcode)
        _expect(rest, 1, opcode)
        return Instruction(
            opcode, srcs=(Register.parse(rest[0]),), base=base, imm=offset
        )
    if kind is OpKind.BRANCH:
        _expect(operands, 2, opcode)
        return Instruction(
            opcode, srcs=(Register.parse(operands[0]),), target=operands[1]
        )
    if kind is OpKind.JUMP:
        _expect(operands, 1, opcode)
        return Instruction(opcode, target=operands[0])

    # ALU: dest, then n_srcs register sources, then optionally an immediate.
    dest = Register.parse(operands[0])
    srcs = tuple(
        Register.parse(text) for text in operands[1:1 + opcode.n_srcs]
    )
    remainder = operands[1 + opcode.n_srcs:]
    imm = None
    if opcode.uses_immediate:
        _expect(remainder, 1, opcode)
        imm = _parse_number(remainder[0])
    else:
        _expect(remainder, 0, opcode)
    return Instruction(opcode, dest=dest, srcs=srcs, imm=imm)


def _parse_memory_operand(
    operands: List[str], opcode: Opcode
) -> Tuple[Register, int, List[str]]:
    """Parse ``base[offset]`` or ``base, offset`` from the operand list.

    Returns the base register, the offset, and the remaining operands.
    """
    if not operands:
        raise ValueError(f"{opcode.mnemonic} is missing its memory operand")
    match = _MEM_RE.match(operands[0])
    if match:
        base = Register.parse(match.group(1))
        offset = int(_parse_number(match.group(2)))
        return base, offset, operands[1:]
    if len(operands) < 2:
        raise ValueError(
            f"{opcode.mnemonic} memory operand needs base[offset] or "
            f"base, offset"
        )
    base = Register.parse(operands[0])
    offset = int(_parse_number(operands[1]))
    return base, offset, operands[2:]


def _parse_number(text: str):
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise ValueError(f"not a number: {text!r}") from exc


def _expect(operands: List[str], count: int, opcode: Opcode) -> None:
    if len(operands) != count:
        raise ValueError(
            f"{opcode.mnemonic} expected {count} more operand(s), "
            f"got {len(operands)}"
        )
