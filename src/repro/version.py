"""Package version, resolvable with or without an installed dist.

``repro --version`` and the serving layer's ``/healthz`` endpoint both
report the package version.  The repository is routinely run straight
from a source checkout (``PYTHONPATH=src``), where no installed
distribution exists, so resolution falls back from
``importlib.metadata`` to parsing the adjacent ``pyproject.toml``.
"""

from __future__ import annotations

import os
import re

_FALLBACK = "0.0.0+unknown"


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 only
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def _from_pyproject() -> str | None:
    """Parse ``version = "..."`` from the source tree's pyproject.toml.

    A regex, not a TOML parser: ``tomllib`` only exists on 3.11+ and
    the repository supports 3.9.  The ``[project]`` table's ``version``
    key is the first such assignment in the file.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    pyproject = os.path.join(here, os.pardir, os.pardir, "pyproject.toml")
    try:
        with open(pyproject) as handle:
            text = handle.read()
    except OSError:
        return None
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE
    )
    return match.group(1) if match else None


def get_version() -> str:
    """The package version string (never raises)."""
    return _from_metadata() or _from_pyproject() or _FALLBACK
