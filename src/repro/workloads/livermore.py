"""The first 14 Lawrence Livermore loops in the model ISA (paper §2.1).

The paper's benchmarks are LLL1..LLL14, CFT-compiled for the CRAY-1
scalar unit (no vector instructions).  We do not have the CFT compiler
or the CRAY-1 simulator, so each kernel is hand-coded here in the model
ISA the way a scalarizing compiler would emit it: loop counters and
pointers in A registers, data in S registers, constants parked in the
T (and bounds in the B) backup files, loads with immediate offsets, and
branches testing ``A0``.

Each ``lllN()`` factory returns a :class:`~repro.workloads.base.Workload`
with input data and an independently computed expected result (a pure
Python mirror of the same arithmetic, so the assembly's correctness is
checked against something that is *not* the simulator).

Default problem sizes are scaled down from the paper's (which ran 4k-14k
dynamic instructions per loop) to keep full six-table sweeps fast in
pure Python; every factory takes ``n`` so the paper-scale runs remain
available.  All results in EXPERIMENTS.md are *relative* speedups, as in
the paper, so the scale does not change who wins.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..isa.assembler import assemble
from .base import Workload, memory_from_arrays


def _rng(loop: int) -> np.random.Generator:
    """Deterministic per-loop data generator."""
    return np.random.default_rng(1987 + loop)


def _values(rng: np.random.Generator, count: int, low=0.1, high=1.0):
    """Random float64 data bounded away from zero and overflow."""
    return rng.uniform(low, high, count)


# ----------------------------------------------------------------------
# LLL1 -- hydro fragment
# ----------------------------------------------------------------------

def lll1(n: int = 120) -> Workload:
    """``x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])``."""
    XB, YB, ZB = 1000, 2000, 3000
    q, r, t = 0.5, 0.21, 0.38
    rng = _rng(1)
    y = _values(rng, n)
    z = _values(rng, n + 11)

    source = f"""
        ; constants live in the T backup file, as CFT would place them
        S_IMM S1, {q}
        MOV   T1, S1
        S_IMM S2, {r}
        MOV   T2, S2
        S_IMM S3, {t}
        MOV   T3, S3
        MOV   S1, T1          ; q
        MOV   S2, T2          ; r
        MOV   S3, T3          ; t
        A_IMM A1, {XB}
        A_IMM A2, {YB}
        A_IMM A3, {ZB}
        A_IMM A0, {n}
    loop:
        ; CFT-style schedule: loads and index arithmetic ahead of the
        ; dependent floating-point chain
        LOAD_S S4, A3[10]     ; z[k+10]
        LOAD_S S5, A3[11]     ; z[k+11]
        LOAD_S S6, A2[0]      ; y[k]
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        A_ADDI A0, A0, -1
        F_MUL  S4, S2, S4     ; r * z[k+10]
        F_MUL  S5, S3, S5     ; t * z[k+11]
        F_ADD  S4, S4, S5
        F_MUL  S4, S6, S4
        F_ADD  S4, S1, S4     ; q + ...
        STORE_S A1[0], S4
        A_ADDI A1, A1, 1
        BR_NONZERO A0, loop
        HALT
    """

    expected = np.empty(n)
    for k in range(n):
        expected[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11])

    return Workload(
        name="LLL1",
        program=assemble(source, "LLL1"),
        initial_memory=memory_from_arrays({YB: y, ZB: z}),
        expected_outputs={"x": (XB, expected)},
        description="hydro fragment",
    )


# ----------------------------------------------------------------------
# LLL2 -- ICCG excerpt (incomplete Cholesky conjugate gradient)
# ----------------------------------------------------------------------

def lll2(n: int = 64) -> Workload:
    """Halving reduction: ``x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]``."""
    if n & (n - 1):
        raise ValueError("LLL2 wants a power-of-two n")
    XB, VB = 1000, 3000
    size = 2 * n
    rng = _rng(2)
    x0 = _values(rng, size)
    v = _values(rng, size, low=0.05, high=0.4)

    source = f"""
        A_IMM A5, {n}         ; ii
        A_IMM A6, 0           ; ipntp
    outer:
        MOV   A4, A6          ; ipnt = ipntp
        A_ADD A6, A6, A5      ; ipntp += ii
        MOV   S1, A5          ; ii //= 2 (through the shift unit)
        S_SHR S1, S1, 1
        MOV   A5, S1
        MOV   A0, A5          ; inner trip count = new ii
        BR_ZERO A0, done
        A_IMM A7, {XB}
        A_ADD A1, A7, A4
        A_ADDI A1, A1, 1      ; &x[k], k = ipnt+1
        A_ADD A2, A7, A6      ; &x[i], i starts at (new) ipntp
        A_IMM A7, {VB}
        A_ADD A3, A7, A4
        A_ADDI A3, A3, 1      ; &v[k]
    inner:
        LOAD_S S2, A1[0]      ; x[k]
        LOAD_S S3, A1[-1]     ; x[k-1]
        LOAD_S S4, A1[1]      ; x[k+1]
        LOAD_S S5, A3[0]      ; v[k]
        LOAD_S S6, A3[1]      ; v[k+1]
        A_ADDI A1, A1, 2
        A_ADDI A3, A3, 2
        A_ADDI A0, A0, -1
        F_MUL  S3, S5, S3
        F_MUL  S4, S6, S4
        F_SUB  S2, S2, S3
        F_SUB  S2, S2, S4
        STORE_S A2[0], S2
        A_ADDI A2, A2, 1
        BR_NONZERO A0, inner
        JMP outer
    done:
        HALT
    """

    x = list(x0)
    ii, ipntp = n, 0
    while True:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        if ii == 0:
            break
        i = ipntp
        k = ipnt + 1
        for _ in range(ii):
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]
            i += 1
            k += 2

    return Workload(
        name="LLL2",
        program=assemble(source, "LLL2"),
        initial_memory=memory_from_arrays({XB: x0, VB: v}),
        expected_outputs={"x": (XB, np.array(x))},
        description="ICCG excerpt",
    )


# ----------------------------------------------------------------------
# LLL3 -- inner product
# ----------------------------------------------------------------------

def lll3(n: int = 200) -> Workload:
    """``q += z[k] * x[k]`` -- a serial accumulator chain."""
    ZB, XB, RES = 1000, 2000, 9000
    rng = _rng(3)
    z = _values(rng, n)
    x = _values(rng, n)

    source = f"""
        S_IMM S1, 0.0         ; q
        A_IMM A1, {ZB}
        A_IMM A2, {XB}
        A_IMM A0, {n}
    loop:
        LOAD_S S2, A1[0]
        LOAD_S S3, A2[0]
        A_ADDI A1, A1, 1
        A_ADDI A2, A2, 1
        A_ADDI A0, A0, -1
        F_MUL  S2, S2, S3
        F_ADD  S1, S1, S2
        BR_NONZERO A0, loop
        A_IMM A3, {RES}
        STORE_S A3[0], S1
        HALT
    """

    q = 0.0
    for k in range(n):
        q = q + z[k] * x[k]

    return Workload(
        name="LLL3",
        program=assemble(source, "LLL3"),
        initial_memory=memory_from_arrays({ZB: z, XB: x}),
        expected_outputs={"q": (RES, np.array([q]))},
        description="inner product",
    )


# ----------------------------------------------------------------------
# LLL4 -- banded linear equations
# ----------------------------------------------------------------------

def lll4(n: int = 100, xsize: int = 201) -> Workload:
    """``temp -= x[lw++] * y[j]`` over a strided band, three band rows."""
    XB, YB = 1000, 3000
    m = (xsize - 7) // 2
    inner_count = len(range(4, n, 5))
    rng = _rng(4)
    # The band read x[lw] runs up to (last k) - 6 + inner_count - 1,
    # which can exceed xsize; extend the array to cover it.
    x0 = _values(rng, xsize + inner_count)
    y = _values(rng, n, low=0.05, high=0.5)

    source = f"""
        ; inner trip count and the band step m are kept in B registers
        A_IMM A7, {inner_count}
        MOV   B1, A7
        A_IMM A7, {m}
        MOV   B2, A7
        A_IMM A5, {YB + 4}    ; &y[4]
        A_IMM A6, 6           ; k
    outer:
        A_IMM A7, {XB}
        A_ADD A1, A7, A6      ; &x[k]
        LOAD_S S1, A1[-1]     ; temp = x[k-1]
        A_ADDI A2, A1, -6     ; &x[lw], lw = k-6
        A_IMM A3, {YB + 4}    ; &y[j], j = 4
        MOV   A0, B1
    inner:
        LOAD_S S2, A2[0]
        LOAD_S S3, A3[0]
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 5
        A_ADDI A0, A0, -1
        F_MUL  S2, S2, S3
        F_SUB  S1, S1, S2
        BR_NONZERO A0, inner
        LOAD_S S4, A5[0]      ; y[4]
        F_MUL  S4, S4, S1
        STORE_S A1[-1], S4
        MOV   A7, B2
        A_ADD A6, A6, A7      ; k += m
        A_IMM A7, {-xsize}
        A_ADD A0, A6, A7      ; k - xsize
        BR_MINUS A0, outer
        HALT
    """

    x = list(x0)
    k = 6
    while k < xsize:
        lw = k - 6
        temp = x[k - 1]
        for j in range(4, n, 5):
            temp = temp - x[lw] * y[j]
            lw += 1
        x[k - 1] = y[4] * temp
        k += m

    return Workload(
        name="LLL4",
        program=assemble(source, "LLL4"),
        initial_memory=memory_from_arrays({XB: x0, YB: y}),
        expected_outputs={"x": (XB, np.array(x))},
        description="banded linear equations",
    )


# ----------------------------------------------------------------------
# LLL5 -- tri-diagonal elimination, below diagonal
# ----------------------------------------------------------------------

def lll5(n: int = 150) -> Workload:
    """``x[i] = z[i] * (y[i] - x[i-1])`` -- a loop-carried chain."""
    XB, YB, ZB = 1000, 2000, 3000
    rng = _rng(5)
    y = _values(rng, n + 1)
    z = _values(rng, n + 1, low=0.05, high=0.9)
    x0 = 0.42

    source = f"""
        S_IMM S1, {x0}        ; x[i-1], carried in a register
        A_IMM A1, {XB + 1}
        A_IMM A2, {YB + 1}
        A_IMM A3, {ZB + 1}
        A_IMM A0, {n}
    loop:
        LOAD_S S2, A2[0]      ; y[i]
        LOAD_S S3, A3[0]      ; z[i]
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        A_ADDI A0, A0, -1
        F_SUB  S4, S2, S1
        F_MUL  S1, S3, S4     ; new x[i]
        STORE_S A1[0], S1
        A_ADDI A1, A1, 1
        BR_NONZERO A0, loop
        HALT
    """

    expected = np.empty(n)
    carry = x0
    for i in range(n):
        carry = z[i + 1] * (y[i + 1] - carry)
        expected[i] = carry

    return Workload(
        name="LLL5",
        program=assemble(source, "LLL5"),
        initial_memory=memory_from_arrays({YB: y, ZB: z, XB: [x0]}),
        expected_outputs={"x": (XB + 1, expected)},
        description="tri-diagonal elimination",
    )


# ----------------------------------------------------------------------
# LLL6 -- general linear recurrence equations
# ----------------------------------------------------------------------

def lll6(n: int = 24) -> Workload:
    """``w[i] += b[k][i] * w[(i-k)-1]`` for ``k < i`` (triangular)."""
    WB, BB = 1000, 2000
    rng = _rng(6)
    w0 = _values(rng, n, low=0.01, high=0.1)
    b = _values(rng, n * n, low=0.01, high=0.1)

    source = f"""
        A_IMM A5, {n - 1}     ; outer count (i = 1 .. n-1)
        A_IMM A6, 1           ; i
        A_IMM A1, {WB + 1}    ; &w[i]
    outer:
        LOAD_S S1, A1[0]      ; w[i] accumulator
        A_IMM A7, {BB}
        A_ADD A2, A7, A6      ; &b[0][i]
        A_ADDI A3, A1, -1     ; &w[i-1]  (k = 0)
        MOV   A0, A6          ; inner count = i
    inner:
        LOAD_S S2, A2[0]      ; b[k][i]
        LOAD_S S3, A3[0]      ; w[(i-k)-1]
        A_ADDI A2, A2, {n}    ; next row of b
        A_ADDI A3, A3, -1
        A_ADDI A0, A0, -1
        F_MUL  S2, S2, S3
        F_ADD  S1, S1, S2
        BR_NONZERO A0, inner
        STORE_S A1[0], S1
        A_ADDI A1, A1, 1
        A_ADDI A6, A6, 1
        A_ADDI A5, A5, -1
        MOV   A0, A5
        BR_NONZERO A0, outer
        HALT
    """

    w = list(w0)
    for i in range(1, n):
        acc = w[i]
        for k in range(i):
            acc = acc + b[k * n + i] * w[(i - k) - 1]
        w[i] = acc

    return Workload(
        name="LLL6",
        program=assemble(source, "LLL6"),
        initial_memory=memory_from_arrays({WB: w0, BB: b}),
        expected_outputs={"w": (WB, np.array(w))},
        description="general linear recurrence",
    )


# ----------------------------------------------------------------------
# LLL7 -- equation of state fragment
# ----------------------------------------------------------------------

def lll7(n: int = 100) -> Workload:
    """The wide, independent 19-flop expression -- maximum ILP."""
    XB, YB, ZB, UB = 1000, 2000, 3000, 4000
    r, t, q = 0.48, 0.53, 0.37
    rng = _rng(7)
    y = _values(rng, n)
    z = _values(rng, n)
    u = _values(rng, n + 6)

    source = f"""
        S_IMM S1, {r}
        MOV   T1, S1
        S_IMM S2, {t}
        MOV   T2, S2
        S_IMM S3, {q}
        MOV   T3, S3
        MOV   S1, T1          ; r
        MOV   S2, T2          ; t
        MOV   S3, T3          ; q
        A_IMM A1, {XB}
        A_IMM A2, {YB}
        A_IMM A3, {ZB}
        A_IMM A4, {UB}
        A_IMM A0, {n}
    loop:
        LOAD_S S4, A2[0]      ; y[k]
        LOAD_S S5, A3[0]      ; z[k]
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        A_ADDI A0, A0, -1
        F_MUL  S4, S1, S4     ; r*y[k]
        F_ADD  S4, S5, S4     ; z[k] + r*y[k]
        F_MUL  S4, S1, S4     ; r*(...)
        LOAD_S S5, A4[1]      ; u[k+1]
        LOAD_S S6, A4[2]      ; u[k+2]
        F_MUL  S5, S1, S5
        F_ADD  S5, S6, S5
        F_MUL  S5, S1, S5
        LOAD_S S6, A4[3]      ; u[k+3]
        F_ADD  S5, S6, S5     ; u[k+3] + r*(u[k+2] + r*u[k+1])
        LOAD_S S6, A4[4]      ; u[k+4]
        LOAD_S S7, A4[5]      ; u[k+5]
        F_MUL  S6, S3, S6
        F_ADD  S6, S7, S6
        F_MUL  S6, S3, S6
        LOAD_S S7, A4[6]      ; u[k+6]
        F_ADD  S6, S7, S6     ; u[k+6] + q*(u[k+5] + q*u[k+4])
        F_MUL  S6, S2, S6     ; t * (...)
        F_ADD  S5, S5, S6
        F_MUL  S5, S2, S5     ; t * (...)
        F_ADD  S4, S4, S5
        LOAD_S S7, A4[0]      ; u[k]
        F_ADD  S4, S7, S4
        STORE_S A1[0], S4
        A_ADDI A1, A1, 1
        A_ADDI A4, A4, 1
        BR_NONZERO A0, loop
        HALT
    """

    expected = np.empty(n)
    for k in range(n):
        expected[k] = u[k] + r * (z[k] + r * y[k]) + t * (
            (u[k + 3] + r * (u[k + 2] + r * u[k + 1]))
            + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4]))
        )

    return Workload(
        name="LLL7",
        program=assemble(source, "LLL7"),
        initial_memory=memory_from_arrays({YB: y, ZB: z, UB: u}),
        expected_outputs={"x": (XB, expected)},
        description="equation of state fragment",
    )


# ----------------------------------------------------------------------
# LLL8 -- ADI integration
# ----------------------------------------------------------------------

def lll8(n: int = 16) -> Workload:
    """Alternating-direction-implicit fragment over three coupled grids."""
    stride = n + 1
    U1, U2, U3 = 1000, 2000, 3000          # u arrays, 4 x (n+1), flattened
    N1, N2, N3 = 5000, 6000, 7000          # "new" output arrays
    a = {
        "a11": 0.21, "a12": -0.09, "a13": 0.07,
        "a21": -0.05, "a22": 0.19, "a23": 0.11,
        "a31": 0.06, "a32": -0.13, "a33": 0.17,
    }
    sig = 0.25
    rng = _rng(8)
    u1 = _values(rng, 4 * stride)
    u2 = _values(rng, 4 * stride)
    u3 = _values(rng, 4 * stride)

    # Constants sit in T1..T10; each use moves the value into an S
    # register first -- the B/T traffic the paper calls out in Table 6.
    preamble_lines = []
    for slot, key in enumerate(
        ["a11", "a12", "a13", "a21", "a22", "a23", "a31", "a32", "a33"],
        start=1,
    ):
        preamble_lines.append(f"S_IMM S1, {a[key]}")
        preamble_lines.append(f"MOV T{slot}, S1")
    preamble = "\n        ".join(preamble_lines)

    def du_block() -> str:
        return """
        LOAD_S S1, A1[1]
        LOAD_S S4, A1[-1]
        F_SUB  S1, S1, S4     ; du1
        LOAD_S S2, A2[1]
        LOAD_S S4, A2[-1]
        F_SUB  S2, S2, S4     ; du2
        LOAD_S S3, A3[1]
        LOAD_S S4, A3[-1]
        F_SUB  S3, S3, S4     ; du3
        """

    def update_block(uptr: str, nptr: str, t1: int, t2: int, t3: int) -> str:
        return f"""
        MOV    S4, T{t1}
        F_MUL  S4, S4, S1     ; a_1 * du1
        MOV    S5, T{t2}
        F_MUL  S5, S5, S2     ; a_2 * du2
        F_ADD  S4, S4, S5
        MOV    S5, T{t3}
        F_MUL  S5, S5, S3     ; a_3 * du3
        F_ADD  S4, S4, S5
        LOAD_S S5, {uptr}[{stride}]
        LOAD_S S6, {uptr}[{-stride}]
        F_ADD  S5, S5, S6
        LOAD_S S6, {uptr}[0]
        F_SUB  S5, S5, S6
        F_SUB  S5, S5, S6     ; u_xp - 2u + u_xm
        F_MUL  S5, S7, S5     ; sig * (...)
        F_ADD  S4, S4, S5
        F_ADD  S4, S6, S4     ; u + ...
        STORE_S {nptr}[0], S4
        """

    bump = stride - (n - 1)  # from [kx][n-1] to [kx+1][1]
    source = f"""
        {preamble}
        S_IMM S7, {sig}
        A_IMM A7, 2           ; kx = 1, 2
        A_IMM A1, {U1 + stride + 1}
        A_IMM A2, {U2 + stride + 1}
        A_IMM A3, {U3 + stride + 1}
        A_IMM A4, {N1 + stride + 1}
        A_IMM A5, {N2 + stride + 1}
        A_IMM A6, {N3 + stride + 1}
    outer:
        A_IMM A0, {n - 1}     ; ky = 1 .. n-1
    inner:
        A_ADDI A0, A0, -1
        {du_block()}
        {update_block("A1", "A4", 1, 2, 3)}
        {update_block("A2", "A5", 4, 5, 6)}
        {update_block("A3", "A6", 7, 8, 9)}
        A_ADDI A1, A1, 1
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        A_ADDI A4, A4, 1
        A_ADDI A5, A5, 1
        A_ADDI A6, A6, 1
        BR_NONZERO A0, inner
        A_ADDI A1, A1, {bump}
        A_ADDI A2, A2, {bump}
        A_ADDI A3, A3, {bump}
        A_ADDI A4, A4, {bump}
        A_ADDI A5, A5, {bump}
        A_ADDI A6, A6, {bump}
        A_ADDI A7, A7, -1
        MOV   A0, A7
        BR_NONZERO A0, outer
        HALT
    """

    def mirror(u_own, du_sources, coeffs):
        out = np.zeros(4 * stride)
        u1l, u2l, u3l = du_sources
        c1, c2, c3 = coeffs
        for kx in (1, 2):
            for ky in range(1, n):
                idx = kx * stride + ky
                du1 = u1l[idx + 1] - u1l[idx - 1]
                du2 = u2l[idx + 1] - u2l[idx - 1]
                du3 = u3l[idx + 1] - u3l[idx - 1]
                lap = (
                    u_own[idx + stride] + u_own[idx - stride]
                    - u_own[idx] - u_own[idx]
                )
                out[idx] = u_own[idx] + (
                    ((c1 * du1 + c2 * du2) + c3 * du3) + sig * lap
                )
        return out

    sources = (u1, u2, u3)
    n1 = mirror(u1, sources, (a["a11"], a["a12"], a["a13"]))
    n2 = mirror(u2, sources, (a["a21"], a["a22"], a["a23"]))
    n3 = mirror(u3, sources, (a["a31"], a["a32"], a["a33"]))

    return Workload(
        name="LLL8",
        program=assemble(source, "LLL8"),
        initial_memory=memory_from_arrays({U1: u1, U2: u2, U3: u3}),
        expected_outputs={
            "u1new": (N1, n1), "u2new": (N2, n2), "u3new": (N3, n3),
        },
        description="ADI integration",
    )


# ----------------------------------------------------------------------
# LLL9 -- numerical integration (predictor)
# ----------------------------------------------------------------------

def lll9(n: int = 40) -> Workload:
    """13-column predictor: a wide dot product per row."""
    PX = 1000
    cols = 13
    consts = {
        "dm22": 0.20, "dm23": 0.18, "dm24": 0.16, "dm25": 0.14,
        "dm26": 0.12, "dm27": 0.10, "dm28": 0.08, "c0": 0.5,
    }
    rng = _rng(9)
    px = _values(rng, n * cols)

    preamble_lines = []
    for slot, key in enumerate(
        ["dm28", "dm27", "dm26", "dm25", "dm24", "dm23", "dm22", "c0"],
        start=1,
    ):
        preamble_lines.append(f"S_IMM S1, {consts[key]}")
        preamble_lines.append(f"MOV T{slot}, S1")
    preamble = "\n        ".join(preamble_lines)

    term_lines = []
    for slot, col in enumerate([12, 11, 10, 9, 8, 7, 6], start=1):
        term_lines.append(f"LOAD_S S2, A1[{col}]")
        term_lines.append(f"MOV    S3, T{slot}")
        term_lines.append("F_MUL  S2, S3, S2")
        if slot == 1:
            term_lines.append("MOV    S4, S2")
        else:
            term_lines.append("F_ADD  S4, S4, S2")
    terms = "\n        ".join(term_lines)

    source = f"""
        {preamble}
        A_IMM A1, {PX}
        A_IMM A0, {n}
    loop:
        A_ADDI A0, A0, -1
        {terms}
        LOAD_S S2, A1[4]
        LOAD_S S3, A1[5]
        F_ADD  S2, S2, S3
        MOV    S3, T8         ; c0
        F_MUL  S2, S3, S2
        F_ADD  S4, S4, S2
        LOAD_S S2, A1[2]
        F_ADD  S4, S4, S2
        STORE_S A1[0], S4
        A_ADDI A1, A1, {cols}
        BR_NONZERO A0, loop
        HALT
    """

    out = px.copy()
    for i in range(n):
        row = i * cols
        acc = consts["dm28"] * px[row + 12]
        for key, col in [
            ("dm27", 11), ("dm26", 10), ("dm25", 9),
            ("dm24", 8), ("dm23", 7), ("dm22", 6),
        ]:
            acc = acc + consts[key] * px[row + col]
        acc = acc + consts["c0"] * (px[row + 4] + px[row + 5])
        acc = acc + px[row + 2]
        out[row] = acc

    return Workload(
        name="LLL9",
        program=assemble(source, "LLL9"),
        initial_memory=memory_from_arrays({PX: px}),
        expected_outputs={"px": (PX, out)},
        description="numerical integration",
    )


# ----------------------------------------------------------------------
# LLL10 -- numerical differentiation (difference predictors)
# ----------------------------------------------------------------------

def lll10(n: int = 40) -> Workload:
    """A serial cascade of differences along each row."""
    PX, CX = 1000, 3000
    cols = 14
    rng = _rng(10)
    px = _values(rng, n * cols)
    cx = _values(rng, n * cols)

    # ar/br/cr rotate through S1, S3, S4: at each step the new
    # difference is computed and the previous value stored back.
    steps = []
    regs = ["S1", "S3", "S4"]
    for idx, col in enumerate(range(4, 13)):
        prev = regs[idx % 3]
        new = regs[(idx + 1) % 3]
        steps.append(f"LOAD_S S2, A1[{col}]")
        steps.append(f"F_SUB  {new}, {prev}, S2")
        steps.append(f"STORE_S A1[{col}], {prev}")
    final_reg = regs[(len(range(4, 13))) % 3]
    cascade = "\n        ".join(steps)

    source = f"""
        A_IMM A1, {PX}
        A_IMM A2, {CX}
        A_IMM A0, {n}
    loop:
        LOAD_S S1, A2[4]      ; ar = cx[i][4]
        A_ADDI A0, A0, -1
        {cascade}
        STORE_S A1[13], {final_reg}
        A_ADDI A1, A1, {cols}
        A_ADDI A2, A2, {cols}
        BR_NONZERO A0, loop
        HALT
    """

    out = px.copy()
    for i in range(n):
        row = i * cols
        carry = cx[row + 4]
        for col in range(4, 13):
            new = carry - out[row + col]
            out[row + col] = carry
            carry = new
        out[row + 13] = carry

    return Workload(
        name="LLL10",
        program=assemble(source, "LLL10"),
        initial_memory=memory_from_arrays({PX: px, CX: cx}),
        expected_outputs={"px": (PX, out)},
        description="numerical differentiation",
    )


# ----------------------------------------------------------------------
# LLL11 -- first sum (prefix sum)
# ----------------------------------------------------------------------

def lll11(n: int = 200) -> Workload:
    """``x[k] = x[k-1] + y[k]`` with the carry held in a register."""
    XB, YB = 1000, 2000
    rng = _rng(11)
    y = _values(rng, n, low=0.001, high=0.01)

    source = f"""
        S_IMM S1, 0.0         ; running sum
        A_IMM A1, {XB}
        A_IMM A2, {YB}
        A_IMM A0, {n}
    loop:
        LOAD_S S2, A2[0]
        A_ADDI A2, A2, 1
        A_ADDI A0, A0, -1
        F_ADD  S1, S1, S2
        STORE_S A1[0], S1
        A_ADDI A1, A1, 1
        BR_NONZERO A0, loop
        HALT
    """

    expected = np.empty(n)
    carry = 0.0
    for k in range(n):
        carry = carry + y[k]
        expected[k] = carry

    return Workload(
        name="LLL11",
        program=assemble(source, "LLL11"),
        initial_memory=memory_from_arrays({YB: y}),
        expected_outputs={"x": (XB, expected)},
        description="first sum",
    )


# ----------------------------------------------------------------------
# LLL12 -- first difference
# ----------------------------------------------------------------------

def lll12(n: int = 200) -> Workload:
    """``x[k] = y[k+1] - y[k]`` -- fully parallel."""
    XB, YB = 1000, 2000
    rng = _rng(12)
    y = _values(rng, n + 1)

    source = f"""
        A_IMM A1, {XB}
        A_IMM A2, {YB}
        A_IMM A0, {n}
    loop:
        LOAD_S S2, A2[1]
        LOAD_S S3, A2[0]
        A_ADDI A2, A2, 1
        A_ADDI A0, A0, -1
        F_SUB  S4, S2, S3
        STORE_S A1[0], S4
        A_ADDI A1, A1, 1
        BR_NONZERO A0, loop
        HALT
    """

    expected = np.array([y[k + 1] - y[k] for k in range(n)])

    return Workload(
        name="LLL12",
        program=assemble(source, "LLL12"),
        initial_memory=memory_from_arrays({YB: y}),
        expected_outputs={"x": (XB, expected)},
        description="first difference",
    )


# ----------------------------------------------------------------------
# LLL13 -- 2-D particle in cell
# ----------------------------------------------------------------------

def lll13(n_particles: int = 48, grid: int = 8) -> Workload:
    """Indirect gathers from two grids and a histogram scatter."""
    PB, BB, CB, HB = 1000, 3000, 4000, 5000
    fields = 4   # i1, j1, val1, val2 per particle
    mask = grid - 1
    rng = _rng(13)
    p = np.zeros(n_particles * fields)
    p[0::fields] = rng.integers(0, grid, n_particles)       # i1
    p[1::fields] = rng.integers(0, grid, n_particles)       # j1
    p[2::fields] = _values(rng, n_particles)
    p[3::fields] = _values(rng, n_particles)
    b = _values(rng, grid * grid)
    c = _values(rng, grid * grid)
    p_words = [
        int(v) if idx % fields < 2 else float(v) for idx, v in enumerate(p)
    ]

    source = f"""
        S_IMM S6, {mask}      ; wrap mask, via the logical unit
        S_IMM S1, 1.0
        A_IMM A1, {PB}
        A_IMM A7, {grid}
        A_IMM A0, {n_particles}
    loop:
        LOAD_A A3, A1[0]      ; i1
        LOAD_A A4, A1[1]      ; j1
        A_ADDI A0, A0, -1
        A_MUL  A5, A4, A7     ; j1 * grid (address multiply unit)
        A_ADD  A5, A5, A3
        A_IMM  A6, {BB}
        A_ADD  A6, A6, A5
        LOAD_S S2, A6[0]      ; b[j1][i1]
        LOAD_S S3, A1[2]
        F_ADD  S3, S3, S2
        STORE_S A1[2], S3
        A_IMM  A6, {CB}
        A_ADD  A6, A6, A5
        LOAD_S S2, A6[0]      ; c[j1][i1]
        LOAD_S S3, A1[3]
        F_ADD  S3, S3, S2
        STORE_S A1[3], S3
        A_ADDI A3, A3, 1      ; i2 = (i1 + 1) & mask
        MOV    S4, A3
        S_AND  S4, S4, S6
        MOV    A3, S4
        STORE_A A1[0], A3     ; particle moves
        A_MUL  A5, A4, A7
        A_ADD  A5, A5, A3
        A_IMM  A6, {HB}
        A_ADD  A6, A6, A5
        LOAD_S S2, A6[0]      ; h[j1][i2] += 1.0
        F_ADD  S2, S2, S1
        STORE_S A6[0], S2
        A_ADDI A1, A1, {fields}
        BR_NONZERO A0, loop
        HALT
    """

    p_out = list(p_words)
    h = [0.0] * (grid * grid)
    for ip in range(n_particles):
        row = ip * fields
        i1 = p_out[row]
        j1 = p_out[row + 1]
        p_out[row + 2] = p_out[row + 2] + b[j1 * grid + i1]
        p_out[row + 3] = p_out[row + 3] + c[j1 * grid + i1]
        i2 = (i1 + 1) & mask
        p_out[row] = i2
        h[j1 * grid + i2] += 1.0

    return Workload(
        name="LLL13",
        program=assemble(source, "LLL13"),
        initial_memory=memory_from_arrays({PB: p_words, BB: b, CB: c}),
        expected_outputs={
            "p": (PB, np.array([float(v) for v in p_out])),
            "h": (HB, np.array(h)),
        },
        description="2-D particle in cell",
    )


# ----------------------------------------------------------------------
# LLL14 -- 1-D particle in cell
# ----------------------------------------------------------------------

def lll14(n: int = 100, cells: int = 32) -> Workload:
    """Gather, integrate, scatter-accumulate with aliasing on ``rh``."""
    IR, VX, XX, EX, RH = 1000, 2000, 3000, 4000, 5000
    mask = cells - 1
    rng = _rng(14)
    ir = rng.integers(0, cells, n)
    vx = _values(rng, n, low=0.01, high=0.1)
    xx = _values(rng, n)
    ex = _values(rng, cells)

    source = f"""
        S_IMM S6, {mask}
        S_IMM S1, 1.0
        A_IMM A1, {IR}
        A_IMM A2, {VX}
        A_IMM A3, {XX}
        A_IMM A0, {n}
    loop:
        LOAD_A A4, A1[0]      ; ix
        A_ADDI A0, A0, -1
        A_IMM  A5, {EX}
        A_ADD  A5, A5, A4
        LOAD_S S2, A5[0]      ; ex[ix]
        LOAD_S S3, A2[0]      ; vx[k]
        F_ADD  S3, S3, S2
        STORE_S A2[0], S3     ; vx[k] += ex[ix]
        LOAD_S S4, A3[0]      ; xx[k]
        F_ADD  S4, S4, S3
        STORE_S A3[0], S4     ; xx[k] += vx[k]
        A_IMM  A6, {RH}
        A_ADD  A6, A6, A4
        LOAD_S S5, A6[0]      ; rh[ix] += 1.0 (aliased scatter)
        F_ADD  S5, S5, S1
        STORE_S A6[0], S5
        A_ADDI A4, A4, 1      ; ir[k] = (ix + 1) & mask
        MOV    S5, A4
        S_AND  S5, S5, S6
        MOV    A4, S5
        STORE_A A1[0], A4
        A_ADDI A1, A1, 1
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        BR_NONZERO A0, loop
        HALT
    """

    ir_out = [int(v) for v in ir]
    vx_out = list(vx)
    xx_out = list(xx)
    rh = [0.0] * cells
    for k in range(n):
        ix = ir_out[k]
        vx_out[k] = vx_out[k] + ex[ix]
        xx_out[k] = xx_out[k] + vx_out[k]
        rh[ix] += 1.0
        ir_out[k] = (ix + 1) & mask

    return Workload(
        name="LLL14",
        program=assemble(source, "LLL14"),
        initial_memory=memory_from_arrays(
            {IR: [int(v) for v in ir], VX: vx, XX: xx, EX: ex}
        ),
        expected_outputs={
            "vx": (VX, np.array(vx_out)),
            "xx": (XX, np.array(xx_out)),
            "rh": (RH, np.array(rh)),
            "ir": (IR, np.array([float(v) for v in ir_out])),
        },
        description="1-D particle in cell",
    )


#: Factories for LLL1..LLL14, keyed by loop number.
LIVERMORE_FACTORIES: Dict[int, Callable[..., Workload]] = {
    1: lll1, 2: lll2, 3: lll3, 4: lll4, 5: lll5, 6: lll6, 7: lll7,
    8: lll8, 9: lll9, 10: lll10, 11: lll11, 12: lll12, 13: lll13, 14: lll14,
}


def all_loops() -> List[Workload]:
    """Instantiate LLL1..LLL14 at their default sizes."""
    return [factory() for factory in LIVERMORE_FACTORIES.values()]
