"""Named workload suites and problem-size presets.

The default loop sizes are scaled down from the paper's (fast full-table
sweeps in pure Python); the ``paper`` preset restores problem sizes that
give per-loop dynamic instruction counts in the paper's 4k-14k range.
Relative results are stable across presets (verified by
``tests/test_suites.py``), which is what justifies benchmarking at the
small sizes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Workload
from .livermore import LIVERMORE_FACTORIES
from .synthetic import (
    branch_heavy,
    dependency_chain,
    fault_probe,
    independent_streams,
    memory_alias_kernel,
    register_pressure,
)

#: Per-loop keyword overrides for each size preset.
SIZE_PRESETS: Dict[str, Dict[int, Dict[str, int]]] = {
    # quick: for smoke tests and CI subsets (~8k dynamic instructions)
    "quick": {
        1: {"n": 40}, 2: {"n": 32}, 3: {"n": 60}, 4: {"n": 40},
        5: {"n": 50}, 6: {"n": 12}, 7: {"n": 30}, 8: {"n": 8},
        9: {"n": 15}, 10: {"n": 15}, 11: {"n": 60}, 12: {"n": 60},
        13: {"n_particles": 16}, 14: {"n": 40},
    },
    # default: the factories' own sizes (~24k dynamic instructions)
    "default": {},
    # paper: per-loop dynamic counts in the paper's 4k-14k band
    # (~100k dynamic instructions total)
    "paper": {
        1: {"n": 500}, 2: {"n": 256}, 3: {"n": 900}, 4: {"n": 420,
                                                         "xsize": 801},
        5: {"n": 700}, 6: {"n": 52}, 7: {"n": 220}, 8: {"n": 36},
        9: {"n": 120}, 10: {"n": 140}, 11: {"n": 900}, 12: {"n": 900},
        13: {"n_particles": 220}, 14: {"n": 320},
    },
}


def livermore_suite(preset: str = "default") -> List[Workload]:
    """LLL1..LLL14 at the requested size preset."""
    overrides = SIZE_PRESETS[preset]
    return [
        factory(**overrides.get(number, {}))
        for number, factory in LIVERMORE_FACTORIES.items()
    ]


def synthetic_suite() -> List[Workload]:
    """All synthetic microkernels at default sizes."""
    return [
        dependency_chain(),
        independent_streams(),
        memory_alias_kernel(),
        branch_heavy(),
        register_pressure(),
        fault_probe(),
    ]


#: Every named suite, for the CLI and benchmarks.
SUITES: Dict[str, Callable[[], List[Workload]]] = {
    "quick": lambda: livermore_suite("quick"),
    "livermore": livermore_suite,
    "paper": lambda: livermore_suite("paper"),
    "synthetic": synthetic_suite,
}
