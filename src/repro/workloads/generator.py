"""Parameterized synthetic workload generator.

The Livermore kernels are fixed points in the (ILP, memory intensity,
branchiness) space; this generator lets studies move through that space
continuously.  A :class:`GeneratorSpec` chooses:

* ``streams`` -- how many independent dependency chains run in parallel
  (1 = fully serial, more = more instruction-level parallelism);
* ``memory_fraction`` -- the fraction of body operations that touch
  memory (loads/stores over a configurable working set);
* ``working_set`` -- distinct data addresses (small = heavy aliasing
  through the load registers, large = independent traffic);
* ``branch_every`` -- insert a data-dependent forward branch every N
  body operations (0 = straight-line loop body);
* ``iterations`` and ``body_ops`` -- the dynamic size.

Programs are deterministic in the seed, type-safe by construction
(fault-free on every engine), and validated the same way as every other
workload: the engines must reproduce the golden model's state bit for
bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..isa.assembler import assemble
from .base import Workload, memory_from_arrays

#: registers reserved by the loop scaffolding
_COUNTER = "A7"     # loop counter
_TEST = "A0"        # branch-condition staging
_DATA_BASE = "A6"   # working-set base pointer
_SPILL_BASE = "A5"  # spill/output region base

_DATA_REGION = 1000
_OUT_REGION = 5000


@dataclass(frozen=True)
class GeneratorSpec:
    """Knobs for one synthetic workload."""

    streams: int = 2               # 1..3 float chains (S1..S3)
    memory_fraction: float = 0.25  # share of ops that are loads/stores
    working_set: int = 16          # distinct data words
    branch_every: int = 0          # 0 = no inner branches
    iterations: int = 20
    body_ops: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.streams <= 3:
            raise ValueError("streams must be 1..3 (registers S1..S3)")
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be within [0, 1]")
        if self.working_set < 1:
            raise ValueError("working_set must be positive")
        if self.iterations < 1 or self.body_ops < 1:
            raise ValueError("iterations and body_ops must be positive")

    @property
    def name(self) -> str:
        return (
            f"gen-s{self.streams}-m{int(self.memory_fraction * 100)}"
            f"-w{self.working_set}-b{self.branch_every}-x{self.seed}"
        )


def generate_workload(spec: GeneratorSpec) -> Workload:
    """Build the workload described by ``spec``."""
    rng = random.Random(spec.seed * 7919 + 13)
    data_rng = np.random.default_rng(spec.seed + 4242)
    data = data_rng.uniform(0.01, 0.1, spec.working_set)

    stream_regs = [f"S{i + 1}" for i in range(spec.streams)]
    scratch = "S4"

    lines: List[str] = [
        f"A_IMM {_DATA_BASE}, {_DATA_REGION}",
        f"A_IMM {_SPILL_BASE}, {_OUT_REGION}",
        "A_IMM A1, 1",
    ]
    for reg in stream_regs:
        lines.append(f"S_IMM {reg}, 1.0")
    lines.append(f"A_IMM {_COUNTER}, {spec.iterations}")
    lines.append("loop:")

    branch_id = 0
    out_slot = 0
    for op_index in range(spec.body_ops):
        reg = stream_regs[op_index % spec.streams]
        if rng.random() < spec.memory_fraction:
            offset = rng.randrange(spec.working_set)
            if rng.random() < 0.5:
                lines.append(f"LOAD_S {scratch}, {_DATA_BASE}[{offset}]")
                lines.append(f"F_ADD {reg}, {reg}, {scratch}")
            else:
                lines.append(f"STORE_S {_DATA_BASE}[{offset}], {reg}")
        else:
            kind = rng.randrange(3)
            if kind == 0:
                # contractive multiply-add: x <- 0.5x + 0.25 stays
                # within [0, 1]-ish whatever the mix does around it
                lines.append(f"S_IMM {scratch}, 0.5")
                lines.append(f"F_MUL {reg}, {reg}, {scratch}")
                lines.append(f"S_IMM {scratch}, 0.25")
                lines.append(f"F_ADD {reg}, {reg}, {scratch}")
            elif kind == 1:
                other = stream_regs[rng.randrange(spec.streams)]
                lines.append(f"F_SUB {reg}, {reg}, {other}")
            else:
                lines.append(f"S_IMM {scratch}, 0.125")
                lines.append(f"F_ADD {reg}, {reg}, {scratch}")
        if spec.branch_every and (op_index + 1) % spec.branch_every == 0:
            label = f"skip{branch_id}"
            branch_id += 1
            # data-dependent but type-safe: test the loop counter parity
            # staged through the logical unit
            lines.append(f"MOV S7, {_COUNTER}")
            lines.append("S_IMM S6, 1")
            lines.append("S_AND S7, S7, S6")
            lines.append(f"MOV {_TEST}, S7")
            lines.append(f"BR_ZERO {_TEST}, {label}")
            lines.append(f"STORE_S {_SPILL_BASE}[{out_slot}], {reg}")
            out_slot += 1
            lines.append(f"{label}:")

    # store each stream's running value once per iteration
    for slot, reg in enumerate(stream_regs):
        lines.append(
            f"STORE_S {_SPILL_BASE}[{100 + slot}], {reg}"
        )
    lines.append(f"A_ADDI {_COUNTER}, {_COUNTER}, -1")
    lines.append(f"MOV {_TEST}, {_COUNTER}")
    lines.append(f"BR_NONZERO {_TEST}, loop")
    lines.append("HALT")

    # All body operations are contractive or bounded-additive, so
    # values never approach the float range and no arithmetic trap can
    # fire -- generated workloads are fault-free on every engine.
    program = assemble("\n".join(lines), spec.name)
    return Workload(
        name=spec.name,
        program=program,
        initial_memory=memory_from_arrays({_DATA_REGION: data}),
        expected_outputs={},  # equivalence vs the golden model instead
        description=(
            f"synthetic: {spec.streams} stream(s), "
            f"{spec.memory_fraction:.0%} memory, "
            f"working set {spec.working_set}, "
            f"branch every {spec.branch_every or 'never'}"
        ),
    )


def ilp_sweep(streams_values=(1, 2, 3), **kwargs) -> List[Workload]:
    """Workloads differing only in available ILP."""
    return [
        generate_workload(GeneratorSpec(streams=streams, **kwargs))
        for streams in streams_values
    ]


def memory_sweep(fractions=(0.0, 0.25, 0.5, 0.75), **kwargs) -> List[Workload]:
    """Workloads differing only in memory intensity."""
    return [
        generate_workload(
            GeneratorSpec(memory_fraction=fraction, **kwargs)
        )
        for fraction in fractions
    ]
