"""Workload infrastructure.

A :class:`Workload` bundles a program of the model ISA with its input
data and an independently computed expected result (NumPy), playing the
role of the paper's CFT-compiled benchmark binaries.  Engines receive a
fresh copy of the initial memory per run; validation compares the final
memory against the NumPy reference -- this checks that the hand-written
assembly implements the kernel's mathematics, independently of the
engine-vs-ISS equivalence checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..isa.program import Program
from ..machine.memory import Memory


@dataclass
class Workload:
    """A benchmark program plus data and expected outputs."""

    name: str
    program: Program
    initial_memory: Memory
    #: label -> (base address, expected contents) for validation.
    expected_outputs: Dict[str, Tuple[int, np.ndarray]] = field(
        default_factory=dict
    )
    description: str = ""

    def make_memory(self) -> Memory:
        """A fresh, mutable copy of the input data."""
        return self.initial_memory.copy()

    def validate(self, memory: Memory, rtol: float = 1e-9) -> List[str]:
        """Compare ``memory`` against the NumPy reference.

        Returns a list of mismatch descriptions (empty means correct).
        """
        failures: List[str] = []
        for label, (base, expected) in self.expected_outputs.items():
            actual = np.array(
                [float(value) for value in
                 memory.read_array(base, len(expected))]
            )
            if not np.allclose(actual, expected, rtol=rtol, atol=1e-12):
                bad = np.flatnonzero(
                    ~np.isclose(actual, expected, rtol=rtol, atol=1e-12)
                )
                first = bad[0] if len(bad) else 0
                failures.append(
                    f"{self.name}/{label}: {len(bad)} of {len(expected)} "
                    f"words differ; first at +{first}: "
                    f"got {actual[first]!r}, want {expected[first]!r}"
                )
        return failures


def memory_from_arrays(arrays: Dict[int, Sequence]) -> Memory:
    """Build a :class:`Memory` from ``{base_address: values}``."""
    memory = Memory()
    for base, values in arrays.items():
        memory.write_array(base, [_to_word(v) for v in values])
    return memory


def _to_word(value):
    """Convert a NumPy scalar to a plain Python int/float memory word."""
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    return value
