"""Synthetic microkernels for targeted tests and ablations.

Each kernel isolates one behaviour the Livermore loops mix together:

* :func:`dependency_chain` -- a pure serial chain (no ILP at all);
* :func:`independent_streams` -- fully parallel work (ILP bounded only
  by machine resources);
* :func:`memory_alias_kernel` -- loads and stores hammering the same
  addresses (exercises the load registers' forwarding and ordering);
* :func:`branch_heavy` -- data-dependent branch directions (defeats
  static prediction; exercises the speculative RUU's recovery);
* :func:`register_pressure` -- many live destination registers cycling
  through the B/T files (exercises tag allocation and NI/LI counters);
* :func:`fault_probe` -- a kernel with a known faulting-load site, for
  interrupt experiments.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..isa.assembler import assemble
from .base import Workload, memory_from_arrays


def dependency_chain(length: int = 200) -> Workload:
    """``s = (s + y[k]) * z`` -- every operation depends on the last."""
    YB, RES = 1000, 9000
    rng = np.random.default_rng(100)
    y = rng.uniform(0.01, 0.1, length)
    z = 0.75

    source = f"""
        S_IMM S1, 1.0
        S_IMM S2, {z}
        A_IMM A1, {YB}
        A_IMM A0, {length}
    loop:
        LOAD_S S3, A1[0]
        A_ADDI A1, A1, 1
        A_ADDI A0, A0, -1
        F_ADD  S1, S1, S3
        F_MUL  S1, S1, S2
        BR_NONZERO A0, loop
        A_IMM A2, {RES}
        STORE_S A2[0], S1
        HALT
    """
    acc = 1.0
    for k in range(length):
        acc = (acc + y[k]) * z

    return Workload(
        name="chain",
        program=assemble(source, "chain"),
        initial_memory=memory_from_arrays({YB: y}),
        expected_outputs={"s": (RES, np.array([acc]))},
        description="serial dependency chain",
    )


def independent_streams(length: int = 100) -> Workload:
    """Four independent accumulations -- near-perfect ILP."""
    B0, B1, B2, B3, RES = 1000, 2000, 3000, 4000, 9000
    rng = np.random.default_rng(101)
    data = [rng.uniform(0.01, 0.1, length) for _ in range(4)]

    source = f"""
        S_IMM S1, 0.0
        S_IMM S2, 0.0
        S_IMM S3, 0.0
        S_IMM S4, 0.0
        A_IMM A1, {B0}
        A_IMM A2, {B1}
        A_IMM A3, {B2}
        A_IMM A4, {B3}
        A_IMM A0, {length}
    loop:
        LOAD_S S5, A1[0]
        LOAD_S S6, A2[0]
        LOAD_S S7, A3[0]
        A_ADDI A1, A1, 1
        A_ADDI A2, A2, 1
        A_ADDI A3, A3, 1
        A_ADDI A0, A0, -1
        F_ADD  S1, S1, S5
        F_ADD  S2, S2, S6
        F_ADD  S3, S3, S7
        LOAD_S S5, A4[0]
        A_ADDI A4, A4, 1
        F_ADD  S4, S4, S5
        BR_NONZERO A0, loop
        A_IMM A1, {RES}
        STORE_S A1[0], S1
        STORE_S A1[1], S2
        STORE_S A1[2], S3
        STORE_S A1[3], S4
        HALT
    """
    sums = []
    for stream in data:
        acc = 0.0
        for value in stream:
            acc = acc + value
        sums.append(acc)

    return Workload(
        name="streams",
        program=assemble(source, "streams"),
        initial_memory=memory_from_arrays(
            {B0: data[0], B1: data[1], B2: data[2], B3: data[3]}
        ),
        expected_outputs={"sums": (RES, np.array(sums))},
        description="independent parallel streams",
    )


def memory_alias_kernel(iterations: int = 60) -> Workload:
    """Read-modify-write on a tiny working set: every load hits an
    address with a recent pending store (store-to-load forwarding)."""
    BUF, RES = 1000, 9000
    size = 4

    source = f"""
        S_IMM S1, 1.0
        A_IMM A1, {BUF}
        A_IMM A0, {iterations}
    loop:
        LOAD_S S2, A1[0]
        F_ADD  S2, S2, S1
        STORE_S A1[0], S2
        LOAD_S S3, A1[1]
        F_ADD  S3, S3, S2
        STORE_S A1[1], S3
        LOAD_S S4, A1[2]
        F_ADD  S4, S4, S3
        STORE_S A1[2], S4
        LOAD_S S5, A1[3]
        F_ADD  S5, S5, S4
        STORE_S A1[3], S5
        A_ADDI A0, A0, -1
        BR_NONZERO A0, loop
        HALT
    """
    buf = [0.0] * size
    for _ in range(iterations):
        buf[0] = buf[0] + 1.0
        buf[1] = buf[1] + buf[0]
        buf[2] = buf[2] + buf[1]
        buf[3] = buf[3] + buf[2]

    return Workload(
        name="alias",
        program=assemble(source, "alias"),
        initial_memory=memory_from_arrays({BUF: [0.0] * size}),
        expected_outputs={"buf": (BUF, np.array(buf))},
        description="same-address load/store traffic",
    )


def branch_heavy(length: int = 120, seed: int = 7) -> Workload:
    """Per-element data-dependent branching: add the element when it is
    'positive-coded' (1), subtract when 0 -- directions look random."""
    FLAGS, VALS, RES = 1000, 2000, 9000
    rng = np.random.default_rng(seed)
    flags = rng.integers(0, 2, length)
    vals = rng.uniform(0.1, 1.0, length)

    source = f"""
        S_IMM S1, 0.0
        A_IMM A1, {FLAGS}
        A_IMM A2, {VALS}
        A_IMM A7, {length}
    loop:
        LOAD_A A0, A1[0]      ; flag decides the branch direction
        LOAD_S S2, A2[0]
        A_ADDI A1, A1, 1
        A_ADDI A2, A2, 1
        BR_ZERO A0, minus
        F_ADD  S1, S1, S2
        JMP    next
    minus:
        F_SUB  S1, S1, S2
    next:
        A_ADDI A7, A7, -1
        MOV    A0, A7
        BR_NONZERO A0, loop
        A_IMM A3, {RES}
        STORE_S A3[0], S1
        HALT
    """
    acc = 0.0
    for flag, value in zip(flags, vals):
        acc = acc + value if flag else acc - value

    return Workload(
        name="branchy",
        program=assemble(source, "branchy"),
        initial_memory=memory_from_arrays(
            {FLAGS: [int(f) for f in flags], VALS: vals}
        ),
        expected_outputs={"acc": (RES, np.array([acc]))},
        description="data-dependent branches",
    )


def register_pressure(iterations: int = 40) -> Workload:
    """Cycle values through many B/T registers each iteration, creating
    a large population of simultaneously live destinations."""
    SRC, RES = 1000, 9000
    rng = np.random.default_rng(103)
    data = rng.uniform(0.1, 0.5, iterations)

    moves = []
    for slot in range(8):
        moves.append(f"MOV T{slot + 1}, S{(slot % 4) + 2}")
    for slot in range(8):
        moves.append(f"MOV S{(slot % 4) + 2}, T{slot + 1}")
    body = "\n        ".join(moves)

    source = f"""
        S_IMM S2, 0.125
        S_IMM S3, 0.25
        S_IMM S4, 0.375
        S_IMM S5, 0.5
        S_IMM S1, 0.0
        A_IMM A1, {SRC}
        A_IMM A0, {iterations}
    loop:
        LOAD_S S6, A1[0]
        A_ADDI A1, A1, 1
        A_ADDI A0, A0, -1
        {body}
        F_ADD  S1, S1, S6
        F_ADD  S1, S1, S2
        BR_NONZERO A0, loop
        A_IMM A2, {RES}
        STORE_S A2[0], S1
        HALT
    """
    acc = 0.0
    for value in data:
        acc = acc + value
        acc = acc + 0.125

    return Workload(
        name="pressure",
        program=assemble(source, "pressure"),
        initial_memory=memory_from_arrays({SRC: data}),
        expected_outputs={"acc": (RES, np.array([acc]))},
        description="B/T register pressure",
    )


def fault_probe(n: int = 20, fault_index: int = 13) -> Workload:
    """A simple streaming kernel whose ``fault_index``-th load hits a
    known address -- inject a fault there for interrupt experiments.

    The faulting address is ``1000 + fault_index``.
    """
    SRC, DST = 1000, 2000
    rng = np.random.default_rng(104)
    data = rng.uniform(0.5, 1.5, n)

    source = f"""
        S_IMM S1, 2.0
        A_IMM A1, {SRC}
        A_IMM A2, {DST}
        A_IMM A0, {n}
    loop:
        LOAD_S S2, A1[0]
        A_ADDI A1, A1, 1
        A_ADDI A0, A0, -1
        F_MUL  S2, S2, S1
        STORE_S A2[0], S2
        A_ADDI A2, A2, 1
        BR_NONZERO A0, loop
        HALT
    """
    expected = np.array([v * 2.0 for v in data])

    wl = Workload(
        name="faultprobe",
        program=assemble(source, "faultprobe"),
        initial_memory=memory_from_arrays({SRC: data}),
        expected_outputs={"out": (DST, expected)},
        description="streaming kernel with a designated fault site",
    )
    wl.fault_address = SRC + fault_index  # type: ignore[attr-defined]
    return wl


ALL_SYNTHETIC = [
    dependency_chain,
    independent_streams,
    memory_alias_kernel,
    branch_heavy,
    register_pressure,
    fault_probe,
]
