"""The functional executor (instruction-set simulator).

This is the golden architectural model: it executes programs of the model
ISA with no timing, in strict program order.  It plays the role of the
CRAY-1 simulator of Pang & Smith [15] in the paper's toolchain -- the
trace generator -- and doubles as the reference that every timing engine
must agree with:

* final register/memory state (architectural equivalence tests), and
* any prefix state (precise-interrupt tests: the state an interrupt at
  dynamic instruction *k* must expose is exactly ``run_prefix(k)``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpKind, Opcode
from ..isa.program import Program
from ..isa.registers import RegisterFile
from ..isa.semantics import (
    branch_taken,
    coerce_for_bank,
    effective_address,
    evaluate,
)
from ..machine.faults import FAULT_TYPES
from ..machine.memory import Memory
from .trace import Trace, TraceEntry


class ExecutionLimitExceeded(RuntimeError):
    """The functional executor hit its dynamic instruction limit."""


class FunctionalExecutor:
    """Executes a program architecturally, producing a dynamic trace."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        registers: Optional[RegisterFile] = None,
        fault_checks: bool = False,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.regs = registers if registers is not None else RegisterFile()
        self.fault_checks = fault_checks
        self.pc = 0
        self.executed = 0
        self.halted = False
        self.trace = Trace(program.name)

    # ------------------------------------------------------------------

    def step(self) -> Optional[TraceEntry]:
        """Execute one instruction; returns its trace entry (None at HALT)."""
        if self.halted:
            return None
        inst = self.program[self.pc]
        if inst.is_halt:
            self.halted = True
            return None
        seq = self.executed
        taken, address = self._execute(inst)
        entry = TraceEntry(
            seq=seq, pc=inst.pc, inst=inst, taken=taken, address=address
        )
        self.trace.append(entry)
        self.executed += 1
        return entry

    def run(self, max_instructions: int = 10_000_000) -> Trace:
        """Run to HALT; returns the dynamic trace."""
        while not self.halted:
            if self.executed >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}: exceeded {max_instructions} "
                    f"instructions at pc {self.pc}"
                )
            self.step()
        return self.trace

    def run_prefix(self, count: int) -> "FunctionalExecutor":
        """Execute exactly the first ``count`` dynamic instructions.

        Used by the precise-interrupt tests: the state after the prefix is
        the state a precise interrupt at dynamic instruction ``count``
        must expose.
        """
        while not self.halted and self.executed < count:
            self.step()
        return self

    # ------------------------------------------------------------------

    def _execute(self, inst: Instruction) -> Tuple[Optional[bool], Optional[int]]:
        """Apply one instruction's semantics; returns (taken, address)."""
        opcode = inst.opcode
        kind = opcode.kind
        if kind is OpKind.BRANCH:
            value = self.regs.read(inst.srcs[0])
            taken = branch_taken(opcode, value)
            self.pc = inst.target if taken else inst.pc + 1
            return taken, None
        if kind is OpKind.JUMP:
            self.pc = inst.target
            return True, None
        if kind is OpKind.NOP:
            self.pc = inst.pc + 1
            return None, None
        if kind is OpKind.LOAD:
            address = effective_address(self.regs.read(inst.base), inst.imm)
            value = self.memory.read(address) if self.fault_checks \
                else self.memory.peek(address)
            self.regs.write(inst.dest, coerce_for_bank(inst.dest, value))
            self.pc = inst.pc + 1
            return None, address
        if kind is OpKind.STORE:
            address = effective_address(self.regs.read(inst.base), inst.imm)
            value = self.regs.read(inst.srcs[0])
            if self.fault_checks:
                self.memory.write(address, value)
            else:
                self.memory.poke(address, value)
            self.pc = inst.pc + 1
            return None, address
        # ALU / immediate
        operands = [self.regs.read(reg) for reg in inst.srcs]
        raw = evaluate(opcode, operands, inst.imm)
        self.regs.write(inst.dest, coerce_for_bank(inst.dest, raw))
        self.pc = inst.pc + 1
        return None, None


def reference_state(
    program: Program,
    memory: Optional[Memory] = None,
    max_instructions: int = 10_000_000,
) -> FunctionalExecutor:
    """Run ``program`` to completion on a copy of ``memory``.

    Returns the finished executor (registers, memory, trace).  The input
    memory is never mutated.
    """
    executor = FunctionalExecutor(
        program, memory.copy() if memory is not None else Memory()
    )
    executor.run(max_instructions)
    return executor


def prefix_state(
    program: Program,
    count: int,
    memory: Optional[Memory] = None,
) -> FunctionalExecutor:
    """Architectural state after exactly ``count`` dynamic instructions."""
    executor = FunctionalExecutor(
        program, memory.copy() if memory is not None else Memory()
    )
    executor.run_prefix(count)
    return executor
