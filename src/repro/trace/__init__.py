"""Functional execution and dynamic traces (the golden model)."""

from .iss import (
    ExecutionLimitExceeded,
    FunctionalExecutor,
    prefix_state,
    reference_state,
)
from .serialize import (
    TraceFormatError,
    dump_trace,
    load_trace,
    read_trace,
    save_trace,
)
from .trace import Trace, TraceEntry

__all__ = [
    "ExecutionLimitExceeded",
    "FunctionalExecutor",
    "Trace",
    "TraceEntry",
    "TraceFormatError",
    "dump_trace",
    "load_trace",
    "prefix_state",
    "read_trace",
    "reference_state",
    "save_trace",
]
