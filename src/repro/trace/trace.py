"""Dynamic instruction traces.

The paper's methodology (section 2.1) feeds CRAY-1 instruction traces to
each timing simulator.  Our timing engines are execution-driven instead
(so architectural equivalence can be tested), but the functional executor
still emits a :class:`Trace` per run; the analysis layer uses it for
instruction-mix tables, and tests use it to validate retirement order.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import FUClass


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction."""

    seq: int                      # dynamic sequence number (program order)
    pc: int                       # static instruction index
    inst: Instruction
    taken: Optional[bool] = None  # branch outcome, if a branch
    address: Optional[int] = None  # effective address, if a memory op

    def format(self) -> str:
        parts = [f"{self.seq:6d}", f"{self.pc:5d}", str(self.inst)]
        if self.taken is not None:
            parts.append("taken" if self.taken else "not-taken")
        if self.address is not None:
            parts.append(f"@{self.address}")
        return "  ".join(parts)


class Trace:
    """A sequence of :class:`TraceEntry` with summary statistics."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.entries: List[TraceEntry] = []

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    # -- summaries -----------------------------------------------------

    def fu_mix(self) -> Counter:
        """Dynamic instruction count per functional-unit class."""
        mix: Counter = Counter()
        for entry in self.entries:
            mix[entry.inst.fu] += 1
        return mix

    def branch_count(self) -> int:
        return sum(1 for entry in self.entries if entry.taken is not None)

    def taken_count(self) -> int:
        return sum(1 for entry in self.entries if entry.taken)

    def memory_count(self) -> int:
        return sum(1 for entry in self.entries if entry.inst.is_memory)

    def mix_report(self) -> str:
        """Human-readable dynamic instruction mix."""
        total = len(self.entries)
        lines = [f"{self.name}: {total} dynamic instructions"]
        for fu, count in sorted(
            self.fu_mix().items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {fu.value:>16s}: {count:6d} ({count / total:5.1%})")
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------

    def dump(self) -> str:
        """Serialize to one line per entry (for inspection / diffing)."""
        return "\n".join(entry.format() for entry in self.entries)
