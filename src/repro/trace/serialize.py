"""Trace serialization: save/load dynamic traces as text.

The paper's toolchain stored CRAY-1 traces on disk between the trace
generator and the timing simulators; this module provides the same
workflow for the model ISA.  The format is line-oriented and
self-describing::

    # repro-trace v1 program=<name> count=<n>
    <seq> <pc> [T|N|-] [@address|-]

Instruction *text* is not stored -- a trace is only meaningful against
its program, which the loader takes as an argument (and validates
against: every pc must exist and control-flow records must match the
static instruction kinds).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..isa.program import Program
from .trace import Trace, TraceEntry

_HEADER_PREFIX = "# repro-trace v1"


class TraceFormatError(ValueError):
    """Malformed trace text."""


def dump_trace(trace: Trace, program_name: str = "") -> str:
    """Serialize a trace to text."""
    name = program_name or trace.name
    lines = [f"{_HEADER_PREFIX} program={name} count={len(trace)}"]
    for entry in trace:
        taken = "-" if entry.taken is None else ("T" if entry.taken else "N")
        address = "-" if entry.address is None else f"@{entry.address}"
        lines.append(f"{entry.seq} {entry.pc} {taken} {address}")
    return "\n".join(lines) + "\n"


def load_trace(text: str, program: Program) -> Trace:
    """Parse trace text back into a :class:`Trace` bound to ``program``."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise TraceFormatError("missing trace header")
    header = lines[0]
    declared: Optional[int] = None
    for token in header.split():
        if token.startswith("count="):
            declared = int(token.split("=", 1)[1])
    trace = Trace(program.name)
    for line_no, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(f"line {line_no}: expected 4 fields")
        seq, pc = int(parts[0]), int(parts[1])
        if not 0 <= pc < len(program):
            raise TraceFormatError(f"line {line_no}: pc {pc} out of range")
        inst = program[pc]
        taken: Optional[bool]
        if parts[2] == "-":
            taken = None
        elif parts[2] in ("T", "N"):
            taken = parts[2] == "T"
            if not inst.is_control_flow:
                raise TraceFormatError(
                    f"line {line_no}: branch outcome on non-branch pc {pc}"
                )
        else:
            raise TraceFormatError(f"line {line_no}: bad taken flag")
        address: Optional[int]
        if parts[3] == "-":
            address = None
        else:
            if not parts[3].startswith("@"):
                raise TraceFormatError(f"line {line_no}: bad address field")
            address = int(parts[3][1:])
            if not inst.is_memory:
                raise TraceFormatError(
                    f"line {line_no}: address on non-memory pc {pc}"
                )
        trace.append(TraceEntry(seq=seq, pc=pc, inst=inst,
                                taken=taken, address=address))
    if declared is not None and declared != len(trace):
        raise TraceFormatError(
            f"header declares {declared} entries, found {len(trace)}"
        )
    return trace


def save_trace(trace: Trace, path: str, program_name: str = "") -> None:
    """Write a trace to a file."""
    with open(path, "w") as handle:
        handle.write(dump_trace(trace, program_name))


def read_trace(path: str, program: Program) -> Trace:
    """Read a trace file back against its program."""
    with open(path) as handle:
        return load_trace(handle.read(), program)
