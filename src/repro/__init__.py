"""repro -- a reproduction of Sohi's Register Update Unit (RUU).

The paper: G. S. Sohi, "Instruction Issue Logic for High-Performance,
Interruptible, Multiple Functional Unit, Pipelined Computers",
UW-Madison CS TR #704, July 1987 (ISCA 1987 with S. Vajapeyam).

The package provides a CRAY-1-flavoured scalar ISA, a golden functional
executor, and seven execution-driven timing engines that differ only in
issue logic:

======================== ===============================================
``SimpleEngine``         in-order blocking issue (Table 1 baseline)
``TomasuloEngine``       per-register tags, distributed stations (§3.1)
``TagUnitEngine``        consolidated tag pool (§3.2.1)
``RSPoolEngine``         merged reservation-station pool (§3.2.2)
``RSTUEngine``           merged stations+tags, Tables 2-3 (§3.2.3)
``RUUEngine``            the contribution: queue-managed RSTU with
                         in-order commit and NI/LI counter tags, three
                         bypass modes, Tables 4-6 (§5, §6)
``SpeculativeRUUEngine`` §7: branch prediction + conditional execution
======================== ===============================================

plus the Smith & Pleszkun precise-interrupt substrates (reorder buffer,
reorder buffer with bypass, history buffer, future file) for the §4
context, the 14 Livermore-loop workloads, and an analysis harness that
regenerates every table in the paper's evaluation.

Quickstart::

    from repro import assemble, RUUEngine, MachineConfig

    program = assemble('''
            A_IMM A0, 5
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
    ''')
    result = RUUEngine(program, MachineConfig(window_size=10)).run()
    print(result.describe())
"""

from .analysis import (
    ENGINE_FACTORIES,
    ParallelRunner,
    SimPoint,
    format_sweep_table,
    format_table1,
    run_suite,
    run_workload,
    sweep_sizes,
)
from .core import (
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
    TwoBitPredictor,
    check_precision,
    demonstrate_restartability,
    run_with_page_fault,
    run_with_recovery,
)
from .interrupts import (
    FutureFileEngine,
    HistoryBufferEngine,
    ReorderBufferBypassEngine,
    ReorderBufferEngine,
)
from .isa import (
    A,
    B,
    Instruction,
    Opcode,
    Program,
    ProgramBuilder,
    RegBank,
    Register,
    RegisterFile,
    S,
    T,
    assemble,
    build_program,
)
from .issue import (
    DispatchStackEngine,
    RSPoolEngine,
    RSTUEngine,
    SimpleEngine,
    TagUnitEngine,
    TomasuloEngine,
)
from .machine import (
    CRAY1_LIKE,
    Engine,
    InterruptRecord,
    MachineConfig,
    Memory,
    SimResult,
    aggregate,
    speedup,
)
from .lint import LintReport, lint_program, static_critical_path
from .trace import FunctionalExecutor, prefix_state, reference_state
from .workloads import Workload, all_loops

__version__ = "1.0.0"

__all__ = [
    "A",
    "B",
    "BypassMode",
    "CRAY1_LIKE",
    "DispatchStackEngine",
    "ENGINE_FACTORIES",
    "Engine",
    "FunctionalExecutor",
    "FutureFileEngine",
    "HistoryBufferEngine",
    "Instruction",
    "InterruptRecord",
    "LintReport",
    "MachineConfig",
    "Memory",
    "Opcode",
    "ParallelRunner",
    "Program",
    "ProgramBuilder",
    "RSPoolEngine",
    "RSTUEngine",
    "RUUEngine",
    "RegBank",
    "Register",
    "RegisterFile",
    "ReorderBufferBypassEngine",
    "ReorderBufferEngine",
    "S",
    "SimPoint",
    "SimResult",
    "SimpleEngine",
    "SpeculativeRUUEngine",
    "StaticBTFNPredictor",
    "T",
    "TagUnitEngine",
    "TomasuloEngine",
    "TwoBitPredictor",
    "Workload",
    "aggregate",
    "all_loops",
    "assemble",
    "build_program",
    "check_precision",
    "demonstrate_restartability",
    "format_sweep_table",
    "format_table1",
    "lint_program",
    "prefix_state",
    "reference_state",
    "run_suite",
    "run_with_page_fault",
    "run_with_recovery",
    "run_workload",
    "speedup",
    "static_critical_path",
    "sweep_sizes",
]
