"""Top-down cycle accounting: where did every cycle go?

The paper's comparisons are cycle-level ("the RUU costs N cycles over
Tomasulo on loop 7"), but ``SimResult.stalls`` only counts *events*.
This module turns a :class:`~repro.obs.events.TraceRecorder` run into a
:class:`CycleAttribution`: a partition of **every** simulated cycle into
exactly one bucket --

* ``committed``  -- at least one instruction architecturally retired;
* ``issued``     -- no retirement, but an instruction left decode;
* one bucket per :class:`~repro.machine.stats.StallReason` -- the first
  stall recorded in a cycle with no forward progress;
* ``interrupt``  -- the cycle that took a machine interrupt;
* ``drain``      -- nothing left to fetch and decode empty (pipeline
  emptying at the end of the program);
* ``unaccounted`` -- a cycle the recorder could not explain.  The
  invariant sweep asserts this bucket is **zero** for every engine on
  every bundled loop, which is what makes attribution a correctness
  oracle rather than a best-effort report.

Construction *asserts* that the buckets sum to ``SimResult.cycles`` --
a recorder attached late (or detached early) cannot silently produce a
plausible-looking partial accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..machine.stats import SimResult, StallReason
from .events import COMMITTED, DRAIN, INTERRUPT, ISSUED, TraceRecorder, \
    UNACCOUNTED

#: Canonical bucket order for reports: progress first, then each stall
#: cause, then the terminal states.
BUCKET_ORDER: Tuple[str, ...] = (
    COMMITTED,
    ISSUED,
    StallReason.SOURCE_BUSY,
    StallReason.DEST_BUSY,
    StallReason.FU_BUSY,
    StallReason.RESULT_BUS,
    StallReason.WINDOW_FULL,
    StallReason.NO_TAG,
    StallReason.NO_LOAD_REGISTER,
    StallReason.INSTANCE_LIMIT,
    StallReason.BRANCH_WAIT,
    StallReason.BRANCH_DEAD,
    StallReason.FETCH_MISS,
    StallReason.FETCH_DONE,
    INTERRUPT,
    DRAIN,
    UNACCOUNTED,
)


class AttributionError(AssertionError):
    """The recorder's accounting does not cover the run."""


@dataclass
class CycleAttribution:
    """A complete partition of one run's cycles."""

    engine: str
    workload: str
    cycles: int
    instructions: int
    buckets: Dict[str, int] = field(default_factory=dict)
    #: Raw stall-event counts (events, not cycles; reconciles with
    #: ``SimResult.stalls``).
    stall_events: Dict[str, int] = field(default_factory=dict)

    @property
    def progress_cycles(self) -> int:
        return self.buckets.get(COMMITTED, 0) + self.buckets.get(ISSUED, 0)

    @property
    def utilization(self) -> float:
        """Fraction of cycles with forward progress."""
        if not self.cycles:
            return 0.0
        return self.progress_cycles / self.cycles

    @property
    def unaccounted(self) -> int:
        return self.buckets.get(UNACCOUNTED, 0)

    def ordered(self) -> List[Tuple[str, int]]:
        """(bucket, cycles) in canonical order, non-zero buckets only."""
        out = [
            (bucket, self.buckets[bucket])
            for bucket in BUCKET_ORDER
            if self.buckets.get(bucket)
        ]
        known = set(BUCKET_ORDER)
        out.extend(
            (bucket, count)
            for bucket, count in sorted(self.buckets.items())
            if bucket not in known and count
        )
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "utilization": round(self.utilization, 6),
            "buckets": dict(self.ordered()),
            "stall_events": dict(sorted(self.stall_events.items())),
        }

    def describe(self) -> str:
        lines = [
            f"cycle attribution: {self.engine} on {self.workload} "
            f"({self.instructions} instructions / {self.cycles} cycles, "
            f"utilization {self.utilization:.1%})"
        ]
        total = self.cycles or 1
        for bucket, count in self.ordered():
            bar = "#" * max(1, round(40 * count / total))
            lines.append(
                f"  {bucket:>16s} {count:8d} {count / total:6.1%} {bar}"
            )
        return "\n".join(lines)


def attribute_cycles(result: SimResult,
                     recorder: TraceRecorder) -> CycleAttribution:
    """Fold a recorded run into a :class:`CycleAttribution`.

    Raises :class:`AttributionError` unless the recorder saw *every*
    cycle of the run (attached before ``run()``) and its stall events
    reconcile exactly with ``result.stalls``.
    """
    total = sum(recorder.buckets.values())
    if total != result.cycles or recorder.cycles_seen != result.cycles:
        raise AttributionError(
            f"{result.engine} on {result.workload}: recorder classified "
            f"{total} cycles (saw {recorder.cycles_seen}) but the run "
            f"took {result.cycles}; was the recorder attached before "
            f"run()?"
        )
    if dict(recorder.stall_counts) != dict(result.stalls):
        raise AttributionError(
            f"{result.engine} on {result.workload}: recorded stall "
            f"events {dict(recorder.stall_counts)} do not reconcile "
            f"with SimResult.stalls {dict(result.stalls)}"
        )
    return CycleAttribution(
        engine=result.engine,
        workload=result.workload,
        cycles=result.cycles,
        instructions=result.instructions,
        buckets=dict(recorder.buckets),
        stall_events=dict(recorder.stall_counts),
    )


def attribution_delta(a: CycleAttribution,
                      b: CycleAttribution) -> Dict[str, Tuple[int, int]]:
    """Per-bucket (cycles_a, cycles_b) for every bucket either run hit."""
    keys = set(a.buckets) | set(b.buckets)
    ordered = [k for k in BUCKET_ORDER if k in keys]
    ordered += sorted(keys - set(BUCKET_ORDER))
    return {
        key: (a.buckets.get(key, 0), b.buckets.get(key, 0))
        for key in ordered
    }
