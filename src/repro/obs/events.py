"""Structured per-cycle event recording for any engine in the zoo.

A :class:`TraceRecorder` is attached exactly like a
:class:`~repro.machine.timeline.Timeline`::

    engine = RUUEngine(program, config)
    engine.recorder = TraceRecorder()
    result = engine.run()

With no recorder attached (the default) the engine pays one attribute
test per event -- the bench suite gates on that path staying flat.

The recorder listens to the four hook streams every engine already
emits -- stage transitions (``Engine.note``), stall causes
(``Engine.stall``), architectural retirement (``_note_retired``) and
decode metadata -- plus one end-of-tick callback per cycle
(``on_cycle``).  The per-cycle callback is what makes *full-cycle*
accounting possible: it folds the cycle's events into exactly one
attribution bucket (see :mod:`repro.obs.attribution`) and, in detail
mode, samples structure occupancy duck-typed over the whole engine zoo
the way :mod:`repro.machine.diagnostics` does.

Two modes:

* ``detail=True`` (default): keeps per-instruction stage maps,
  instruction metadata, the per-cycle bucket tape and occupancy samples
  -- everything :mod:`repro.obs.chrome` and :mod:`repro.obs.diff` need.
  Memory is O(cycles).
* ``detail=False``: streaming counters only (bucket totals + stall
  totals), O(1) memory -- what the serve workers attach for
  ``"trace": true`` requests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..isa.opcodes import FUClass

#: Synthetic bucket names (everything else is a ``StallReason`` key).
COMMITTED = "committed"
ISSUED = "issued"
INTERRUPT = "interrupt"
DRAIN = "drain"
UNACCOUNTED = "unaccounted"


def structure_occupancy(engine) -> Dict[str, int]:
    """How full is each instruction-holding structure right now?

    Duck-typed over the zoo exactly like ``diagnostics._collect_waiting``:
    ``window`` (RUU), ``stack`` (dispatch stack), ``_pool`` (RS pool),
    ``buffer`` (in-order precise engines), ``_stations`` (Tomasulo
    family dict) and ``_pending_branches`` (speculative RUU).
    """
    occupancy: Dict[str, int] = {}
    for attr, label in (
        ("window", "window"),
        ("stack", "stack"),
        ("_pool", "pool"),
        ("buffer", "buffer"),
        ("_pending_branches", "pending_branches"),
    ):
        holder = getattr(engine, attr, None)
        if holder is not None:
            occupancy[label] = len(holder)
    stations = getattr(engine, "_stations", None)
    if isinstance(stations, dict):
        occupancy["stations"] = sum(
            len(entries) for entries in stations.values()
        )
    return occupancy


class TraceRecorder:
    """Typed per-cycle event capture with streaming cycle attribution."""

    def __init__(self, detail: bool = True, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.detail = detail
        self.sample_every = sample_every

        # -- streaming accounting (both modes) -------------------------
        #: Attribution bucket -> cycles spent there.  Every simulated
        #: cycle lands in exactly one bucket.
        self.buckets: Counter = Counter()
        #: Stall-event counts; mirrors ``SimResult.stalls`` exactly.
        self.stall_counts: Counter = Counter()
        #: Cycles this recorder classified (== engine cycles when the
        #: recorder was attached before the first ``run()``).
        self.cycles_seen = 0
        self.start_cycle: Optional[int] = None

        # -- finalized by on_run_end -----------------------------------
        self.engine_name: Optional[str] = None
        self.workload: Optional[str] = None
        self.final_cycles: Optional[int] = None
        self.instructions: Optional[int] = None
        self.interrupted = False
        #: Final architectural retirement order (post misprediction /
        #: interrupt rollback) -- the commit stream diffs compare.
        self.commit_order: List[int] = []

        # -- detail mode -----------------------------------------------
        #: seq -> {stage: first cycle}; same shape as Timeline events.
        self.stages: Dict[int, Dict[str, int]] = {}
        #: seq -> (pc, fu name or None, disassembly text).
        self.insts: Dict[int, Tuple[int, Optional[str], str]] = {}
        #: seq -> cycle of the *last* retirement (re-execution wins).
        self.retire_cycles: Dict[int, int] = {}
        #: One bucket name per classified cycle, in cycle order.
        self.cycle_buckets: List[str] = []
        #: (cycle, occupancy dict, result-bus reservations, in-flight).
        self.samples: List[Tuple[int, Dict[str, int], int, int]] = []

        # -- current-cycle scratch -------------------------------------
        self._cycle_retired = False
        self._cycle_issued = False
        self._cycle_stall: Optional[str] = None

    # ------------------------------------------------------------------
    # engine hooks (hot path -- keep them tiny)
    # ------------------------------------------------------------------

    def on_stage(self, seq: int, stage: str, cycle: int) -> None:
        if stage == "issue":
            self._cycle_issued = True
        if self.detail:
            self.stages.setdefault(seq, {}).setdefault(stage, cycle)

    def on_stall(self, reason: str, cycle: int) -> None:
        self.stall_counts[reason] += 1
        if self._cycle_stall is None:
            self._cycle_stall = reason

    def on_retire(self, seq: int, cycle: int) -> None:
        self._cycle_retired = True
        if self.detail:
            self.retire_cycles[seq] = cycle

    def on_inst(self, seq: int, inst) -> None:
        if self.detail:
            # Control flow and NOPs never enter the machine's window
            # (they retire in decode); record no functional unit.
            fu = None if inst.is_control_flow \
                or inst.fu is FUClass.CONTROL else inst.fu.value
            self.insts[seq] = (inst.pc, fu, str(inst))

    def on_cycle(self, engine) -> None:
        """End-of-tick: attribute the cycle just simulated.

        Priority: architectural progress (committed) beats issue beats
        the first stall recorded in the cycle; a cycle with none of
        those is either the one that took an interrupt, a drain cycle
        (nothing left to fetch, decode empty, window emptying), or --
        the invariant the test-suite enforces never happens --
        unaccounted.
        """
        if self.start_cycle is None:
            self.start_cycle = engine.cycle
        if self._cycle_retired:
            bucket = COMMITTED
        elif self._cycle_issued:
            bucket = ISSUED
        elif self._cycle_stall is not None:
            bucket = self._cycle_stall
        elif engine.interrupt_record is not None:
            bucket = INTERRUPT
        elif engine.fetch_done and engine.decode_slot is None:
            bucket = DRAIN
        else:
            bucket = UNACCOUNTED
        self.buckets[bucket] += 1
        self.cycles_seen += 1
        self._cycle_retired = False
        self._cycle_issued = False
        self._cycle_stall = None
        if not self.detail:
            return
        self.cycle_buckets.append(bucket)
        if engine.cycle % self.sample_every == 0:
            self.samples.append((
                engine.cycle,
                structure_occupancy(engine),
                len(engine.result_bus.reserved_cycles()),
                engine.next_seq - engine.retired,
            ))

    def on_run_end(self, engine) -> None:
        """Snapshot the run's final architectural facts (called by
        ``Engine.run()``; a resumed run overwrites with the new state).
        """
        self.engine_name = engine.name
        self.workload = engine.program.name
        self.final_cycles = engine.cycle
        self.instructions = engine.retired
        self.interrupted = engine.interrupt_record is not None
        self.commit_order = list(engine.retire_log)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def lifetime(self, seq: int) -> Optional[Tuple[int, int]]:
        """(first-stage cycle, retire-or-last-stage cycle) for ``seq``."""
        stages = self.stages.get(seq)
        if not stages:
            return None
        first = min(stages.values())
        last = self.retire_cycles.get(seq, max(stages.values()))
        return first, max(first, last)

    def describe(self) -> str:
        total = sum(self.buckets.values()) or 1
        lines = [
            f"trace: {self.engine_name or '?'} on "
            f"{self.workload or '?'} -- {self.cycles_seen} cycles, "
            f"{len(self.commit_order)} retired"
        ]
        for bucket, count in self.buckets.most_common():
            lines.append(
                f"  {bucket:>16s}: {count:8d}  ({count / total:6.1%})"
            )
        return "\n".join(lines)
