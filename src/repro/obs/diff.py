"""Differential trace debugging: where do two runs first disagree?

When two engines produce different cycle counts (or, worse, different
architectural behaviour) the aggregate counters say *that* they differ
but not *where*.  This module compares two detail-mode recordings of
the **same program**:

* **commit-stream divergence** -- the first position at which the final
  architectural retirement orders differ (for an out-of-order engine
  vs an in-order one this is usually the first reordered completion);
* **per-instruction stage-latency deltas** -- for every dynamic
  instruction both runs retired, the difference in lifetime
  (first stage to retirement) plus per-stage cycle deltas;
* **per-bucket attribution deltas** -- which cycle-accounting buckets
  grew or shrank between the runs.

A run can also be compared against the golden functional ISS
(:func:`diff_against_iss`): the ISS has no clock, so only the commit
stream (the architectural pc sequence) is compared.

``diff_stage_events`` works on plain ``{seq: {stage: cycle}}`` maps, so
a :class:`~repro.machine.timeline.Timeline` round-tripped through
``to_json``/``from_json`` diffs exactly like a live recorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.opcodes import Opcode
from .attribution import attribute_cycles, attribution_delta
from .events import TraceRecorder

StageEvents = Dict[int, Dict[str, int]]


@dataclass
class StageDelta:
    """One instruction's lifetime in both runs."""

    seq: int
    text: str
    lifetime_a: int
    lifetime_b: int
    #: stage -> (cycle_a, cycle_b) for stages present in both runs.
    stages: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def delta(self) -> int:
        return self.lifetime_b - self.lifetime_a


@dataclass
class CommitDivergence:
    """First position where the retirement streams disagree."""

    index: int
    seq_a: Optional[int]
    seq_b: Optional[int]
    text_a: str
    text_b: str


@dataclass
class TraceDiff:
    """Structured comparison of two recordings of one program."""

    engine_a: str
    engine_b: str
    workload: str
    cycles_a: int
    cycles_b: int
    instructions_a: int
    instructions_b: int
    commit_divergence: Optional[CommitDivergence]
    #: bucket -> (cycles_a, cycles_b), canonical order.
    bucket_deltas: Dict[str, Tuple[int, int]]
    #: Largest per-instruction lifetime deltas, |delta| descending.
    top_deltas: List[StageDelta]
    compared_instructions: int

    @property
    def identical(self) -> bool:
        """Same commit stream, same cycle count, same accounting."""
        return (
            self.commit_divergence is None
            and self.cycles_a == self.cycles_b
            and all(a == b for a, b in self.bucket_deltas.values())
            and all(d.delta == 0 for d in self.top_deltas)
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "engine_a": self.engine_a,
            "engine_b": self.engine_b,
            "workload": self.workload,
            "cycles": [self.cycles_a, self.cycles_b],
            "instructions": [self.instructions_a, self.instructions_b],
            "identical": self.identical,
            "commit_divergence": None if self.commit_divergence is None
            else {
                "index": self.commit_divergence.index,
                "seq_a": self.commit_divergence.seq_a,
                "seq_b": self.commit_divergence.seq_b,
                "text_a": self.commit_divergence.text_a,
                "text_b": self.commit_divergence.text_b,
            },
            "bucket_deltas": {
                bucket: list(pair)
                for bucket, pair in self.bucket_deltas.items()
            },
            "top_deltas": [
                {
                    "seq": delta.seq,
                    "text": delta.text,
                    "lifetime": [delta.lifetime_a, delta.lifetime_b],
                    "delta": delta.delta,
                }
                for delta in self.top_deltas
            ],
            "compared_instructions": self.compared_instructions,
        }

    def describe(self) -> str:
        lines = [
            f"trace diff: {self.engine_a} vs {self.engine_b} "
            f"on {self.workload}",
            f"  cycles       : {self.cycles_a} vs {self.cycles_b} "
            f"({self.cycles_b - self.cycles_a:+d})",
            f"  instructions : {self.instructions_a} vs "
            f"{self.instructions_b}",
        ]
        if self.commit_divergence is None:
            lines.append("  commit stream: identical")
        else:
            div = self.commit_divergence
            lines.append(
                f"  commit stream: diverges at retirement "
                f"#{div.index}: {self.engine_a} retired "
                f"[{div.text_a}], {self.engine_b} retired [{div.text_b}]"
            )
        changed = [
            (bucket, a, b)
            for bucket, (a, b) in self.bucket_deltas.items() if a != b
        ]
        if changed:
            lines.append("  attribution deltas (cycles):")
            for bucket, a, b in changed:
                lines.append(
                    f"    {bucket:>16s}: {a:8d} -> {b:8d} ({b - a:+d})"
                )
        else:
            lines.append("  attribution  : identical")
        slow = [d for d in self.top_deltas if d.delta]
        if slow:
            lines.append("  largest per-instruction lifetime deltas:")
            for delta in slow:
                lines.append(
                    f"    #{delta.seq:<5d} {delta.text:<28s} "
                    f"{delta.lifetime_a:4d} -> {delta.lifetime_b:4d} "
                    f"cycles ({delta.delta:+d})"
                )
        if self.identical:
            lines.append("  verdict      : no divergence")
        return "\n".join(lines)


def diff_stage_events(events_a: StageEvents, events_b: StageEvents,
                      texts: Optional[Dict[int, str]] = None,
                      top: int = 10) -> List[StageDelta]:
    """Per-instruction deltas over two ``{seq: {stage: cycle}}`` maps.

    Only sequences present in both maps are compared; lifetime is the
    span from the earliest to the latest recorded stage.  Returns the
    ``top`` largest absolute deltas (ties broken by seq for stability).
    """
    texts = texts or {}
    deltas: List[StageDelta] = []
    for seq in sorted(set(events_a) & set(events_b)):
        stages_a, stages_b = events_a[seq], events_b[seq]
        if not stages_a or not stages_b:
            continue
        life_a = max(stages_a.values()) - min(stages_a.values())
        life_b = max(stages_b.values()) - min(stages_b.values())
        deltas.append(StageDelta(
            seq=seq,
            text=texts.get(seq, f"seq {seq}"),
            lifetime_a=life_a,
            lifetime_b=life_b,
            stages={
                stage: (stages_a[stage], stages_b[stage])
                for stage in sorted(set(stages_a) & set(stages_b))
            },
        ))
    deltas.sort(key=lambda d: (-abs(d.delta), d.seq))
    return deltas[:top]


def _first_divergence(order_a: List[int], order_b: List[int],
                      texts_a: Dict[int, str],
                      texts_b: Dict[int, str]
                      ) -> Optional[CommitDivergence]:
    for index, (seq_a, seq_b) in enumerate(zip(order_a, order_b)):
        if seq_a != seq_b:
            return CommitDivergence(
                index=index, seq_a=seq_a, seq_b=seq_b,
                text_a=texts_a.get(seq_a, f"seq {seq_a}"),
                text_b=texts_b.get(seq_b, f"seq {seq_b}"),
            )
    if len(order_a) != len(order_b):
        index = min(len(order_a), len(order_b))
        seq_a = order_a[index] if index < len(order_a) else None
        seq_b = order_b[index] if index < len(order_b) else None
        return CommitDivergence(
            index=index, seq_a=seq_a, seq_b=seq_b,
            text_a="(stream ended)" if seq_a is None
            else texts_a.get(seq_a, f"seq {seq_a}"),
            text_b="(stream ended)" if seq_b is None
            else texts_b.get(seq_b, f"seq {seq_b}"),
        )
    return None


def _texts(recorder: TraceRecorder) -> Dict[int, str]:
    return {seq: text for seq, (_, _, text) in recorder.insts.items()}


def diff_recorders(recorder_a: TraceRecorder, recorder_b: TraceRecorder,
                   result_a=None, result_b=None,
                   top: int = 10) -> TraceDiff:
    """Compare two finished detail-mode recordings of one program.

    ``result_a``/``result_b`` enable the attribution reconciliation
    checks; without them the recorders' own bucket counters are used.
    """
    if recorder_a.workload != recorder_b.workload:
        raise ValueError(
            f"diff across different workloads: {recorder_a.workload!r} "
            f"vs {recorder_b.workload!r}"
        )
    if result_a is not None and result_b is not None:
        buckets = attribution_delta(
            attribute_cycles(result_a, recorder_a),
            attribute_cycles(result_b, recorder_b),
        )
    else:
        keys = set(recorder_a.buckets) | set(recorder_b.buckets)
        buckets = {
            key: (recorder_a.buckets.get(key, 0),
                  recorder_b.buckets.get(key, 0))
            for key in sorted(keys)
        }
    texts_a, texts_b = _texts(recorder_a), _texts(recorder_b)
    return TraceDiff(
        engine_a=recorder_a.engine_name or "a",
        engine_b=recorder_b.engine_name or "b",
        workload=recorder_a.workload or "?",
        cycles_a=recorder_a.final_cycles or recorder_a.cycles_seen,
        cycles_b=recorder_b.final_cycles or recorder_b.cycles_seen,
        instructions_a=len(recorder_a.commit_order),
        instructions_b=len(recorder_b.commit_order),
        commit_divergence=_first_divergence(
            recorder_a.commit_order, recorder_b.commit_order,
            texts_a, texts_b,
        ),
        bucket_deltas=buckets,
        top_deltas=diff_stage_events(
            recorder_a.stages, recorder_b.stages, texts=texts_a, top=top
        ),
        compared_instructions=len(
            set(recorder_a.stages) & set(recorder_b.stages)
        ),
    )


def diff_against_iss(recorder: TraceRecorder, trace) -> Optional[
        CommitDivergence]:
    """Compare a recording's commit stream against a golden-ISS trace.

    The functional executor has no clock, so this checks architectural
    order only, and only for instructions that enter the machine's
    window -- branches and NOPs retire in the decode stage on *every*
    engine, ahead of older windowed instructions, so they are filtered
    from both streams.  In-order-commit engines must then match the
    ISS position-by-position; an imprecise engine's first out-of-order
    retirement is exactly the divergence this reports.
    """
    texts = _texts(recorder)
    order = [
        seq for seq in recorder.commit_order
        if recorder.insts.get(seq, (0, None, ""))[1] is not None
    ]
    iss_entries = [
        entry for entry in trace.entries
        if not entry.inst.is_control_flow
        and entry.inst.opcode is not Opcode.NOP
    ]
    iss_order = [entry.seq for entry in iss_entries]
    iss_texts = {entry.seq: str(entry.inst) for entry in iss_entries}
    return _first_divergence(order, iss_order, texts, iss_texts)
