"""repro.obs -- per-cycle observability for the engine zoo.

Four layers, each usable on its own:

* :mod:`repro.obs.events` -- :class:`TraceRecorder`, the per-cycle
  structured event capture engines feed when one is attached;
* :mod:`repro.obs.attribution` -- full-cycle accounting (every cycle in
  exactly one bucket, asserted against ``SimResult.cycles``);
* :mod:`repro.obs.chrome` -- Chrome trace-event JSON export for
  Perfetto / chrome://tracing, plus the matching schema validator;
* :mod:`repro.obs.diff` -- cross-engine (or engine-vs-golden-ISS)
  trace comparison for differential debugging.

CLI entry points: ``repro trace`` and ``repro diff``; the simulation
service accepts ``"trace": true`` on ``POST /run``.
"""

from .attribution import (
    BUCKET_ORDER,
    AttributionError,
    CycleAttribution,
    attribute_cycles,
    attribution_delta,
)
from .chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from .diff import (
    CommitDivergence,
    StageDelta,
    TraceDiff,
    diff_against_iss,
    diff_recorders,
    diff_stage_events,
)
from .events import TraceRecorder, structure_occupancy

__all__ = [
    "BUCKET_ORDER",
    "AttributionError",
    "CommitDivergence",
    "CycleAttribution",
    "StageDelta",
    "TraceDiff",
    "TraceRecorder",
    "attribute_cycles",
    "attribution_delta",
    "chrome_trace",
    "diff_against_iss",
    "diff_recorders",
    "diff_stage_events",
    "structure_occupancy",
    "validate_chrome_trace",
    "write_chrome_trace",
]
