"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Converts a detail-mode :class:`~repro.obs.events.TraceRecorder` into
the Trace Event Format's "JSON object" flavour: one process per run,
one thread track per functional unit (``X`` complete events from
dispatch to completion), async ``b``/``e`` slices for whole instruction
lifetimes (decode to retirement -- overlapping lifetimes render as the
window filling up), and ``C`` counter tracks for structure occupancy,
result-bus reservations, in-flight instructions and the cumulative
cycle-attribution buckets.  Timestamps are in "microseconds": one
simulated cycle = 1 us, so Perfetto's ruler reads directly in cycles.

The exporter has a matching :func:`validate_chrome_trace` used by tests
and CI, so the schema the viewer needs is pinned in-repo.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional

from .events import TraceRecorder

#: Phase codes this exporter emits (subset of the Trace Event Format).
_PHASES = {"M", "X", "b", "e", "C"}

#: Thread ids: 0 is the retire track, FUs get stable ids from 1.
_RETIRE_TID = 0


def chrome_trace(recorder: TraceRecorder,
                 counter_every: int = 1) -> Dict[str, object]:
    """Build the trace-event document for one recorded run.

    ``counter_every`` thins the counter tracks (1 = every sample the
    recorder kept); slice events are never thinned.
    """
    if not recorder.detail:
        raise ValueError(
            "chrome export needs a detail-mode TraceRecorder "
            "(TraceRecorder(detail=True))"
        )
    pid = 0
    engine = recorder.engine_name or "engine"
    workload = recorder.workload or "workload"
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"{engine} on {workload}"},
    }]

    # -- thread tracks: one per functional unit seen, plus retire ------
    fu_tids: Dict[str, int] = {}
    for seq in sorted(recorder.insts):
        _, fu, _ = recorder.insts[seq]
        if fu is not None and fu not in fu_tids:
            fu_tids[fu] = len(fu_tids) + 1
    for fu, tid in fu_tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"fu:{fu}"},
        })
    events.append({
        "name": "thread_name", "ph": "M", "pid": pid,
        "tid": _RETIRE_TID, "args": {"name": "retire"},
    })

    # -- per-instruction slices ----------------------------------------
    for seq in sorted(recorder.stages):
        stages = recorder.stages[seq]
        pc, fu, text = recorder.insts.get(seq, (-1, None, f"seq {seq}"))
        name = f"#{seq} {text}"
        args = {"seq": seq, "pc": pc}
        # Execution slice on the FU track (dispatch -> complete).
        if fu is not None and "dispatch" in stages:
            start = stages["dispatch"]
            end = stages.get("complete", start + 1)
            events.append({
                "name": name, "cat": "execute", "ph": "X",
                "pid": pid, "tid": fu_tids[fu],
                "ts": start, "dur": max(1, end - start), "args": args,
            })
        # Whole-lifetime async slice (decode -> retire).
        lifetime = recorder.lifetime(seq)
        if lifetime is not None:
            first, last = lifetime
            events.append({
                "name": name, "cat": "inst", "ph": "b", "id": seq,
                "pid": pid, "tid": _RETIRE_TID, "ts": first,
                "args": args,
            })
            events.append({
                "name": name, "cat": "inst", "ph": "e", "id": seq,
                "pid": pid, "tid": _RETIRE_TID, "ts": max(first + 1, last),
                "args": {},
            })

    # -- counter tracks ------------------------------------------------
    for index, (cycle, occupancy, bus, inflight) in enumerate(
            recorder.samples):
        if index % counter_every:
            continue
        if occupancy:
            events.append({
                "name": "occupancy", "ph": "C", "pid": pid, "tid": 0,
                "ts": cycle, "args": dict(occupancy),
            })
        events.append({
            "name": "in_flight", "ph": "C", "pid": pid, "tid": 0,
            "ts": cycle,
            "args": {"instructions": inflight, "result_bus": bus},
        })

    # Cumulative attribution buckets as one stacked counter track.
    if recorder.cycle_buckets and recorder.start_cycle is not None:
        running: Counter = Counter()
        stride = max(1, counter_every)
        for offset, bucket in enumerate(recorder.cycle_buckets):
            running[bucket] += 1
            if offset % stride == 0 \
                    or offset == len(recorder.cycle_buckets) - 1:
                events.append({
                    "name": "cycle_buckets", "ph": "C", "pid": pid,
                    "tid": 0, "ts": recorder.start_cycle + offset,
                    "args": dict(running),
                })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "engine": engine,
            "workload": workload,
            "cycles": recorder.final_cycles,
            "instructions": recorder.instructions,
            "generator": "repro.obs.chrome",
        },
    }


def write_chrome_trace(path: str, recorder: TraceRecorder,
                       counter_every: int = 1) -> Dict[str, object]:
    """Export ``recorder`` to ``path``; returns the document."""
    document = chrome_trace(recorder, counter_every=counter_every)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return document


def validate_chrome_trace(document: object,
                          cycles: Optional[int] = None) -> List[str]:
    """Schema-check a trace document; returns a list of problems.

    Pins what Perfetto's JSON importer needs: a ``traceEvents`` list
    whose entries carry a known ``ph``, a ``pid``, a name, numeric
    non-negative ``ts`` (except metadata), paired async begin/end ids,
    and -- when ``cycles`` is given -- no timestamp beyond the run.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected object"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        return ["traceEvents must be a non-empty list"]
    open_async: Dict[object, int] = {}
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        elif cycles is not None and ts > cycles:
            problems.append(
                f"{where}: ts {ts} beyond the {cycles}-cycle run"
            )
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"{where}: X event needs positive dur")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: C event needs args")
        if phase == "b":
            key = event.get("id")
            if key is None:
                problems.append(f"{where}: async begin without id")
            elif key in open_async:
                problems.append(f"{where}: async id {key!r} reopened")
            else:
                open_async[key] = index
        if phase == "e":
            key = event.get("id")
            if key not in open_async:
                problems.append(
                    f"{where}: async end without matching begin"
                )
            else:
                del open_async[key]
    for key, index in sorted(open_async.items(), key=lambda kv: kv[1]):
        problems.append(
            f"traceEvents[{index}]: async id {key!r} never closed"
        )
    return problems
