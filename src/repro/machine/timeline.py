"""Per-instruction pipeline timelines (a software pipeline viewer).

Attach a :class:`Timeline` to any engine before running::

    engine = RUUEngine(program, config)
    engine.timeline = Timeline()
    engine.run()
    print(engine.timeline.gantt(engine.program, first=0, last=30))

Engines record one event per stage transition -- ``decode``, ``issue``
(instruction leaves decode into the machine), ``dispatch`` (reservation
station to functional unit), ``complete`` (result on the bus) and
``commit`` (architectural update; only in-order-commit engines emit it).
The viewer renders the classic pipeline diagram and the stage-latency
statistics that make engine behaviour inspectable in tests and
examples (e.g. "how long did instruction 17 wait in the RUU?").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

#: Canonical stage ordering for rendering.
STAGES = ("decode", "issue", "dispatch", "complete", "commit")

_STAGE_GLYPH = {
    "decode": "D",
    "issue": "I",
    "dispatch": "X",
    "complete": "C",
    "commit": "R",
}


class Timeline:
    """Records (dynamic seq, stage) -> cycle events."""

    def __init__(self) -> None:
        self._events: Dict[int, Dict[str, int]] = defaultdict(dict)

    def record(self, seq: int, stage: str, cycle: int) -> None:
        """First occurrence wins (re-execution after a squash gets a
        fresh sequence number, so duplicates indicate replays)."""
        self._events[seq].setdefault(stage, cycle)

    def events_for(self, seq: int) -> Dict[str, int]:
        return dict(self._events.get(seq, {}))

    def sequences(self) -> List[int]:
        return sorted(self._events)

    def to_json(self) -> Dict[str, object]:
        """Machine-readable form (JSON object keys are strings)."""
        return {
            "schema": 1,
            "events": {
                str(seq): dict(stages)
                for seq, stages in sorted(self._events.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Timeline":
        """Rebuild a timeline from :meth:`to_json` output."""
        schema = payload.get("schema")
        if schema != 1:
            raise ValueError(f"unknown timeline schema: {schema!r}")
        timeline = cls()
        for seq, stages in payload.get("events", {}).items():
            for stage, cycle in stages.items():
                timeline.record(int(seq), str(stage), int(cycle))
        return timeline

    def stage_delay(self, seq: int, from_stage: str,
                    to_stage: str) -> Optional[int]:
        """Cycles between two stages of one instruction (None if either
        stage was never reached)."""
        events = self._events.get(seq, {})
        if from_stage not in events or to_stage not in events:
            return None
        return events[to_stage] - events[from_stage]

    def average_delay(self, from_stage: str, to_stage: str) -> float:
        """Mean delay across all instructions that hit both stages."""
        delays = [
            self.stage_delay(seq, from_stage, to_stage)
            for seq in self._events
        ]
        delays = [d for d in delays if d is not None]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    # ------------------------------------------------------------------

    def gantt(self, program=None, first: int = 0, last: int = 24,
              width: int = 72) -> str:
        """Render a pipeline diagram for sequences ``first..last``.

        Columns are cycles (compressed to the window that contains the
        selected instructions); glyphs: D decode, I issue, X dispatch,
        C complete, R commit/retire.
        """
        chosen = [
            seq for seq in self.sequences() if first <= seq <= last
        ]
        if not chosen:
            return "(no events recorded)"
        lo = min(min(self._events[s].values()) for s in chosen)
        hi = max(max(self._events[s].values()) for s in chosen)
        span = hi - lo + 1
        scale = max(1, -(-span // width))  # ceil division
        lines = [
            f"cycles {lo}..{hi}"
            + (f"  (each column = {scale} cycles)" if scale > 1 else "")
        ]
        for seq in chosen:
            row = [" "] * (-(-span // scale))
            for stage, cycle in sorted(
                self._events[seq].items(), key=lambda kv: kv[1]
            ):
                column = (cycle - lo) // scale
                glyph = _STAGE_GLYPH.get(stage, "?")
                if row[column] == " ":
                    row[column] = glyph
                else:
                    row[column] = "*"  # multiple stages in one column
            label = f"#{seq:<5d}"
            lines.append(f"{label} |{''.join(row)}|")
        lines.append(
            "        D=decode I=issue X=dispatch C=complete R=commit"
        )
        return "\n".join(lines)

    def summary(self) -> str:
        """Average stage-to-stage delays across the run."""
        pairs = [
            ("decode", "issue"),
            ("issue", "dispatch"),
            ("dispatch", "complete"),
            ("complete", "commit"),
            ("issue", "commit"),
        ]
        lines = ["average stage delays (cycles):"]
        for a, b in pairs:
            lines.append(f"  {a:>8s} -> {b:<8s}: {self.average_delay(a, b):6.2f}")
        return "\n".join(lines)
