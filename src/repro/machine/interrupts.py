"""Interrupt records produced by the timing engines.

An engine that detects an instruction-generated trap (arithmetic fault or
page fault) stops and attaches an :class:`InterruptRecord` to itself and
to its :class:`~repro.machine.stats.SimResult`.  Whether the recorded
state is *precise* is the property under study: the RUU guarantees it,
the other engines do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..isa.semantics import ArithmeticFault
from .faults import PageFault


@dataclass(frozen=True)
class InterruptRecord:
    """A taken interrupt.

    Attributes:
        cause: the underlying fault exception (ArithmeticFault/PageFault).
        seq: dynamic sequence number (0-based, program order) of the
            faulting instruction.
        pc: program counter of the faulting instruction -- for a precise
            engine this is where execution must restart.
        cycle: clock cycle at which the interrupt was taken.
        claims_precise: True if the engine asserts the visible state is
            exactly the state after the first ``seq`` instructions.  The
            test-suite verifies this claim against the golden model.
    """

    cause: Exception
    seq: int
    pc: int
    cycle: int
    claims_precise: bool

    def describe(self) -> str:
        precision = "precise" if self.claims_precise else "IMPRECISE"
        return (
            f"interrupt at cycle {self.cycle}: {self.cause} "
            f"(dynamic instruction #{self.seq}, pc={self.pc}, {precision})"
        )

    def to_json(self) -> Dict[str, Any]:
        """Lossless JSON form (cause as type name + constructor args)."""
        cause = self.cause
        if isinstance(cause, PageFault):
            cause_json: Dict[str, Any] = {
                "type": "PageFault",
                "args": [cause.address, cause.is_store],
            }
        elif isinstance(cause, ArithmeticFault):
            cause_json = {"type": "ArithmeticFault", "args": [cause.reason]}
        else:  # pragma: no cover - no third fault type exists today
            cause_json = {"type": type(cause).__name__, "args": [str(cause)]}
        return {
            "cause": cause_json,
            "seq": self.seq,
            "pc": self.pc,
            "cycle": self.cycle,
            "claims_precise": self.claims_precise,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "InterruptRecord":
        """Rebuild a record produced by :meth:`to_json`."""
        cause_json = payload["cause"]
        kind = cause_json["type"]
        args = cause_json["args"]
        if kind == "PageFault":
            cause: Exception = PageFault(int(args[0]), bool(args[1]))
        elif kind == "ArithmeticFault":
            cause = ArithmeticFault(str(args[0]))
        else:
            cause = RuntimeError(*args)
        return cls(
            cause=cause,
            seq=int(payload["seq"]),
            pc=int(payload["pc"]),
            cycle=int(payload["cycle"]),
            claims_precise=bool(payload["claims_precise"]),
        )

    def same_event(self, other: "InterruptRecord") -> bool:
        """Field-wise equality (exceptions only compare by identity)."""
        return (
            type(self.cause) is type(other.cause)
            and self.cause.args == other.cause.args
            and self.seq == other.seq
            and self.pc == other.pc
            and self.cycle == other.cycle
            and self.claims_precise == other.claims_precise
        )
