"""Interrupt records produced by the timing engines.

An engine that detects an instruction-generated trap (arithmetic fault or
page fault) stops and attaches an :class:`InterruptRecord` to itself and
to its :class:`~repro.machine.stats.SimResult`.  Whether the recorded
state is *precise* is the property under study: the RUU guarantees it,
the other engines do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class InterruptRecord:
    """A taken interrupt.

    Attributes:
        cause: the underlying fault exception (ArithmeticFault/PageFault).
        seq: dynamic sequence number (0-based, program order) of the
            faulting instruction.
        pc: program counter of the faulting instruction -- for a precise
            engine this is where execution must restart.
        cycle: clock cycle at which the interrupt was taken.
        claims_precise: True if the engine asserts the visible state is
            exactly the state after the first ``seq`` instructions.  The
            test-suite verifies this claim against the golden model.
    """

    cause: Exception
    seq: int
    pc: int
    cycle: int
    claims_precise: bool

    def describe(self) -> str:
        precision = "precise" if self.claims_precise else "IMPRECISE"
        return (
            f"interrupt at cycle {self.cycle}: {self.cause} "
            f"(dynamic instruction #{self.seq}, pc={self.pc}, {precision})"
        )
