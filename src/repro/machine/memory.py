"""Word-addressed data memory with page-fault injection.

The paper assumes no memory bank conflicts and perfect instruction
buffers (section 2.2); what remains is a flat, fixed-latency data memory.
Latency lives in the timing engines (the MEMORY functional-unit time) --
this module only models contents and faults.

Page-fault injection lets tests and examples trigger the paper's central
scenario: a virtual-memory fault arriving while later instructions have
already completed out of order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .faults import PageFault


class Memory:
    """A sparse word-addressed memory of Python values (default 0)."""

    __slots__ = ("_words", "_faulting", "fault_count")

    def __init__(self) -> None:
        self._words: Dict[int, object] = {}
        self._faulting: Set[int] = set()
        self.fault_count = 0

    # -- plain access (no fault checks; used by the golden model after
    #    servicing, and by test setup) ---------------------------------

    def peek(self, address: int):
        """Read without fault checking."""
        return self._words.get(address, 0)

    def poke(self, address: int, value) -> None:
        """Write without fault checking."""
        if value:
            self._words[address] = value
        else:
            self._words.pop(address, None)

    # -- faulting access (used by engines at execute time) --------------

    def read(self, address: int):
        """Read a word, raising :class:`PageFault` on an unmapped page."""
        if address in self._faulting:
            self.fault_count += 1
            raise PageFault(address, is_store=False)
        return self._words.get(address, 0)

    def write(self, address: int, value) -> None:
        """Write a word, raising :class:`PageFault` on an unmapped page."""
        if address in self._faulting:
            self.fault_count += 1
            raise PageFault(address, is_store=True)
        self.poke(address, value)

    def probe(self, address: int, is_store: bool) -> None:
        """Fault-check an address without touching its contents."""
        if address in self._faulting:
            self.fault_count += 1
            raise PageFault(address, is_store=is_store)

    # -- fault injection -------------------------------------------------

    def inject_fault(self, address: int) -> None:
        """Mark ``address`` as unmapped: the next access page-faults."""
        self._faulting.add(address)

    def service_fault(self, address: int) -> None:
        """Map the page containing ``address`` (operating-system action)."""
        self._faulting.discard(address)

    @property
    def faulting_addresses(self) -> Set[int]:
        return set(self._faulting)

    # -- bulk helpers ------------------------------------------------------

    def write_array(self, base: int, values: Sequence) -> None:
        """Store ``values`` at consecutive words starting at ``base``."""
        for offset, value in enumerate(values):
            self.poke(base + offset, value)

    def read_array(self, base: int, count: int) -> List:
        """Fetch ``count`` consecutive words starting at ``base``."""
        return [self.peek(base + offset) for offset in range(count)]

    # -- comparison support ------------------------------------------------

    def copy(self) -> "Memory":
        clone = Memory()
        clone._words = dict(self._words)
        clone._faulting = set(self._faulting)
        return clone

    def nonzero(self) -> Dict[int, object]:
        """All populated words, for equality assertions in tests."""
        return dict(self._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self._words == other._words

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def diff(self, other: "Memory") -> Dict[int, Tuple[object, object]]:
        """Return ``{address: (self, other)}`` for differing words."""
        addresses: Iterable[int] = set(self._words) | set(other._words)
        return {
            addr: (self.peek(addr), other.peek(addr))
            for addr in sorted(addresses)
            if self.peek(addr) != other.peek(addr)
        }
