"""Fault types raised during simulated execution.

Two classes of instruction-generated traps exist in the paper's machine
(section 1): arithmetic exceptions (defined with the ISA semantics as
:class:`repro.isa.semantics.ArithmeticFault`) and page faults from the
virtual-memory system, defined here.  Timing engines never let these
escape: they capture them and deliver them through each engine's
interrupt model (precise for the RUU, imprecise for the others).
"""

from __future__ import annotations

from ..isa.semantics import ArithmeticFault

__all__ = [
    "ArithmeticFault",
    "DeadlockError",
    "PageFault",
    "SimulationError",
    "FAULT_TYPES",
]


class PageFault(Exception):
    """Access to an unmapped page (injected via ``Memory.inject_fault``)."""

    def __init__(self, address: int, is_store: bool) -> None:
        kind = "store to" if is_store else "load from"
        super().__init__(f"page fault on {kind} address {address}")
        self.address = address
        self.is_store = is_store


#: Exception classes an instruction's execution may raise as a trap.
FAULT_TYPES = (ArithmeticFault, PageFault)


class SimulationError(RuntimeError):
    """An internal simulator invariant was violated (this is a bug)."""


class DeadlockError(SimulationError):
    """The machine stopped making forward progress.

    Raised by the engine's progress watchdog (no instruction committed
    for ``config.watchdog_cycles`` cycles) or by the hard ``max_cycles``
    budget.  Carries a machine-readable
    :class:`~repro.machine.diagnostics.EngineDiagnostic` snapshot of the
    stalled pipeline so the failure is debuggable from the exception
    alone -- ``describe()`` on the diagnostic names the waiting
    instructions and the resources they are blocked on.
    """

    def __init__(self, message: str, diagnostic=None) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic
