"""Instruction buffers (CRAY-1 style) for the fetch stage.

The paper assumes "all instruction references are serviced by the
instruction buffers" (§2.2) and notes this barely affects the results.
This module lets that assumption be *checked* rather than taken on
faith: the CRAY-1's four instruction buffers of 64 parcels each are
modelled with LRU replacement and a configurable miss penalty, using
the real parcel sizes from :mod:`repro.isa.encoding` (1 or 2 parcels
per instruction).

Attach to any engine before running::

    engine.fetch_unit = InstructionBuffers.for_program(program)

With the default CRAY-1 geometry every Livermore loop body fits in one
buffer, so after the cold miss the machine behaves exactly as the
paper's always-hit model -- the ablation benchmark quantifies this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.encoding import parcel_count
from ..isa.program import Program

#: CRAY-1 geometry: 4 buffers x 64 parcels.
DEFAULT_BUFFERS = 4
DEFAULT_PARCELS_PER_BUFFER = 64
#: CRAY-1 instruction-fetch from memory takes ~14 CPs for a buffer fill.
DEFAULT_MISS_PENALTY = 14


class InstructionBuffers:
    """An LRU set of instruction buffers over the program's parcels."""

    def __init__(
        self,
        program: Program,
        n_buffers: int = DEFAULT_BUFFERS,
        parcels_per_buffer: int = DEFAULT_PARCELS_PER_BUFFER,
        miss_penalty: int = DEFAULT_MISS_PENALTY,
    ) -> None:
        if n_buffers < 1 or parcels_per_buffer < 2:
            raise ValueError("need >= 1 buffer of >= 2 parcels")
        self.n_buffers = n_buffers
        self.parcels_per_buffer = parcels_per_buffer
        self.miss_penalty = miss_penalty
        #: parcel address of each instruction (by pc)
        self._parcel_of: List[int] = []
        offset = 0
        for inst in program:
            self._parcel_of.append(offset)
            offset += parcel_count(inst)
        self.total_parcels = offset
        #: resident blocks: block number -> last-use stamp
        self._resident: Dict[int, int] = {}
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_program(cls, program: Program, **kwargs) -> "InstructionBuffers":
        return cls(program, **kwargs)

    def block_of(self, pc: int) -> int:
        """Which buffer-sized block holds instruction ``pc``?"""
        return self._parcel_of[pc] // self.parcels_per_buffer

    def access(self, pc: int, cycle: int) -> int:
        """Fetch the instruction at ``pc``; returns the delay in cycles
        (0 on a buffer hit, ``miss_penalty`` on a fill)."""
        block = self.block_of(pc)
        self._stamp += 1
        if block in self._resident:
            self._resident[block] = self._stamp
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._resident) >= self.n_buffers:
            victim = min(self._resident, key=self._resident.get)
            del self._resident[victim]
        self._resident[block] = self._stamp
        return self.miss_penalty

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def fits_entirely(self) -> bool:
        """Does the whole program fit in the buffers at once?"""
        blocks = -(-self.total_parcels // self.parcels_per_buffer)
        return blocks <= self.n_buffers
