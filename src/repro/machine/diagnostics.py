"""Structured engine diagnostics for deadlocks and stalls.

When a simulation stops making progress the interesting question is not
*that* it stalled but *what it is waiting for*.  This module captures a
machine-readable snapshot of a stalled engine -- occupancy, the waiting
instructions and the register instances/tags they are blocked on, the
decode/fetch state and a recent timeline window -- so a
:class:`~repro.machine.faults.DeadlockError` is debuggable from the
exception alone, without re-running under a tracer.

The capture is duck-typed over the engine zoo: windowed engines expose
``window`` (a deque of :class:`~repro.issue.common.WindowEntry`), the
in-order precise engines expose ``buffer`` (``_BufEntry`` slots), and
Tomasulo/Tag Unit engines expose per-FU ``stations``.  Anything else
still yields the shared fetch/decode/stall picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WaitingInstruction:
    """One in-flight instruction and what (if anything) blocks it."""

    seq: int
    pc: int
    text: str
    state: str                      # waiting | dispatched | done
    waiting_on: List[str] = field(default_factory=list)

    def describe(self) -> str:
        blocked = (
            f" <- waiting on {', '.join(self.waiting_on)}"
            if self.waiting_on else ""
        )
        return f"#{self.seq} pc={self.pc} {self.text} [{self.state}]{blocked}"

    def to_json(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "pc": self.pc,
            "text": self.text,
            "state": self.state,
            "waiting_on": list(self.waiting_on),
        }


@dataclass
class EngineDiagnostic:
    """A machine-readable snapshot of a (usually stalled) engine."""

    engine: str
    workload: str
    cycle: int
    pc: int
    last_commit_cycle: int
    retired: int
    occupancy: int
    inflight: int
    fetch_done: bool
    fetch_resume_cycle: int
    decode: Optional[str]
    decode_seq: Optional[int]
    waiting: List[WaitingInstruction] = field(default_factory=list)
    stalls: Dict[str, int] = field(default_factory=dict)
    recent_events: Dict[int, Dict[str, int]] = field(default_factory=dict)

    @property
    def cycles_since_commit(self) -> int:
        return self.cycle - self.last_commit_cycle

    def blocked_resources(self) -> List[str]:
        """Every distinct resource some waiting instruction is blocked on."""
        seen: List[str] = []
        for entry in self.waiting:
            for resource in entry.waiting_on:
                if resource not in seen:
                    seen.append(resource)
        return seen

    def describe(self) -> str:
        lines = [
            f"{self.engine} on {self.workload!r}: no commit for "
            f"{self.cycles_since_commit} cycles "
            f"(cycle {self.cycle}, last commit at {self.last_commit_cycle},"
            f" {self.retired} retired)",
            f"  pc={self.pc} decode={self.decode or '<empty>'} "
            f"fetch_done={self.fetch_done} "
            f"fetch_resume_cycle={self.fetch_resume_cycle}",
            f"  occupancy={self.occupancy} in-flight={self.inflight}",
        ]
        if self.waiting:
            lines.append("  in-flight instructions:")
            lines += [f"    {w.describe()}" for w in self.waiting]
        blocked = self.blocked_resources()
        if blocked:
            lines.append(f"  blocked resources: {', '.join(blocked)}")
        if self.stalls:
            top = sorted(
                self.stalls.items(), key=lambda kv: kv[1], reverse=True
            )[:5]
            lines.append(
                "  top stalls: "
                + ", ".join(f"{name}={count}" for name, count in top)
            )
        if self.recent_events:
            lines.append("  recent timeline:")
            for seq in sorted(self.recent_events):
                events = self.recent_events[seq]
                stages = " ".join(
                    f"{stage}@{cycle}"
                    for stage, cycle in sorted(
                        events.items(), key=lambda kv: kv[1]
                    )
                )
                lines.append(f"    #{seq}: {stages}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "workload": self.workload,
            "cycle": self.cycle,
            "pc": self.pc,
            "last_commit_cycle": self.last_commit_cycle,
            "cycles_since_commit": self.cycles_since_commit,
            "retired": self.retired,
            "occupancy": self.occupancy,
            "inflight": self.inflight,
            "fetch_done": self.fetch_done,
            "fetch_resume_cycle": self.fetch_resume_cycle,
            "decode": self.decode,
            "decode_seq": self.decode_seq,
            "waiting": [w.to_json() for w in self.waiting],
            "blocked_resources": self.blocked_resources(),
            "stalls": dict(self.stalls),
            "recent_events": {
                str(seq): dict(events)
                for seq, events in self.recent_events.items()
            },
        }


def _tag_name(tag) -> str:
    """Render a snooped tag: RUU tags are (Register, instance) pairs."""
    if isinstance(tag, tuple) and len(tag) == 2:
        reg, instance = tag
        return f"{reg!r}#{instance}"
    return repr(tag)


def _window_entry(entry) -> WaitingInstruction:
    """Describe one reservation-station style entry (WindowEntry shape)."""
    if getattr(entry, "executed", False):
        state = "done"
    elif getattr(entry, "dispatched", False):
        state = "dispatched"
    else:
        state = "waiting"
    waiting_on = [
        f"tag {_tag_name(op.tag)}"
        for op in getattr(entry, "operands", [])
        if not op.ready
    ]
    if state == "done" and getattr(entry, "fault", None) is not None:
        waiting_on.append(f"pending trap: {entry.fault}")
    return WaitingInstruction(
        seq=entry.seq,
        pc=entry.inst.pc,
        text=str(entry.inst),
        state=state,
        waiting_on=waiting_on,
    )


def _buffer_entry(entry) -> WaitingInstruction:
    """Describe one in-order reorder/history-buffer slot (_BufEntry)."""
    state = "done" if getattr(entry, "done", False) else "dispatched"
    waiting_on: List[str] = []
    if state == "done" and getattr(entry, "fault", None) is not None:
        waiting_on.append(f"pending trap: {entry.fault}")
    return WaitingInstruction(
        seq=entry.seq,
        pc=entry.inst.pc,
        text=str(entry.inst),
        state=state,
        waiting_on=waiting_on,
    )


def _collect_waiting(engine) -> List[WaitingInstruction]:
    waiting: List[WaitingInstruction] = []
    buffer = getattr(engine, "buffer", None)
    if buffer is not None:
        waiting += [_buffer_entry(entry) for entry in buffer]
    for attribute in ("window", "stack", "_pool"):
        container = getattr(engine, attribute, None)
        if container is not None:
            waiting += [_window_entry(entry) for entry in container]
    stations = getattr(engine, "_stations", None)
    if isinstance(stations, dict):
        for per_fu in stations.values():
            waiting += [_window_entry(entry) for entry in per_fu]
    waiting.sort(key=lambda w: w.seq)
    return waiting


def capture_diagnostic(engine, recent: int = 8) -> EngineDiagnostic:
    """Snapshot ``engine``'s pipeline state (duck-typed, read-only)."""
    waiting = _collect_waiting(engine)
    recent_events: Dict[int, Dict[str, int]] = {}
    timeline = getattr(engine, "timeline", None)
    if timeline is not None:
        for seq in timeline.sequences()[-recent:]:
            recent_events[seq] = timeline.events_for(seq)
    return EngineDiagnostic(
        engine=engine.name,
        workload=engine.program.name,
        cycle=engine.cycle,
        pc=engine.pc,
        last_commit_cycle=getattr(engine, "last_commit_cycle", 0),
        retired=engine.retired,
        occupancy=len(waiting),
        inflight=getattr(engine, "_inflight", 0),
        fetch_done=engine.fetch_done,
        fetch_resume_cycle=engine.fetch_resume_cycle,
        decode=(
            str(engine.decode_slot) if engine.decode_slot is not None
            else None
        ),
        decode_seq=(
            engine.decode_seq if engine.decode_slot is not None else None
        ),
        waiting=waiting,
        stalls=dict(engine.stalls),
        recent_events=recent_events,
    )
