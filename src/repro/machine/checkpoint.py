"""Checkpoint/restore of a stopped engine's architectural state.

The paper's whole argument is that a precise-interrupt machine can be
*stopped and restarted*: at a trap the visible state is exactly the
state after the first ``seq`` instructions, so the operating system can
swap the process out, service the fault, and resume -- on the same
machine or a different one.  This module makes that operational for the
simulator fleet: :meth:`Checkpoint.capture` serializes the full
architectural state of a stopped engine (register files, memory image,
PC, cycle/statistics counters, and the pending interrupt record) to a
versioned, self-validating on-disk format, and :meth:`Checkpoint.restore`
rebuilds a fresh engine -- of the *same or any other precise type* --
that resumes where the original left off.

What is (deliberately) **not** captured is microarchitectural state:
window/buffer contents, functional-unit pipelines, result-bus
reservations.  A checkpoint is only taken when the engine is stopped at
a precise interrupt (window squashed, counters cleared -- see
``_interrupt_at``) or fully drained, at which point the architectural
state *is* the whole state.  That is exactly the paper's precision
criterion, and it is what makes cross-engine restore (e.g. RUU ->
history buffer) well-defined.  Engines whose interrupts are imprecise
cannot be checkpointed at a trap: their register file does not
correspond to any program-order prefix, so there is nothing coherent to
save.

On-disk format (JSON, one document per file)::

    {"format": "repro-checkpoint", "version": 1,
     "sha256": "<hex digest of the canonical payload>",
     "payload": {engine, factory, program {name, code}, config,
                 registers, memory {words, faulting, fault_count},
                 counters, interrupt}}

The payload checksum makes the file self-validating: a truncated or
bit-flipped checkpoint is rejected at load time rather than resuming a
subtly corrupt machine.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..isa.encoding import decode_program, encode_program
from ..isa.opcodes import FUClass
from ..isa.program import Program
from ..isa.registers import Register
from .config import MachineConfig
from .interrupts import InterruptRecord
from .memory import Memory

#: File-format magic and the newest payload version this code writes.
FORMAT = "repro-checkpoint"
VERSION = 1

#: Plain engine counters copied verbatim into / out of a checkpoint.
_COUNTER_FIELDS = (
    "cycle", "pc", "retired", "next_seq", "decode_seq",
    "fetch_resume_cycle", "fetch_done", "branches", "branches_taken",
    "interrupt_count", "squashed", "mispredictions",
    "last_commit_cycle", "host_seconds",
)


class CheckpointError(RuntimeError):
    """A checkpoint could not be captured, validated, or restored."""


def _config_to_json(config: MachineConfig) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for field in dataclasses.fields(MachineConfig):
        value = getattr(config, field.name)
        if field.name == "latencies":
            value = {fu.value: cycles for fu, cycles in value.items()}
        payload[field.name] = value
    return payload


def _config_from_json(payload: Dict[str, Any]) -> MachineConfig:
    known = {field.name for field in dataclasses.fields(MachineConfig)}
    unknown = set(payload) - known
    if unknown:
        raise CheckpointError(
            f"checkpoint config has unknown fields: {sorted(unknown)} "
            f"(saved by a newer version?)"
        )
    kwargs = dict(payload)
    kwargs["latencies"] = {
        FUClass(name): int(cycles)
        for name, cycles in payload["latencies"].items()
    }
    return MachineConfig(**kwargs)


def _factory_key(engine_name: str) -> Optional[str]:
    """Map an engine's ``name`` back to its ``ENGINE_FACTORIES`` key."""
    from ..analysis.sweeps import ENGINE_FACTORIES

    if engine_name in ENGINE_FACTORIES:
        return engine_name
    if engine_name.startswith("spec-ruu"):
        return "spec-ruu"
    return None


@dataclass
class Checkpoint:
    """The architectural state of a stopped engine.

    Attributes:
        engine: the ``name`` of the engine the state was captured from.
        factory: the :data:`~repro.analysis.sweeps.ENGINE_FACTORIES` key
            used to rebuild it (differs from ``engine`` for e.g. the
            speculative RUU, whose display name carries the bypass mode).
        program: the workload, round-tripped through the binary encoding.
        config: machine configuration in effect at capture time.
        registers: ``{register name: value}`` for all 144 registers.
        memory_words: sparse memory image (non-zero words).
        memory_faulting: addresses still marked unmapped.
        fault_count: memory's fault counter.
        counters: plain engine counters (cycle, pc, retired, ...), plus
            ``retire_log`` and the ``stalls`` histogram.
        interrupt: the pending :class:`InterruptRecord`, if the engine
            stopped at a (precise) trap.
    """

    engine: str
    factory: str
    program: Program
    config: MachineConfig
    registers: Dict[str, Any]
    memory_words: Dict[int, Any]
    memory_faulting: List[int]
    fault_count: int
    counters: Dict[str, Any]
    interrupt: Optional[InterruptRecord]

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(cls, engine) -> "Checkpoint":
        """Snapshot a *stopped* engine.

        The engine must either have drained completely or be stopped at
        an interrupt that it claims is precise; anything else has
        microarchitectural state in flight that a checkpoint cannot
        represent, and raises :class:`CheckpointError`.
        """
        record = engine.interrupt_record
        if record is not None and not record.claims_precise:
            raise CheckpointError(
                f"{engine.name} stopped at an imprecise interrupt; its "
                f"register file matches no program-order prefix, so "
                f"there is no coherent state to checkpoint"
            )
        if record is None and not engine.done():
            raise CheckpointError(
                f"{engine.name} is mid-flight (cycle {engine.cycle}); "
                f"checkpoint a stopped engine (drained or at a precise "
                f"trap)"
            )
        factory = _factory_key(engine.name)
        if factory is None:
            raise CheckpointError(
                f"engine {engine.name!r} is not in ENGINE_FACTORIES; "
                f"a checkpoint from it could never be restored"
            )
        counters: Dict[str, Any] = {
            name: getattr(engine, name) for name in _COUNTER_FIELDS
        }
        counters["retire_log"] = list(engine.retire_log)
        counters["stalls"] = dict(engine.stalls)
        return cls(
            engine=engine.name,
            factory=factory,
            program=engine.program,
            config=engine.config,
            registers=engine.regs.snapshot(),
            memory_words=dict(engine.memory.nonzero()),
            memory_faulting=sorted(engine.memory.faulting_addresses),
            fault_count=engine.memory.fault_count,
            counters=counters,
            interrupt=record,
        )

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore(self, engine: Optional[str] = None,
                config: Optional[MachineConfig] = None):
        """Build a fresh engine resuming from this checkpoint.

        ``engine`` selects the target machine by ``ENGINE_FACTORIES``
        name; by default the checkpoint's own engine type is rebuilt.
        Cross-engine restore is allowed between precise machines: the
        checkpoint is purely architectural, so an RUU checkpoint resumes
        identically (architecturally) on a history buffer.  Restoring an
        *interrupted* checkpoint into an engine that does not claim
        precise interrupts is refused -- it could never have produced
        such a checkpoint, and ``continue_run`` would refuse it anyway.
        """
        from ..analysis.sweeps import ENGINE_FACTORIES

        key = engine if engine is not None else self.factory
        try:
            builder = ENGINE_FACTORIES[key]
        except KeyError:
            raise CheckpointError(
                f"unknown engine {key!r}; choose one of "
                f"{sorted(ENGINE_FACTORIES)}"
            ) from None

        memory = Memory()
        for address, value in self.memory_words.items():
            memory.poke(address, value)
        for address in self.memory_faulting:
            memory.inject_fault(address)
        memory.fault_count = self.fault_count

        machine = builder(self.program, config or self.config, memory)
        if self.interrupt is not None \
                and not machine.claims_precise_interrupts:
            raise CheckpointError(
                f"cannot restore an interrupted checkpoint into "
                f"{machine.name}: it does not claim precise interrupts, "
                f"so it cannot resume from a trap"
            )
        for name, value in self.registers.items():
            machine.regs.write(Register.parse(name), value)
        for name in _COUNTER_FIELDS:
            setattr(machine, name, self.counters[name])
        machine.retire_log = list(self.counters["retire_log"])
        machine.stalls.clear()
        machine.stalls.update(self.counters["stalls"])
        machine.interrupt_record = self.interrupt
        machine._on_restore()
        return machine

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The versioned, checksummed document written by :meth:`save`."""
        payload: Dict[str, Any] = {
            "engine": self.engine,
            "factory": self.factory,
            "program": {
                "name": self.program.name,
                "code": base64.b64encode(
                    encode_program(self.program)
                ).decode("ascii"),
            },
            "config": _config_to_json(self.config),
            "registers": dict(self.registers),
            "memory": {
                "words": {
                    str(address): value
                    for address, value in sorted(self.memory_words.items())
                },
                "faulting": list(self.memory_faulting),
                "fault_count": self.fault_count,
            },
            "counters": dict(self.counters),
            "interrupt": (
                self.interrupt.to_json() if self.interrupt is not None
                else None
            ),
        }
        return {
            "format": FORMAT,
            "version": VERSION,
            "sha256": _digest(payload),
            "payload": payload,
        }

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "Checkpoint":
        """Validate and rebuild a checkpoint from :meth:`to_json` output."""
        if not isinstance(document, dict) \
                or document.get("format") != FORMAT:
            raise CheckpointError("not a repro checkpoint document")
        version = document.get("version")
        if version != VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {VERSION})"
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint payload missing")
        digest = _digest(payload)
        if digest != document.get("sha256"):
            raise CheckpointError(
                "checkpoint checksum mismatch: the file is corrupt "
                f"(expected {document.get('sha256')!r}, payload hashes "
                f"to {digest!r})"
            )
        program_json = payload["program"]
        program = decode_program(
            base64.b64decode(program_json["code"]),
            name=program_json["name"],
        )
        memory_json = payload["memory"]
        interrupt_json = payload["interrupt"]
        return cls(
            engine=payload["engine"],
            factory=payload["factory"],
            program=program,
            config=_config_from_json(payload["config"]),
            registers=dict(payload["registers"]),
            memory_words={
                int(address): value
                for address, value in memory_json["words"].items()
            },
            memory_faulting=[int(a) for a in memory_json["faulting"]],
            fault_count=int(memory_json["fault_count"]),
            counters=dict(payload["counters"]),
            interrupt=(
                InterruptRecord.from_json(interrupt_json)
                if interrupt_json is not None else None
            ),
        )

    def save(self, path: str) -> str:
        """Write the checkpoint to ``path`` atomically; returns ``path``."""
        document = self.to_json()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read and validate a checkpoint written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path!r}: {exc}"
            ) from exc
        return cls.from_json(document)


def _digest(payload: Dict[str, Any]) -> str:
    """Canonical sha256 of a payload (sorted keys, no whitespace)."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
