"""The single shared result bus of the model architecture.

The paper's machine differs from the real CRAY-1 here (section 2): *only
one functional unit may put data on the result bus in any clock cycle*.
Engines reserve the bus at dispatch time for the cycle the result will
emerge (the Weiss & Smith [17] discipline); a dispatch that cannot get a
bus slot does not happen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class ResultBus:
    """Tracks which future cycles the result bus is already reserved for."""

    __slots__ = ("_reserved", "conflicts")

    def __init__(self) -> None:
        self._reserved: Set[int] = set()
        self.conflicts = 0

    def is_free(self, cycle: int) -> bool:
        """Can a result appear on the bus at ``cycle``?"""
        return cycle not in self._reserved

    def reserve(self, cycle: int) -> bool:
        """Reserve the bus at ``cycle``; False if already taken."""
        if cycle in self._reserved:
            self.conflicts += 1
            return False
        self._reserved.add(cycle)
        return True

    def release_past(self, now: int) -> None:
        """Garbage-collect reservations at or before ``now``."""
        self._reserved = {cycle for cycle in self._reserved if cycle > now}

    def reserved_cycles(self) -> List[int]:
        """All outstanding reservations, sorted (for debugging/tests)."""
        return sorted(self._reserved)


class BroadcastBus:
    """A value-carrying bus delivering tagged results once per cycle.

    Used for the RUU's commit bus (RUU -> register file) which the
    reservation stations also snoop, and by tests that want to observe
    bus traffic.  At most one (tag, value) per cycle.
    """

    __slots__ = ("_traffic",)

    def __init__(self) -> None:
        self._traffic: Dict[int, Tuple[object, object]] = {}

    def drive(self, cycle: int, tag, value) -> bool:
        """Put ``(tag, value)`` on the bus at ``cycle``; False if busy."""
        if cycle in self._traffic:
            return False
        self._traffic[cycle] = (tag, value)
        return True

    def observe(self, cycle: int) -> Optional[Tuple[object, object]]:
        """What is on the bus at ``cycle``, if anything."""
        return self._traffic.get(cycle)

    def release_past(self, now: int) -> None:
        self._traffic = {
            cycle: payload
            for cycle, payload in self._traffic.items()
            if cycle >= now
        }
