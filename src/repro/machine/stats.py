"""Simulation statistics and results.

Every engine's ``run()`` returns a :class:`SimResult`.  The two numbers
the paper reports are ``cycles`` and the derived ``issue_rate``
(instructions per cycle); speedups are computed between results by
:func:`speedup`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional


class StallReason:
    """Canonical names for issue-stall causes (keys of ``stalls``)."""

    SOURCE_BUSY = "source_busy"          # waiting for a source register
    DEST_BUSY = "dest_busy"              # destination register busy
    FU_BUSY = "fu_busy"                  # functional unit cannot accept
    RESULT_BUS = "result_bus"            # no result-bus slot
    WINDOW_FULL = "window_full"          # RS pool / RSTU / RUU full
    NO_TAG = "no_tag"                    # tag unit exhausted
    NO_LOAD_REGISTER = "no_load_register"
    INSTANCE_LIMIT = "instance_limit"    # NI counter saturated (2^n - 1)
    BRANCH_WAIT = "branch_wait"          # branch waiting for its condition
    BRANCH_DEAD = "branch_dead"          # dead cycles after a branch
    FETCH_MISS = "fetch_miss"            # instruction-buffer fill
    FETCH_DONE = "fetch_done"            # nothing left to fetch (drain)


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    engine: str
    workload: str
    cycles: int
    instructions: int
    stalls: Counter = field(default_factory=Counter)
    branches: int = 0
    branches_taken: int = 0
    interrupts: int = 0
    mispredictions: int = 0
    squashed: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def issue_rate(self) -> float:
        """Average instructions executed per clock cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def describe(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"{self.engine:>14s} on {self.workload}: "
            f"{self.instructions} instructions in {self.cycles} cycles "
            f"(issue rate {self.issue_rate:.3f})"
        )


def speedup(baseline: SimResult, candidate: SimResult) -> float:
    """Relative speedup of ``candidate`` over ``baseline`` (same workload).

    Matches the paper's definition: baseline cycles / candidate cycles.
    """
    if baseline.workload != candidate.workload:
        raise ValueError(
            f"speedup across different workloads: {baseline.workload!r} "
            f"vs {candidate.workload!r}"
        )
    if candidate.cycles == 0:
        raise ValueError("candidate ran for zero cycles")
    return baseline.cycles / candidate.cycles


def aggregate(results) -> SimResult:
    """Combine per-loop results the way the paper aggregates Table 1.

    Total instructions divided by total cycles -- *not* the mean of the
    individual rates (the paper is explicit about this).
    """
    results = list(results)
    if not results:
        raise ValueError("nothing to aggregate")
    engines = {result.engine for result in results}
    if len(engines) != 1:
        raise ValueError(f"mixed engines in aggregate: {sorted(engines)}")
    total = SimResult(
        engine=results[0].engine,
        workload="+".join(result.workload for result in results),
        cycles=sum(result.cycles for result in results),
        instructions=sum(result.instructions for result in results),
    )
    for result in results:
        total.stalls.update(result.stalls)
        total.branches += result.branches
        total.branches_taken += result.branches_taken
        total.interrupts += result.interrupts
        total.mispredictions += result.mispredictions
        total.squashed += result.squashed
    return total
