"""Machine substrate: configuration, memory, buses, FUs, engine base."""

from .config import CRAY1_LIKE, MachineConfig, config_for_window
from .engine import Engine
from .faults import FAULT_TYPES, ArithmeticFault, PageFault, SimulationError
from .fetch import InstructionBuffers
from .functional_units import FunctionalUnit, FUPool
from .interrupts import InterruptRecord
from .memory import Memory
from .result_bus import BroadcastBus, ResultBus
from .stats import SimResult, StallReason, aggregate, speedup
from .timeline import Timeline

__all__ = [
    "ArithmeticFault",
    "BroadcastBus",
    "CRAY1_LIKE",
    "Engine",
    "FAULT_TYPES",
    "FUPool",
    "FunctionalUnit",
    "InstructionBuffers",
    "InterruptRecord",
    "MachineConfig",
    "Timeline",
    "Memory",
    "PageFault",
    "ResultBus",
    "SimResult",
    "SimulationError",
    "StallReason",
    "aggregate",
    "config_for_window",
    "speedup",
]
