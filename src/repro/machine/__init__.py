"""Machine substrate: configuration, memory, buses, FUs, engine base."""

from .checkpoint import Checkpoint, CheckpointError
from .config import CRAY1_LIKE, MachineConfig, config_for_window
from .diagnostics import (
    EngineDiagnostic,
    WaitingInstruction,
    capture_diagnostic,
)
from .engine import Engine
from .faults import (
    FAULT_TYPES,
    ArithmeticFault,
    DeadlockError,
    PageFault,
    SimulationError,
)
from .fetch import InstructionBuffers
from .functional_units import FunctionalUnit, FUPool
from .interrupts import InterruptRecord
from .memory import Memory
from .result_bus import BroadcastBus, ResultBus
from .stats import SimResult, StallReason, aggregate, speedup
from .timeline import Timeline

__all__ = [
    "ArithmeticFault",
    "BroadcastBus",
    "CRAY1_LIKE",
    "Checkpoint",
    "CheckpointError",
    "DeadlockError",
    "Engine",
    "EngineDiagnostic",
    "FAULT_TYPES",
    "FUPool",
    "FunctionalUnit",
    "InstructionBuffers",
    "InterruptRecord",
    "MachineConfig",
    "Timeline",
    "Memory",
    "PageFault",
    "ResultBus",
    "SimResult",
    "SimulationError",
    "StallReason",
    "WaitingInstruction",
    "aggregate",
    "capture_diagnostic",
    "config_for_window",
    "speedup",
]
