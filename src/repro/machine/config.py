"""Machine configuration shared by every simulator engine.

The defaults model the paper's machine (section 2): CRAY-1 scalar-unit
functional-unit times, a single result bus, an issue width of one
instruction per cycle, six load registers, and 3-bit NI/LI instance
counters for the RUU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from ..isa.opcodes import DEFAULT_LATENCY, FUClass


@dataclass(frozen=True)
class MachineConfig:
    """Timing and sizing parameters of the simulated machine.

    Attributes:
        latencies: functional-unit time in cycles for each FU class.
        issue_width: instructions the decode stage may issue per cycle.
            The paper's machine is strictly 1-wide; widths above 1 are
            an extension (see ablation A7) that revisits the paper's
            reservoir argument for dispatch paths.  A branch always
            ends its cycle's issue group.
        branch_taken_penalty: dead cycles after a *taken* branch resolves
            before the next instruction can enter decode (instruction
            buffer redirect; the paper's "dead cycles following each
            branch instruction").
        branch_not_taken_penalty: dead cycles after a not-taken branch.
        window_size: reservation-station / RSTU / RUU entry count for the
            engine in use (ignored by the simple engine; for Tomasulo and
            the Tag Unit engines it is the *per-functional-unit* RS count).
        n_load_registers: load registers for memory disambiguation
            (paper uses 6; 4 sufficed for most loops).
        counter_bits: width *n* of the NI/LI instance counters; up to
            ``2**n - 1`` instances of a destination register may be live.
        dispatch_paths: data paths from the RSTU/RUU to the functional
            units (Table 2 uses 1, Table 3 uses 2).
        commit_paths: paths from the RUU to the register file (1 in the
            paper: a single bus that the reservation stations also snoop).
        n_tags: tag-pool size for the Tag Unit engine (separate tag pool).
        forward_latency: cycles for a load satisfied by a load register
            (store-to-load forward / load-load merge) instead of memory.
        store_execute_latency: cycles for a store to pass through the
            memory unit's address check in the RUU (the actual memory
            write happens at commit).
        spec_predict_taken_penalty: fetch-redirect dead cycles when the
            speculative RUU predicts a branch taken (a predicted
            fall-through costs nothing).
        spec_mispredict_penalty: dead cycles to restart fetch on the
            correct path after a misprediction is discovered.
        spec_max_branches: unresolved predicted branches allowed at once
            in the speculative RUU (the paper notes there is no hard
            architectural limit; this bounds the bookkeeping).
        max_cycles: safety valve for runaway simulations.
        watchdog_cycles: progress watchdog -- if no instruction
            architecturally retires for this many consecutive cycles the
            engine raises a :class:`~repro.machine.faults.DeadlockError`
            (with a pipeline diagnostic) instead of burning the rest of
            the ``max_cycles`` budget.  0 disables the watchdog.
    """

    latencies: Mapping[FUClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCY)
    )
    issue_width: int = 1
    branch_taken_penalty: int = 2
    branch_not_taken_penalty: int = 1
    window_size: int = 10
    n_load_registers: int = 6
    counter_bits: int = 3
    dispatch_paths: int = 1
    commit_paths: int = 1
    n_tags: int = 16
    forward_latency: int = 1
    store_execute_latency: int = 1
    spec_predict_taken_penalty: int = 1
    spec_mispredict_penalty: int = 3
    spec_max_branches: int = 8
    max_cycles: int = 10_000_000
    watchdog_cycles: int = 10_000

    def latency(self, fu: FUClass) -> int:
        """Functional-unit time for ``fu`` in cycles."""
        return self.latencies[fu]

    @property
    def max_instances(self) -> int:
        """Maximum live instances of one destination register (2^n - 1)."""
        return (1 << self.counter_bits) - 1

    def with_(self, **overrides) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def with_latency(self, fu: FUClass, cycles: int) -> "MachineConfig":
        """Return a copy with one functional-unit latency overridden."""
        latencies: Dict[FUClass, int] = dict(self.latencies)
        latencies[fu] = cycles
        return replace(self, latencies=latencies)


#: The paper's machine with default sizing.
CRAY1_LIKE = MachineConfig()


def config_for_window(size: int, base: Optional[MachineConfig] = None,
                      **overrides) -> MachineConfig:
    """Convenience: the base config with ``window_size`` (and overrides)."""
    return (base or CRAY1_LIKE).with_(window_size=size, **overrides)
