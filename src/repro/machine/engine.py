"""Cycle-driven engine base shared by every issue mechanism.

The paper evaluates six machines that differ *only* in their decode/issue
logic (simple issue, Tomasulo, Tag Unit, RS pool, RSTU, RUU).  Everything
else -- fetch, the decode stage, branch handling, functional units, the
single result bus, statistics -- is identical, and lives here.

A cycle ("tick") has four phases, in order:

1. **complete** -- results scheduled for this cycle appear on the result
   bus and are broadcast (reservation stations capture operands,
   registers/tag units update).
2. **commit** -- in-order state update (RUU family only; no-op
   otherwise).  An instruction may commit no earlier than the cycle
   *after* it completes.
3. **dispatch** -- ready instructions move from reservation stations to
   functional units, reserving the result bus for their completion cycle.
4. **issue** -- the decode stage refills from the fetch unit and tries to
   issue one instruction into the machine.  Branches are resolved in the
   decode stage (they never enter the window); a resolved branch charges
   the configured dead cycles before fetch resumes.

Engines are *execution-driven*: they compute real values through the
shared ISA semantics, so the test-suite can require every engine to
finish with exactly the golden model's architectural state.
"""

from __future__ import annotations

import abc
import heapq
import time
from collections import Counter
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import Register, RegisterFile
from ..isa.semantics import branch_taken
from .config import CRAY1_LIKE, MachineConfig
from .diagnostics import capture_diagnostic
from .faults import DeadlockError, SimulationError
from .functional_units import FUPool
from .interrupts import InterruptRecord
from .memory import Memory
from .result_bus import ResultBus
from .stats import SimResult, StallReason


class Engine(abc.ABC):
    """Abstract cycle-driven simulator for one issue mechanism."""

    #: Engine name used in results and table headers.
    name = "abstract"
    #: Does this engine guarantee precise interrupts?
    claims_precise_interrupts = False

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        memory: Optional[Memory] = None,
        registers: Optional[RegisterFile] = None,
    ) -> None:
        self.program = program
        self.config = config or CRAY1_LIKE
        self.regs = registers if registers is not None else RegisterFile()
        self.memory = memory if memory is not None else Memory()
        self.fus = FUPool(self.config)
        self.result_bus = ResultBus()

        self.cycle = 0
        self.pc = 0
        self.decode_slot: Optional[Instruction] = None
        self.decode_seq = -1
        self.fetch_resume_cycle = 0
        self.fetch_done = False

        self.next_seq = 0
        self.retired = 0
        self.retire_log: List[int] = []
        self.stalls: Counter = Counter()
        self.branches = 0
        self.branches_taken = 0
        self.interrupt_record: Optional[InterruptRecord] = None
        self.interrupt_count = 0
        self.squashed = 0
        self.mispredictions = 0
        self._completions: List[Tuple[int, int, object]] = []
        self._completion_ids = 0
        #: Optional per-instruction pipeline recorder (see
        #: :mod:`repro.machine.timeline`); attach before ``run()``.
        self.timeline = None
        #: Optional observability recorder (see
        #: :mod:`repro.obs.events`); attach before ``run()``.  Receives
        #: every ``note``/``stall``/retire event plus one end-of-tick
        #: callback per cycle, so it can attribute every cycle of the
        #: run.  None (the default) costs one attribute test per event.
        self.recorder = None
        #: Optional instruction-buffer model (see
        #: :mod:`repro.machine.fetch`); when None, fetch always hits --
        #: the paper's assumption (§2.2).
        self.fetch_unit = None
        #: Host wall-clock seconds spent inside ``run()`` so far
        #: (accumulates across ``continue_run`` resumes).
        self.host_seconds = 0.0
        #: Cycle of the most recent architectural retirement -- the
        #: progress signal the deadlock watchdog monitors.
        self.last_commit_cycle = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        """Simulate until the program drains, a fault interrupts, or a
        progress limit trips (which raises :class:`DeadlockError` -- it
        indicates a deadlock bug).

        Two limits guard the loop: the hard ``max_cycles`` budget, and a
        progress watchdog (``config.watchdog_cycles``) that trips as
        soon as no instruction has architecturally retired for that many
        cycles -- typically long before the cycle budget burns down.
        Both raise a :class:`DeadlockError` carrying an
        :class:`~repro.machine.diagnostics.EngineDiagnostic` snapshot.
        """
        limit = max_cycles if max_cycles is not None \
            else self.config.max_cycles
        watchdog = self.config.watchdog_cycles
        # A resumed run must not inherit staleness from before the trap.
        self.last_commit_cycle = max(self.last_commit_cycle, self.cycle)
        started = time.perf_counter()
        try:
            while not self.done():
                if self.cycle >= limit:
                    raise self._deadlock(
                        f"exceeded the {limit}-cycle budget"
                    )
                if watchdog and \
                        self.cycle - self.last_commit_cycle >= watchdog:
                    raise self._deadlock(
                        f"watchdog: no instruction committed for "
                        f"{self.cycle - self.last_commit_cycle} cycles"
                    )
                self.tick()
                if self.recorder is not None:
                    self.recorder.on_cycle(self)
                self.cycle += 1
                if self.interrupt_record is not None:
                    break
                if self.cycle % 4096 == 0:
                    self.result_bus.release_past(self.cycle)
        finally:
            self.host_seconds += time.perf_counter() - started
        if self.recorder is not None:
            self.recorder.on_run_end(self)
        return self.result()

    def _deadlock(self, reason: str) -> DeadlockError:
        """Build a :class:`DeadlockError` with a pipeline snapshot."""
        diagnostic = capture_diagnostic(self)
        return DeadlockError(
            f"{self.name}: {reason} on {self.program.name!r} "
            f"(pc={self.pc}, decode={self.decode_slot})\n"
            + diagnostic.describe(),
            diagnostic=diagnostic,
        )

    def continue_run(self, max_cycles: Optional[int] = None) -> SimResult:
        """Resume after an interrupt has been serviced.

        Only meaningful for engines with precise interrupts: the caller
        services the fault (e.g. ``memory.service_fault``) and execution
        restarts at the interrupt PC.
        """
        if self.interrupt_record is None:
            raise SimulationError("no interrupt to resume from")
        if not self.claims_precise_interrupts:
            raise SimulationError(
                f"{self.name} has imprecise interrupts and cannot resume"
            )
        self._prepare_resume()
        self.interrupt_record = None
        return self.run(max_cycles)

    def _prepare_resume(self) -> None:
        """Hook: restore engine bookkeeping before resuming from a trap."""
        raise NotImplementedError

    def _on_restore(self) -> None:
        """Hook: resynchronize derived state after a checkpoint restore
        has overwritten ``regs``/``memory`` and the architectural
        counters (see :mod:`repro.machine.checkpoint`).  Default: no-op.
        """

    def tick(self) -> None:
        """Advance one clock cycle through the four phases."""
        self._phase_complete()
        self._phase_commit()
        self._phase_dispatch()
        self._phase_issue()

    def done(self) -> bool:
        """All instructions fetched, issued, and drained?"""
        return (
            self.fetch_done
            and self.decode_slot is None
            and self._drained()
        )

    def result(self) -> SimResult:
        """Build the :class:`SimResult` for the run so far."""
        result = SimResult(
            engine=self.name,
            workload=self.program.name,
            cycles=self.cycle,
            instructions=self.retired,
            stalls=Counter(self.stalls),
            branches=self.branches,
            branches_taken=self.branches_taken,
            interrupts=self.interrupt_count,
            mispredictions=self.mispredictions,
            squashed=self.squashed,
        )
        result.extra["fu_utilization"] = {
            fu.value: count
            for fu, count in self.fus.utilization().items()
            if count
        }
        result.extra["result_bus_conflicts"] = self.result_bus.conflicts
        # Host-perf telemetry: how fast the *simulator* ran, in wall
        # seconds and simulated work per host second (0.0 before the
        # first ``run()``; clocks too coarse to resolve read as 0.0).
        result.extra["host_seconds"] = self.host_seconds
        if self.host_seconds > 0.0:
            result.extra["host_inst_per_sec"] = (
                self.retired / self.host_seconds
            )
            result.extra["host_cycles_per_sec"] = (
                self.cycle / self.host_seconds
            )
        else:
            result.extra["host_inst_per_sec"] = 0.0
            result.extra["host_cycles_per_sec"] = 0.0
        if self.interrupt_record is not None:
            result.extra["interrupt"] = self.interrupt_record
        return result

    # ------------------------------------------------------------------
    # phases (engines override what they need)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _phase_complete(self) -> None:
        """Deliver this cycle's functional-unit results."""

    def _phase_commit(self) -> None:
        """In-order state update; only the RUU family implements this."""

    def _phase_dispatch(self) -> None:
        """Move ready reservation-station entries to functional units."""

    def _phase_issue(self) -> None:
        if self.interrupt_record is not None:
            return
        for _ in range(self.config.issue_width):
            self._refill_decode()
            inst = self.decode_slot
            if inst is None:
                return
            if inst.is_halt:
                self.fetch_done = True
                self.decode_slot = None
                return
            if inst.opcode is Opcode.NOP:
                self._note_retired(self.decode_seq)
                self.decode_slot = None
                continue
            if inst.is_control_flow:
                # A branch (resolved or stalled) ends the issue group.
                self._issue_control_flow(inst)
                return
            if not self._try_issue(inst, self.decode_seq):
                return
            self.decode_slot = None

    # ------------------------------------------------------------------
    # fetch / decode
    # ------------------------------------------------------------------

    def _refill_decode(self) -> None:
        if self.decode_slot is not None or self.fetch_done:
            return
        if self.cycle < self.fetch_resume_cycle:
            self.stall(StallReason.BRANCH_DEAD)
            return
        if self.fetch_unit is not None:
            delay = self.fetch_unit.access(self.pc, self.cycle)
            if delay:
                self.fetch_resume_cycle = self.cycle + delay
                self.stall(StallReason.FETCH_MISS)
                return
        inst = self.program[self.pc]
        self.decode_slot = inst
        self.decode_seq = self.next_seq
        self.next_seq += 1
        self.pc = inst.pc + 1
        self.note(self.decode_seq, "decode")
        if self.recorder is not None:
            self.recorder.on_inst(self.decode_seq, inst)

    def _issue_control_flow(self, inst: Instruction) -> None:
        """Resolve a branch or jump in the decode stage.

        Branches wait here until their condition register is readable
        under the engine's bypass policy (``_branch_operand``), then
        redirect fetch and charge the dead-cycle penalty.
        """
        if inst.opcode is Opcode.JMP:
            taken = True
        else:
            ready, value = self._branch_operand(inst.srcs[0])
            if not ready:
                self.stall(StallReason.BRANCH_WAIT)
                return
            taken = branch_taken(inst.opcode, value)
        self.branches += 1
        if taken:
            self.branches_taken += 1
            self.pc = inst.target
            penalty = self.config.branch_taken_penalty
        else:
            self.pc = inst.pc + 1
            penalty = self.config.branch_not_taken_penalty
        self.fetch_resume_cycle = self.cycle + 1 + penalty
        self.note(self.decode_seq, "issue")
        self.note(self.decode_seq, "commit")
        self._note_retired(self.decode_seq)
        self.decode_slot = None

    def _branch_operand(self, reg: Register) -> Tuple[bool, object]:
        """Can the decode stage read ``reg`` now?  Default: the register
        must have no pending writes, then the register file is current.
        Engines with bypass paths override this.
        """
        if self._register_pending(reg):
            return False, None
        return True, self.regs.read(reg)

    @abc.abstractmethod
    def _register_pending(self, reg: Register) -> bool:
        """Is there an uncompleted write to ``reg`` in flight?"""

    @abc.abstractmethod
    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        """Attempt to issue ``inst`` into the machine.  Return True if it
        left the decode stage this cycle; on False, record a stall.
        """

    @abc.abstractmethod
    def _drained(self) -> bool:
        """Is all in-flight work finished (windows empty, FUs idle)?"""

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------

    def stall(self, reason: str) -> None:
        """Record one stalled issue cycle with its cause."""
        self.stalls[reason] += 1
        if self.recorder is not None:
            self.recorder.on_stall(reason, self.cycle)

    def note(self, seq: int, stage: str) -> None:
        """Record a pipeline event if a timeline is attached."""
        if self.timeline is not None:
            self.timeline.record(seq, stage, self.cycle)
        if self.recorder is not None:
            self.recorder.on_stage(seq, stage, self.cycle)

    def _note_retired(self, seq: int) -> None:
        """An instruction has architecturally completed."""
        self.retired += 1
        self.retire_log.append(seq)
        self.last_commit_cycle = self.cycle
        if self.recorder is not None:
            self.recorder.on_retire(seq, self.cycle)

    def _schedule_completion(self, cycle: int, payload: object) -> None:
        """Register a functional-unit result for delivery at ``cycle``."""
        self._completion_ids += 1
        heapq.heappush(
            self._completions, (cycle, self._completion_ids, payload)
        )

    def _pop_completions(self) -> List[object]:
        """Pop every payload scheduled for the current cycle."""
        ready: List[object] = []
        while self._completions and self._completions[0][0] <= self.cycle:
            cycle, _, payload = heapq.heappop(self._completions)
            if cycle < self.cycle:
                raise SimulationError(
                    f"{self.name}: completion for cycle {cycle} delivered "
                    f"late at cycle {self.cycle}"
                )
            ready.append(payload)
        return ready

    def _take_interrupt(self, cause: Exception, seq: int, pc: int,
                        precise: bool) -> None:
        """Record a taken interrupt and stop the machine."""
        self.interrupt_record = InterruptRecord(
            cause=cause,
            seq=seq,
            pc=pc,
            cycle=self.cycle,
            claims_precise=precise,
        )
        self.interrupt_count += 1
