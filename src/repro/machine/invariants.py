"""Per-cycle invariant checking for the RUU (a hardware-assertions rig).

Attach to an engine before running::

    engine = RUUEngine(program, config)
    InvariantChecker.attach(engine)
    engine.run()     # raises InvariantViolation on the first bad cycle

The checker wraps ``tick()`` and, after every cycle, asserts the
structural properties the design relies on:

* the window is in strict program (sequence) order;
* ``NI[r]`` equals the number of live window entries destined for ``r``
  (and never exceeds ``2^n - 1``);
* ``LI[r]`` equals the instance number of the youngest live entry for
  ``r`` when one exists;
* every non-ready operand carries a tag that a live producer will
  still satisfy (no orphaned waiters -> no deadlocks);
* dispatched-but-not-executed entries are within the window;
* the memory queue's in-flight population matches the window's
  un-finished memory instructions.

Engines without RUU bookkeeping (simple, Tomasulo, RSTU, ...) still get
generic post-cycle checks: the retired count never shrinks except
across an interrupt or misprediction recovery, the retire log mirrors
the counter, no instruction retires before it was fetched, and the
cycle counter stays within the configured budget.  Attaching to *any*
engine is therefore always meaningful -- ``cycles_checked`` counts real
assertions, never silent no-ops.

This is how the test-suite checks each engine's *internal* consistency
on every cycle of real workloads, not just its architectural outputs.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from .faults import SimulationError


class InvariantViolation(SimulationError):
    """An engine invariant failed; message says which and when."""


class InvariantChecker:
    """Wraps an engine's tick() with post-cycle assertions."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.cycles_checked = 0
        self._original_tick = engine.tick
        self._last_retired = engine.retired
        self._last_recoveries = self._recoveries()

    def _recoveries(self) -> int:
        """Events that legitimately roll the retired counter back."""
        engine = self.engine
        return engine.interrupt_count + engine.mispredictions

    @classmethod
    def attach(cls, engine) -> "InvariantChecker":
        checker = cls(engine)

        def checked_tick():
            checker._original_tick()
            checker.check()

        engine.tick = checked_tick
        return checker

    def detach(self) -> None:
        self.engine.tick = self._original_tick

    # ------------------------------------------------------------------

    def check(self) -> None:
        self.cycles_checked += 1
        engine = self.engine
        self._check_generic(engine)
        if hasattr(engine, "window") and hasattr(engine, "_ni"):
            self._check_ruu(engine)

    def _check_generic(self, engine) -> None:
        """Post-cycle checks every engine must satisfy."""
        recoveries = self._recoveries()
        if engine.retired < self._last_retired \
                and recoveries == self._last_recoveries:
            self._fail(
                f"retired count went backwards ({self._last_retired} -> "
                f"{engine.retired}) with no interrupt or recovery"
            )
        self._last_retired = engine.retired
        self._last_recoveries = recoveries
        if len(engine.retire_log) != engine.retired:
            self._fail(
                f"retire log holds {len(engine.retire_log)} entries but "
                f"the retired counter says {engine.retired}"
            )
        if engine.retired > engine.next_seq:
            self._fail(
                f"retired {engine.retired} instructions but only "
                f"{engine.next_seq} were ever fetched"
            )
        if engine.cycle > engine.config.max_cycles:
            self._fail(
                f"cycle counter {engine.cycle} exceeds the configured "
                f"budget of {engine.config.max_cycles}"
            )

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"cycle {self.engine.cycle}: {message}"
        )

    def _check_ruu(self, engine) -> None:
        window = list(engine.window)

        # (1) queue order
        seqs = [entry.seq for entry in window]
        if seqs != sorted(seqs):
            self._fail(f"window out of program order: {seqs}")

        # (2) NI consistency and bound
        live_counts: Counter = Counter()
        youngest_instance = {}
        for entry in window:
            if entry.dest_tag is not None:
                reg, instance = entry.dest_tag
                live_counts[reg] += 1
                youngest_instance[reg] = instance
        if dict(live_counts) != dict(engine._ni):
            self._fail(
                f"NI mismatch: counters {dict(engine._ni)} vs live "
                f"{dict(live_counts)}"
            )
        limit = engine.config.max_instances
        for reg, count in live_counts.items():
            if count > limit:
                self._fail(f"{reg.name} has {count} instances > {limit}")

        # (3) LI points at the youngest live instance
        for reg, instance in youngest_instance.items():
            if engine._li.get(reg, 0) != instance:
                self._fail(
                    f"LI[{reg.name}] = {engine._li.get(reg, 0)} but the "
                    f"youngest live instance is {instance}"
                )

        # (4) no orphaned operand waiters
        live_tags = {
            entry.dest_tag for entry in window
            if entry.dest_tag is not None
        }
        for entry in window:
            for operand in entry.operands:
                if operand.ready:
                    continue
                if operand.tag not in live_tags:
                    self._fail(
                        f"#{entry.seq} waits on {operand.tag} with no "
                        f"live producer"
                    )

        # (5) the _live index mirrors the window
        for tag, producer in engine._live.items():
            if producer.dest_tag != tag or producer.squashed:
                self._fail(f"stale _live mapping for {tag}")

        # (6) memory-queue population matches the window
        window_mem = sum(1 for entry in window if entry.inst.is_memory)
        if engine.mdu.in_flight() != window_mem:
            self._fail(
                f"mdu tracks {engine.mdu.in_flight()} memory ops, window "
                f"holds {window_mem}"
            )


def run_checked(engine, max_cycles: Optional[int] = None):
    """Convenience: attach, run, detach; returns the SimResult."""
    checker = InvariantChecker.attach(engine)
    try:
        return engine.run(max_cycles), checker
    finally:
        checker.detach()
