"""Pipelined functional units.

Each FU class of the model architecture has one fully pipelined unit
(initiation interval of one): it can accept a new operation every cycle,
and an operation dispatched at cycle *t* produces its result on the
result bus at cycle *t + latency*.  The structural hazards that matter
are therefore (a) one dispatch per unit per cycle and (b) the single
result bus (:mod:`repro.machine.result_bus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..isa.opcodes import FUClass
from .config import MachineConfig


@dataclass
class FunctionalUnit:
    """One pipelined functional unit of a given class."""

    fu_class: FUClass
    latency: int
    last_accept_cycle: int = -1
    operations: int = 0

    def can_accept(self, cycle: int) -> bool:
        """One initiation per cycle (fully pipelined)."""
        return self.last_accept_cycle != cycle

    def accept(self, cycle: int) -> int:
        """Dispatch an operation; returns the result cycle."""
        assert self.can_accept(cycle), (
            f"{self.fu_class.value} accepted two ops in cycle {cycle}"
        )
        self.last_accept_cycle = cycle
        self.operations += 1
        return cycle + self.latency


class FUPool:
    """The full complement of functional units for a machine config."""

    def __init__(self, config: MachineConfig) -> None:
        self._units: Dict[FUClass, FunctionalUnit] = {
            fu: FunctionalUnit(fu, config.latency(fu)) for fu in FUClass
        }

    def __getitem__(self, fu: FUClass) -> FunctionalUnit:
        return self._units[fu]

    def __iter__(self) -> Iterator[FunctionalUnit]:
        return iter(self._units.values())

    def can_accept(self, fu: FUClass, cycle: int) -> bool:
        return self._units[fu].can_accept(cycle)

    def accept(self, fu: FUClass, cycle: int) -> int:
        """Dispatch to unit ``fu`` at ``cycle``; returns the result cycle."""
        return self._units[fu].accept(cycle)

    def result_cycle(self, fu: FUClass, cycle: int) -> int:
        """When would an op dispatched at ``cycle`` produce its result?"""
        return cycle + self._units[fu].latency

    def utilization(self) -> Dict[FUClass, int]:
        """Operations executed per functional unit."""
        return {fu: unit.operations for fu, unit in self._units.items()}
