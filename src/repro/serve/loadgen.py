"""Load generator and acceptance harness for the simulation service.

``repro loadbench`` drives a running (or self-spawned) server through
five phases modelled on an inference-serving benchmark:

1. **warmup**   -- a handful of requests to page in workers;
2. **cold**     -- a sweep of unique points, each simulated for real;
3. **warm**     -- the same sweep again, now answered from the shared
   result cache (this pair yields the warm/cold speedup gate);
4. **scale**    -- closed-loop concurrency sweep at rising client
   counts;
5. **burst**    -- an over-capacity salvo of *unique* points (unique so
   the coalescer cannot absorb them) that must provoke HTTP 429
   backpressure, which the clients then retry to success.

Afterwards it checks one point's served bytes against a serial
in-process run (:func:`repro.analysis.parallel.run_point`) -- the
byte-identity contract -- and writes ``BENCH_serve.json``.

Gates (all must hold for exit code 0):

* total requests >= 200;
* zero 5xx responses anywhere;
* at least one 429 during the burst, and every burst request
  eventually succeeded on retry;
* warm-phase throughput >= 5x cold-phase throughput;
* byte-identical served vs serial result.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.parallel import run_point
from .client import Backpressure, ServeClient, ServeError
from .protocol import canonical_result_bytes, wire_to_result

LOADBENCH_SCHEMA = 1

#: Workloads x window sizes making up the cold/warm sweep.  6 x 3 = 18
#: unique cache points; every other phase reuses this catalogue.
SWEEP_WORKLOADS = ("LLL1", "LLL2", "LLL3", "LLL5", "LLL7", "LLL12")
SWEEP_WINDOWS = (4, 8, 12)

#: The probe point for the byte-identity check.
IDENTITY_REQUEST = {"workload": "LLL3", "config": {"window_size": 8}}


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class PhaseStats:
    """Aggregated outcome of one load phase."""

    name: str
    requests: int = 0
    ok: int = 0
    errors: int = 0
    server_errors: int = 0   # any 5xx
    backpressure: int = 0    # 429 responses observed
    retries: int = 0         # attempts beyond the first
    cache_hits: int = 0
    seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: Concurrent clients record into one PhaseStats; every mutation
    #: in ``LoadGenerator._fire`` happens under this lock.
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False, compare=False)

    @property
    def throughput(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "server_errors": self.server_errors,
            "backpressure_429": self.backpressure,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput, 2),
            "latency_p50_ms": round(
                _percentile(self.latencies, 0.50) * 1000, 3),
            "latency_p95_ms": round(
                _percentile(self.latencies, 0.95) * 1000, 3),
            "latency_p99_ms": round(
                _percentile(self.latencies, 0.99) * 1000, 3),
        }


class LoadGenerator:
    """Drives the phases against one server and applies the gates."""

    def __init__(self, host: str, port: int,
                 request_timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.phases: List[PhaseStats] = []

    def _client(self) -> ServeClient:
        return ServeClient(self.host, self.port,
                           timeout=self.request_timeout)

    def _sweep_requests(self) -> List[Dict[str, Any]]:
        return [
            {"workload": name, "config": {"window_size": window},
             "label": f"sweep-{name}-w{window}"}
            for name in SWEEP_WORKLOADS
            for window in SWEEP_WINDOWS
        ]

    # ------------------------------------------------------------------
    # one measured request
    # ------------------------------------------------------------------

    def _fire(self, stats: PhaseStats, request: Dict[str, Any],
              max_attempts: int = 1) -> Optional[Dict[str, Any]]:
        """One request from a fresh client; records into ``stats``."""
        client = self._client()
        attempt = 0
        started = time.perf_counter()
        while True:
            attempt += 1
            if attempt > 1:
                with stats.lock:
                    stats.retries += 1
            try:
                body = client.run_raw(request, max_attempts=1)
            except Backpressure as busy:
                with stats.lock:
                    stats.backpressure += 1
                if attempt < max_attempts:
                    time.sleep(min(2.0, float(busy.retry_after)))
                    continue
                with stats.lock:
                    stats.requests += 1
                    stats.errors += 1
                    stats.latencies.append(
                        time.perf_counter() - started)
                return None
            except ServeError as exc:
                with stats.lock:
                    stats.requests += 1
                    stats.errors += 1
                    if exc.status >= 500:
                        stats.server_errors += 1
                    stats.latencies.append(
                        time.perf_counter() - started)
                return None
            with stats.lock:
                stats.requests += 1
                stats.ok += 1
                if body.get("cache_hit"):
                    stats.cache_hits += 1
                stats.latencies.append(time.perf_counter() - started)
            return body

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _timed_phase(self, name: str, thunks: List,
                     workers: int) -> PhaseStats:
        stats = PhaseStats(name=name)
        started = time.perf_counter()
        if workers <= 1:
            for thunk in thunks:
                thunk(stats)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(thunk, stats) for thunk in thunks]
                for future in futures:
                    future.result()
        stats.seconds = time.perf_counter() - started
        self.phases.append(stats)
        return stats

    def run_warmup(self) -> PhaseStats:
        requests = self._sweep_requests()[:4]
        return self._timed_phase(
            "warmup",
            [lambda s, r=req: self._fire(s, r, max_attempts=8)
             for req in requests],
            workers=2,
        )

    def run_cold_sweep(self) -> PhaseStats:
        return self._timed_phase(
            "cold_sweep",
            [lambda s, r=req: self._fire(s, r, max_attempts=8)
             for req in self._sweep_requests()],
            workers=4,
        )

    def run_warm_sweep(self, repeats: int = 3) -> PhaseStats:
        requests = self._sweep_requests() * repeats
        return self._timed_phase(
            "warm_sweep",
            [lambda s, r=req: self._fire(s, r, max_attempts=8)
             for req in requests],
            workers=4,
        )

    def run_scale_sweep(self,
                        levels: tuple = (1, 2, 4, 8),
                        per_level: int = 30) -> List[PhaseStats]:
        out = []
        sweep = self._sweep_requests()
        for level in levels:
            requests = [sweep[i % len(sweep)] for i in range(per_level)]
            out.append(self._timed_phase(
                f"scale_c{level}",
                [lambda s, r=req: self._fire(s, r, max_attempts=8)
                 for req in requests],
                workers=level,
            ))
        return out

    def run_burst(self, salvo: int = 48) -> PhaseStats:
        """Over-capacity salvo of unique points.

        Unique ``max_cycles`` values give every request a distinct
        cache key, so neither the cache nor the coalescer can absorb
        the salvo -- it must hit admission control.  Every client
        retries on 429 until it succeeds (bounded attempts).
        """
        requests = [
            {"workload": "LLL2",
             "config": {"window_size": 4,
                        "max_cycles": 1_000_000 + i},
             "label": f"burst-{i}"}
            for i in range(salvo)
        ]
        return self._timed_phase(
            "burst",
            [lambda s, r=req: self._fire(s, r, max_attempts=30)
             for req in requests],
            workers=salvo,
        )

    # ------------------------------------------------------------------
    # byte identity
    # ------------------------------------------------------------------

    def check_byte_identity(self) -> Dict[str, Any]:
        """Served result vs the same point run serially in-process."""
        from .protocol import build_workload_registry, parse_sim_request

        body = self._client().run_raw(
            dict(IDENTITY_REQUEST), max_attempts=8
        )
        served = wire_to_result(body["result"])
        request = parse_sim_request(
            dict(IDENTITY_REQUEST), build_workload_registry()
        )
        serial = run_point(request.point)
        served_bytes = canonical_result_bytes(served)
        serial_bytes = canonical_result_bytes(serial)
        return {
            "point": dict(IDENTITY_REQUEST),
            "identical": served_bytes == serial_bytes,
            "served_sha_len": len(served_bytes),
            "serial_sha_len": len(serial_bytes),
        }

    # ------------------------------------------------------------------
    # the full benchmark
    # ------------------------------------------------------------------

    def run_all(self) -> Dict[str, Any]:
        self._client().wait_ready(timeout=60.0)
        self.run_warmup()
        cold = self.run_cold_sweep()
        warm = self.run_warm_sweep()
        self.run_scale_sweep()
        burst = self.run_burst()
        identity = self.check_byte_identity()
        health = self._client().healthz()

        total_requests = sum(p.requests for p in self.phases)
        total_5xx = sum(p.server_errors for p in self.phases)
        warm_speedup = (
            warm.throughput / cold.throughput
            if cold.throughput > 0 else 0.0
        )
        gates = {
            "min_requests_200": total_requests >= 200,
            "zero_5xx": total_5xx == 0,
            "burst_saw_429": burst.backpressure >= 1,
            "burst_retries_succeeded":
                burst.ok == burst.requests and burst.requests > 0,
            "warm_speedup_5x": warm_speedup >= 5.0,
            "byte_identity": bool(identity["identical"]),
        }
        return {
            "schema": LOADBENCH_SCHEMA,
            "target": f"{self.host}:{self.port}",
            "server": {
                "version": health.get("version"),
                "jobs": health.get("jobs"),
                "capacity": health.get("capacity"),
            },
            "phases": [p.to_json() for p in self.phases],
            "totals": {
                "requests": total_requests,
                "ok": sum(p.ok for p in self.phases),
                "errors": sum(p.errors for p in self.phases),
                "server_errors_5xx": total_5xx,
                "backpressure_429":
                    sum(p.backpressure for p in self.phases),
                "retries": sum(p.retries for p in self.phases),
                "cache_hits": sum(p.cache_hits for p in self.phases),
                "warm_over_cold_throughput": round(warm_speedup, 2),
            },
            "byte_identity": identity,
            "gates": gates,
            "passed": all(gates.values()),
        }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a loadbench report."""
    lines = [
        f"repro loadbench against {report['target']} "
        f"(server {report['server']['version']}, "
        f"jobs={report['server']['jobs']}, "
        f"capacity={report['server']['capacity']})",
        "",
        f"{'phase':<12} {'req':>5} {'ok':>5} {'429':>5} "
        f"{'rps':>8} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}",
    ]
    for phase in report["phases"]:
        lines.append(
            f"{phase['name']:<12} {phase['requests']:>5} "
            f"{phase['ok']:>5} {phase['backpressure_429']:>5} "
            f"{phase['throughput_rps']:>8.1f} "
            f"{phase['latency_p50_ms']:>8.1f} "
            f"{phase['latency_p95_ms']:>8.1f} "
            f"{phase['latency_p99_ms']:>8.1f}"
        )
    totals = report["totals"]
    lines += [
        "",
        f"totals: {totals['requests']} requests, "
        f"{totals['ok']} ok, {totals['server_errors_5xx']} 5xx, "
        f"{totals['backpressure_429']} backpressured, "
        f"{totals['cache_hits']} cache hits",
        f"warm/cold throughput: "
        f"{totals['warm_over_cold_throughput']}x",
        f"byte identity: "
        f"{'OK' if report['byte_identity']['identical'] else 'MISMATCH'}",
        "",
        "gates:",
    ]
    for gate, passed in sorted(report["gates"].items()):
        lines.append(f"  {'PASS' if passed else 'FAIL'}  {gate}")
    lines.append(
        "RESULT: " + ("PASS" if report["passed"] else "FAIL")
    )
    return "\n".join(lines)


def write_report_json(report: Dict[str, Any], path: str) -> None:
    """Atomic write (the bench convention: tmp + rename)."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
