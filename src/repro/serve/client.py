"""Blocking client for the simulation service.

A thin ``http.client`` wrapper (stdlib only) speaking the protocol in
:mod:`repro.serve.protocol`.  Results come back as real
:class:`~repro.machine.stats.SimResult` objects via the wire
deserializer, so client code is indifferent to whether a point ran
locally or over the network.

Backpressure handling is built in: a 429 raises
:class:`Backpressure` carrying the server's ``Retry-After`` hint, and
the ``run``/``run_batch`` helpers optionally honor it with bounded
retries -- the intended client-side half of the admission-control
contract.

.. code-block:: python

    client = ServeClient("127.0.0.1", 8642)
    client.wait_ready()
    result = client.run({"workload": "LLL3",
                         "config": {"window_size": 8}})
    print(result.ipc())
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from ..machine.stats import SimResult
from .protocol import wire_to_result


class ServeError(Exception):
    """A non-2xx response from the service.

    ``status`` is the HTTP code; ``reason`` and ``detail`` hold the
    machine-readable error body (when the server sent one).
    """

    def __init__(self, status: int, reason: str, message: str,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"HTTP {status} [{reason}]: {message}")
        self.status = status
        self.reason = reason
        self.message = message
        self.detail = detail or {}


class Backpressure(ServeError):
    """HTTP 429: the admission queue is full; retry after a delay."""

    def __init__(self, retry_after: int,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(429, "busy",
                         f"server busy; retry after {retry_after}s",
                         detail)
        self.retry_after = retry_after


class ServeClient:
    """One connection-per-request blocking client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # raw transport
    # ------------------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange; returns (status, headers, body bytes)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            lowered = {
                name.lower(): value
                for name, value in response.getheaders()
            }
            return response.status, lowered, data
        finally:
            conn.close()

    def request_json(self, method: str, path: str,
                     payload: Optional[Dict[str, Any]] = None
                     ) -> Tuple[int, Dict[str, str], Any]:
        status, headers, data = self.request(method, path, payload)
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"raw": data.decode("latin-1")}
        return status, headers, decoded

    @staticmethod
    def _raise_for_error(status: int, headers: Dict[str, str],
                         body: Any) -> None:
        error = body.get("error", {}) if isinstance(body, dict) else {}
        if status == 429:
            retry_after = int(
                headers.get("retry-after",
                            str(error.get("retry_after", 1)))
            )
            raise Backpressure(retry_after, detail=error)
        raise ServeError(
            status,
            str(error.get("reason", "error")),
            str(error.get("message", f"HTTP {status}")),
            detail=error,
        )

    # ------------------------------------------------------------------
    # simulation calls
    # ------------------------------------------------------------------

    def run_raw(self, request: Dict[str, Any],
                max_attempts: int = 1,
                backoff_cap: float = 5.0) -> Dict[str, Any]:
        """POST /run; returns the raw response entry.

        With ``max_attempts > 1``, 429s are retried after the server's
        ``Retry-After`` hint (capped at ``backoff_cap`` seconds so
        tests stay fast).  Other errors raise immediately.
        """
        attempt = 0
        while True:
            attempt += 1
            status, headers, body = self.request_json(
                "POST", "/run", request
            )
            if status == 200:
                return body
            if status == 429 and attempt < max_attempts:
                retry_after = min(
                    backoff_cap,
                    float(headers.get("retry-after", "1")),
                )
                time.sleep(max(0.05, retry_after))
                continue
            self._raise_for_error(status, headers, body)

    def run(self, request: Dict[str, Any],
            max_attempts: int = 1,
            backoff_cap: float = 5.0) -> SimResult:
        """POST /run; returns the reconstructed :class:`SimResult`."""
        body = self.run_raw(request, max_attempts, backoff_cap)
        return wire_to_result(body["result"])

    def run_batch(self, requests: List[Dict[str, Any]],
                  max_attempts: int = 1,
                  backoff_cap: float = 5.0) -> List[Dict[str, Any]]:
        """POST /batch; returns the per-item entry list.

        Items are dicts: ``{"ok": True, "result": ...}`` or
        ``{"ok": False, "error": ...}`` -- per-item failures do not
        raise, matching the batch semantics.
        """
        attempt = 0
        while True:
            attempt += 1
            status, headers, body = self.request_json(
                "POST", "/batch", {"requests": requests}
            )
            if status == 200:
                return body["results"]
            if status == 429 and attempt < max_attempts:
                retry_after = min(
                    backoff_cap,
                    float(headers.get("retry-after", "1")),
                )
                time.sleep(max(0.05, retry_after))
                continue
            self._raise_for_error(status, headers, body)

    # ------------------------------------------------------------------
    # observability calls
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        status, headers, body = self.request_json("GET", "/healthz")
        if status != 200:
            self._raise_for_error(status, headers, body)
        return body

    def metrics_text(self) -> str:
        status, _, data = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, "error", "metrics unavailable")
        return data.decode("utf-8")

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.1) -> Dict[str, Any]:
        """Poll /healthz until the service answers or time runs out."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, ServeError) as exc:
                last_error = exc
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not ready within "
            f"{timeout}s: {last_error}"
        )
