"""A minimal Prometheus text-format metrics registry (stdlib only).

Exactly the three instrument kinds the serving layer needs -- counters,
gauges, and cumulative histograms -- rendered in the Prometheus
exposition text format (version 0.0.4) by :meth:`MetricsRegistry.render`.
All instruments are thread-safe: request handlers run on the event
loop while the dispatcher settles points from its own thread.

Labels are passed as keyword arguments at observation time::

    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_serve_requests_total", "HTTP requests", ("endpoint", "code")
    )
    requests.inc(endpoint="/run", code="200")
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: multi-minute cold simulations.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(label_names: Sequence[str],
               labels: Dict[str, str]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None
                   ) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\")
                         .replace('"', '\\"').replace("\n", "\\n"))
        for name, value in pairs
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Instrument:
    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(key)} {_render_value(value)}"
            )
        return lines


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, in-flight points)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(key)} {_render_value(value)}"
            )
        return lines


class Histogram(_Instrument):
    """A cumulative histogram of observations (request latency)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(buckets))
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        slot = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * len(self.buckets)
            )
            if slot < len(counts):
                counts[slot] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._totals.get(key, 0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            keys = sorted(self._totals) or (
                [()] if not self.label_names else []
            )
            for key in keys:
                counts = self._counts.get(key, [0] * len(self.buckets))
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    lines.append(
                        f"{self.name}_bucket"
                        f"{_render_labels(key, ('le', repr(bound)))} "
                        f"{cumulative}"
                    )
                total = self._totals.get(key, 0)
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, ('le', '+Inf'))} {total}"
                )
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} "
                    f"{_render_value(self._sums.get(key, 0.0))}"
                )
                lines.append(
                    f"{self.name}_count{_render_labels(key)} {total}"
                )
        return lines


class MetricsRegistry:
    """Ordered collection of instruments with one text rendering."""

    def __init__(self) -> None:
        self._instruments: List[_Instrument] = []
        self._lock = threading.Lock()

    def _register(self, instrument: _Instrument) -> None:
        with self._lock:
            if any(i.name == instrument.name for i in self._instruments):
                raise ValueError(
                    f"duplicate metric name {instrument.name!r}"
                )
            self._instruments.append(instrument)

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        instrument = Counter(name, help_text, label_names)
        self._register(instrument)
        return instrument

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = ()) -> Gauge:
        instrument = Gauge(name, help_text, label_names)
        self._register(instrument)
        return instrument

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        instrument = Histogram(name, help_text, label_names, buckets)
        self._register(instrument)
        return instrument

    def render(self) -> str:
        """The full exposition document (trailing newline included)."""
        with self._lock:
            instruments = list(self._instruments)
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"
