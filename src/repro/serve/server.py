"""Asyncio JSON-over-HTTP front end for the simulation service.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams
(stdlib only -- no web framework), serving four endpoints:

* ``POST /run``    -- one simulation request -> one result;
* ``POST /batch``  -- ``{"requests": [...]}`` -> per-item results
  (invalid or failing items settle individually; they never poison the
  batch);
* ``GET /healthz`` -- liveness + version + queue snapshot;
* ``GET /metrics`` -- Prometheus text format.

Status mapping: protocol violations are **400** with a machine-readable
reason; a full admission queue is **429** with ``Retry-After``; a batch
with more distinct points than the service's total admission capacity
is **413** (it could never be admitted, so retrying is pointless); a
simulation that *runs and fails* (deadlock, engine fault) is **422**
with the :class:`~repro.machine.diagnostics.EngineDiagnostic` JSON in
the error body; drain mode is **503**; an expired request deadline is
**504**.  5xx responses otherwise indicate server bugs -- the load
generator's zero-5xx gate leans on this.

Shutdown: SIGTERM/SIGINT flips the service into drain mode (new work is
refused, queued work finishes, the worker pool is released) before the
loop stops -- ``kill -TERM`` on a busy server loses no admitted work.

Every request emits one structured (JSON) access-log line on the
``repro.serve.access`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..version import get_version
from .protocol import (
    LIMITS,
    ProtocolError,
    parse_batch,
    parse_sim_request,
    result_to_wire,
)
from .service import (
    BatchOverCapacity,
    ServiceBusy,
    ServiceDraining,
    SimService,
)

access_log = logging.getLogger("repro.serve.access")

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Hard bounds on the request head, so a client that stalls or dribbles
#: after the request line (slowloris) cannot hold a handler forever or
#: grow the header dict without bound.
_MAX_HEADER_BYTES = 16_384
_MAX_HEADER_COUNT = 100

#: Endpoint label values for metrics (unknown paths collapse to
#: "other" so a path-scanning client cannot explode label cardinality).
_KNOWN_ENDPOINTS = ("/run", "/batch", "/healthz", "/metrics")


class _Response:
    """One HTTP response plus the access-log annotations."""

    def __init__(self, status: int, body: bytes,
                 content_type: str = "application/json",
                 headers: Optional[List[Tuple[str, str]]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or []
        self.meta = meta or {}


def _json_response(status: int, payload: Dict[str, Any],
                   headers: Optional[List[Tuple[str, str]]] = None,
                   meta: Optional[Dict[str, Any]] = None) -> _Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _Response(status, body, "application/json", headers, meta)


def _error_response(status: int, reason: str, message: str,
                    headers: Optional[List[Tuple[str, str]]] = None,
                    **detail: Any) -> _Response:
    error: Dict[str, Any] = {"reason": reason, "message": message}
    error.update(detail)
    return _json_response(
        status, {"ok": False, "error": error}, headers,
        meta={"error": reason},
    )


class ServeApp:
    """HTTP front end bound to one :class:`SimService`."""

    def __init__(self, service: SimService,
                 request_timeout: Optional[float] = None,
                 idle_timeout: float = 60.0) -> None:
        self.service = service
        self.version = get_version()
        self.idle_timeout = idle_timeout
        if request_timeout is None and service.runner.timeout:
            # A request can outlive one point attempt by the retry
            # budget; past that the dispatcher has already failed it.
            request_timeout = (
                service.runner.timeout
                * (service.runner.max_retries + 2) + 30.0
            )
        self.request_timeout = request_timeout
        self._shutdown = asyncio.Event()
        self._conn_tasks: set = set()
        registry = service.metrics
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "HTTP requests, by endpoint and status code",
            ("endpoint", "code"),
        )
        self._m_latency = registry.histogram(
            "repro_serve_request_seconds",
            "HTTP request latency in seconds",
            ("endpoint",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        self.service.start()
        return await asyncio.start_server(self._handle_conn, host, port)

    async def _close_connections(self) -> None:
        """Cancel idle keep-alive connection handlers at shutdown."""
        tasks = [task for task in self._conn_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def run(self, host: str, port: int,
                  install_signals: bool = True,
                  ready_message: bool = True) -> int:
        """Serve until SIGTERM/SIGINT, then drain gracefully."""
        server = await self.start(host, port)
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support
        bound = server.sockets[0].getsockname()
        if ready_message:
            print(
                f"repro serve {self.version}: listening on "
                f"{bound[0]}:{bound[1]} "
                f"(jobs={self.service.jobs}, "
                f"queue={self.service.admission.capacity})",
                flush=True,
            )
        await self._shutdown.wait()
        server.close()
        await server.wait_closed()
        drained = await loop.run_in_executor(None, self.service.drain)
        await self._close_connections()
        if ready_message:
            print(
                "repro serve: drained"
                if drained else "repro serve: drain timed out",
                flush=True,
            )
        return 0 if drained else 1

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if peer else "?"
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer, remote)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    @staticmethod
    async def _discard_body(reader: asyncio.StreamReader,
                            length: int,
                            cap: int = 16_000_000) -> None:
        """Read and drop up to ``cap`` bytes of a rejected body."""
        remaining = min(length, cap) if length > 0 else cap
        try:
            while remaining > 0:
                chunk = await asyncio.wait_for(
                    reader.read(min(65536, remaining)), 5.0
                )
                if not chunk:
                    break
                remaining -= len(chunk)
        except (asyncio.TimeoutError, ConnectionError):
            pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          remote: str) -> bool:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self.idle_timeout
            )
        except asyncio.TimeoutError:
            return False
        if not request_line.strip():
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._write(
                writer, _error_response(
                    400, "bad_request", "malformed request line",
                ), close=True,
            )
            return False
        method, target, http_version = parts
        # The whole request head reads under the idle deadline, and
        # within hard size/count caps: a client that stalls mid-headers
        # or streams headers forever is cut off, not waited on.
        headers: Dict[str, str] = {}
        header_bytes = 0
        try:
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.idle_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                header_bytes += len(line)
                if header_bytes > _MAX_HEADER_BYTES \
                        or len(headers) >= _MAX_HEADER_COUNT:
                    await self._write(
                        writer, _error_response(
                            400, "headers_too_large",
                            f"request headers exceed "
                            f"{_MAX_HEADER_COUNT} lines / "
                            f"{_MAX_HEADER_BYTES} bytes",
                        ), close=True,
                    )
                    return False
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
        except asyncio.TimeoutError:
            return False
        path = target.split("?", 1)[0]
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        started = time.perf_counter()
        oversized = length > LIMITS["max_body_bytes"] or length < 0
        if oversized:
            # Drain (bounded) what the client already sent, so it can
            # finish writing and actually read the 400 instead of
            # dying on a broken pipe.
            await self._discard_body(reader, length)
            response = _error_response(
                400, "body_too_large",
                f"request body exceeds "
                f"{LIMITS['max_body_bytes']} bytes",
                limit=LIMITS["max_body_bytes"], got=length,
            )
            body = b""
        else:
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    return False
            else:
                body = b""
            try:
                response = await self._dispatch(method, path, body)
            except Exception as exc:  # noqa: BLE001 - last-resort guard
                logging.getLogger("repro.serve").exception(
                    "handler error for %s %s", method, path
                )
                response = _error_response(
                    500, "internal_error",
                    f"{type(exc).__name__}: {exc}",
                )
        duration = time.perf_counter() - started
        wants_close = (
            headers.get("connection", "").lower() == "close"
            or http_version.upper() == "HTTP/1.0"
            or oversized
        )
        await self._write(writer, response, close=wants_close)
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        self._m_requests.inc(endpoint=endpoint, code=str(response.status))
        self._m_latency.observe(duration, endpoint=endpoint)
        self._access_log(remote, method, path, response,
                         len(body), duration)
        return not wants_close

    async def _write(self, writer: asyncio.StreamWriter,
                     response: _Response, close: bool) -> None:
        head = [
            f"HTTP/1.1 {response.status} "
            f"{_STATUS_TEXT.get(response.status, 'Unknown')}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        head += [f"{name}: {value}" for name, value in response.headers]
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
            + response.body
        )
        await writer.drain()

    def _access_log(self, remote: str, method: str, path: str,
                    response: _Response, bytes_in: int,
                    duration: float) -> None:
        record = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "remote": remote,
            "method": method,
            "path": path,
            "status": response.status,
            "ms": round(duration * 1000.0, 3),
            "bytes_in": bytes_in,
            "bytes_out": len(response.body),
        }
        record.update(response.meta)
        access_log.info(json.dumps(record, sort_keys=True))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> _Response:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics()
        if path == "/run":
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._run_single(body)
        if path == "/batch":
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._run_batch(body)
        return _error_response(
            404, "not_found", f"no such endpoint: {path}",
        )

    @staticmethod
    def _method_not_allowed(allowed: str) -> _Response:
        return _error_response(
            405, "method_not_allowed",
            f"only {allowed} is supported here",
            headers=[("Allow", allowed)],
        )

    def _healthz(self) -> _Response:
        payload = self.service.health()
        payload["version"] = self.version
        return _json_response(200, payload)

    def _metrics(self) -> _Response:
        self.service.sync_fleet_metrics()
        text = self.service.metrics.render()
        return _Response(
            200, text.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # ------------------------------------------------------------------
    # simulation endpoints
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                "bad_json", f"request body is not valid JSON: {exc}",
            ) from None

    async def _await_outcome(self, future: Any,
                             timeout: Optional[float] = None):
        """Await a dispatcher future under a deadline, without owning it.

        The shield matters: the concurrent future is settled by the
        dispatcher thread and may be shared by coalesced followers.
        ``wait_for`` cancels on timeout, and ``wrap_future`` chains
        that cancellation back into the (always-pending) concurrent
        future -- which would make the dispatcher's ``set_result``
        raise and abort every other waiter of the point.  Shielding
        confines the timeout to this waiter alone.
        """
        if timeout is None:
            timeout = self.request_timeout
        return await asyncio.wait_for(
            asyncio.shield(asyncio.wrap_future(future)), timeout
        )

    @staticmethod
    def _outcome_entry(outcome: Any, coalesced: bool) -> Dict[str, Any]:
        if outcome.ok:
            return {
                "ok": True,
                "result": result_to_wire(outcome.result),
                "cache_hit": outcome.cache_hit,
                "coalesced": coalesced,
                "attempts": outcome.attempts,
            }
        error: Dict[str, Any] = {
            "reason": "simulation_failed",
            "message": outcome.error or "unknown failure",
        }
        if outcome.diagnostic is not None:
            error["diagnostic"] = outcome.diagnostic
        return {"ok": False, "error": error}

    async def _run_single(self, body: bytes) -> _Response:
        try:
            payload = self._parse_json(body)
            request = parse_sim_request(payload, self.service.workloads)
        except ProtocolError as exc:
            return _json_response(
                400, {"ok": False, "error": exc.to_json()},
                meta={"error": exc.reason},
            )
        try:
            future, coalesced = self.service.submit(request)
        except ServiceBusy as busy:
            return _error_response(
                429, "busy",
                str(busy),
                headers=[("Retry-After", str(busy.retry_after))],
                retry_after=busy.retry_after,
            )
        except ServiceDraining:
            return _error_response(
                503, "draining", "service is draining; no new work",
            )
        try:
            outcome = await self._await_outcome(future)
        except asyncio.TimeoutError:
            return _error_response(
                504, "request_timeout",
                "the simulation did not settle within the request "
                "deadline",
            )
        entry = self._outcome_entry(outcome, coalesced)
        meta = {
            "coalesced": coalesced,
            "cache_hit": bool(entry.get("cache_hit")),
            "engine": request.point.engine,
            "workload": request.point.workload.name,
        }
        if entry["ok"]:
            return _json_response(200, entry, meta=meta)
        meta["error"] = "simulation_failed"
        return _json_response(422, entry, meta=meta)

    async def _run_batch(self, body: bytes) -> _Response:
        try:
            payload = self._parse_json(body)
            items = parse_batch(payload)
        except ProtocolError as exc:
            return _json_response(
                400, {"ok": False, "error": exc.to_json()},
                meta={"error": exc.reason},
            )
        entries: List[Optional[Dict[str, Any]]] = [None] * len(items)
        valid: List[Tuple[int, Any]] = []
        for index, item in enumerate(items):
            try:
                valid.append(
                    (index,
                     parse_sim_request(item, self.service.workloads))
                )
            except ProtocolError as exc:
                entries[index] = {"ok": False, "error": exc.to_json()}
        submissions: List[Tuple[int, Any, bool]] = []
        if valid:
            try:
                futures = self.service.submit_many(
                    [request for _, request in valid]
                )
            except ServiceBusy as busy:
                return _error_response(
                    429, "busy", str(busy),
                    headers=[("Retry-After", str(busy.retry_after))],
                    retry_after=busy.retry_after,
                )
            except BatchOverCapacity as exc:
                return _error_response(
                    413, "batch_exceeds_capacity", str(exc),
                    fresh_points=exc.fresh, capacity=exc.capacity,
                )
            except ServiceDraining:
                return _error_response(
                    503, "draining", "service is draining; no new work",
                )
            submissions = [
                (index, future, coalesced)
                for (index, _), (future, coalesced)
                in zip(valid, futures)
            ]
        # One deadline for the whole batch: each item awaits only the
        # time the batch has left, so the worst case is one request
        # timeout, not one per item.
        deadline = (
            time.monotonic() + self.request_timeout
            if self.request_timeout is not None else None
        )
        for index, future, coalesced in submissions:
            remaining = (
                max(0.0, deadline - time.monotonic())
                if deadline is not None else None
            )
            try:
                outcome = await self._await_outcome(
                    future, timeout=remaining
                )
            except asyncio.TimeoutError:
                entries[index] = {
                    "ok": False,
                    "error": {
                        "reason": "request_timeout",
                        "message": "point did not settle in time",
                    },
                }
                continue
            entries[index] = self._outcome_entry(outcome, coalesced)
        n_ok = sum(1 for entry in entries if entry and entry["ok"])
        return _json_response(
            200,
            {
                "ok": n_ok == len(entries),
                "results": entries,
                "n_ok": n_ok,
                "n_error": len(entries) - n_ok,
            },
            meta={"points": len(entries), "ok_points": n_ok},
        )


# ----------------------------------------------------------------------
# embedding helper (tests, loadgen --spawn)
# ----------------------------------------------------------------------


class ServerHandle:
    """A running server on a background thread."""

    def __init__(self, app: ServeApp, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop, port: int) -> None:
        self.app = app
        self.service = app.service
        self.thread = thread
        self.loop = loop
        self.port = port

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain, then stop the loop and join the thread."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.app.request_shutdown)
            self.thread.join(timeout)


def serve_in_background(host: str = "127.0.0.1", port: int = 0,
                        request_timeout: Optional[float] = None,
                        idle_timeout: float = 60.0,
                        **service_kwargs: Any) -> ServerHandle:
    """Start a full server on an ephemeral port; returns its handle.

    Used by the test suite and ``repro loadbench --spawn``: the handle
    exposes the bound ``port``, the underlying service (for white-box
    assertions), and ``stop()`` for a graceful drain.
    """
    service = SimService(**service_kwargs)
    app = ServeApp(service, request_timeout=request_timeout,
                   idle_timeout=idle_timeout)
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def _run() -> None:
            server = await app.start(host, port)
            holder["port"] = server.sockets[0].getsockname()[1]
            started.set()
            await app._shutdown.wait()
            server.close()
            await server.wait_closed()
            await loop.run_in_executor(None, service.drain)
            await app._close_connections()

        try:
            loop.run_until_complete(_run())
        finally:
            loop.close()

    thread = threading.Thread(
        target=_main, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("server failed to start within 30s")
    return ServerHandle(app, thread, holder["loop"], holder["port"])
