"""Simulation-as-a-service: run the simulator fleet behind a socket.

``repro serve`` turns the repository's simulators into a long-lived
JSON-over-HTTP service with the properties an inference server needs:
a bounded admission queue with explicit backpressure (429 +
``Retry-After``), coalescing of identical in-flight requests, execution
on the self-healing :class:`~repro.analysis.parallel.ParallelRunner`
pool backed by the shared :class:`~repro.analysis.cache.ResultCache`,
Prometheus metrics, and graceful drain on SIGTERM.

Layering (stdlib only, no web framework):

* :mod:`~repro.serve.protocol`  -- request/response schemas, input
  limits, and the canonical wire form of a ``SimResult``;
* :mod:`~repro.serve.metrics`   -- a minimal Prometheus text-format
  registry (counters, gauges, histograms);
* :mod:`~repro.serve.admission` -- the bounded admission controller,
  the in-flight coalescer, and the dispatcher hand-off queue;
* :mod:`~repro.serve.service`   -- :class:`SimService`, the engine
  room: admission -> micro-batch -> runner pool -> settle futures;
* :mod:`~repro.serve.server`    -- the asyncio HTTP front end
  (``/run``, ``/batch``, ``/healthz``, ``/metrics``);
* :mod:`~repro.serve.client`    -- a small blocking client (tests,
  load generator) that honours ``Retry-After``;
* :mod:`~repro.serve.loadgen`   -- the closed-loop load generator
  behind ``repro loadbench`` (emits ``BENCH_serve.json``).
"""

from .protocol import (
    LIMITS,
    ProtocolError,
    SimRequest,
    build_workload_registry,
    canonical_result_bytes,
    parse_sim_request,
    result_to_wire,
    wire_to_result,
)
from .service import (
    BatchOverCapacity,
    ServiceBusy,
    ServiceDraining,
    SimService,
)
from .server import ServeApp, serve_in_background
from .client import Backpressure, ServeClient, ServeError

__all__ = [
    "Backpressure",
    "BatchOverCapacity",
    "LIMITS",
    "ProtocolError",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServiceBusy",
    "ServiceDraining",
    "SimRequest",
    "SimService",
    "build_workload_registry",
    "canonical_result_bytes",
    "parse_sim_request",
    "result_to_wire",
    "serve_in_background",
    "wire_to_result",
]
