"""Request/response schemas and limits for the simulation service.

A **simulation request** is a JSON object:

.. code-block:: json

    {
      "program":  "A_IMM A0, 3\\nHALT",
      "workload": "LLL3",
      "engine":   "ruu-bypass",
      "config":   {"window_size": 8},
      "label":    "my-point"
    }

Exactly one of ``program`` (assembly source) or ``workload`` (the name
of a bundled benchmark -- see :func:`build_workload_registry`) must be
present.  ``engine`` defaults to ``ruu-bypass``; ``config`` holds
integer :class:`~repro.machine.config.MachineConfig` field overrides
(the ``latencies`` mapping is not expressible over the wire and is
rejected).  An optional ``"trace": true`` attaches a streaming
observability recorder and returns the full-cycle attribution summary
in ``result.extra.attribution``; traced runs are capped at
``LIMITS["max_trace_cycles"]`` simulated cycles (an explicit larger
``max_cycles`` is refused with the ``trace_too_large`` slug) and never
coalesce with, or read from, the untraced result cache.  A **batch**
is ``{"requests": [<request>, ...]}``.

Validation failures raise :class:`ProtocolError`, which carries a
machine-readable ``reason`` slug plus detail fields; the server maps it
to HTTP 400.  Hard input limits (:data:`LIMITS`) bound every axis a
client could use to wedge a worker: program length, batch size, the
``max_cycles`` budget, and the raw body size.

The **wire form** of a result (:func:`result_to_wire`) reuses the
result cache's lossless serializer and strips only the host-timing
telemetry, which differs run to run by construction.  Everything
deterministic survives byte-identically: ``canonical_result_bytes`` of
a served result equals that of the same point run serially in-process,
and ``tests/test_serve_server.py`` pins exactly that.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from ..analysis.cache import SCHEMA_VERSION, cache_key, deserialize_result, \
    serialize_result
from ..analysis.parallel import SimPoint
from ..analysis.sweeps import ENGINE_FACTORIES
from ..isa import AssemblyError, ProgramError, assemble
from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.memory import Memory
from ..machine.stats import SimResult
from ..workloads import Workload, all_loops, synthetic_suite

#: Protocol-level hard limits.  Every one is enforced with an HTTP 400
#: and a machine-readable reason before the request touches a worker.
LIMITS: Dict[str, int] = {
    "max_program_chars": 100_000,
    "max_batch_size": 64,
    "max_max_cycles": 20_000_000,
    "max_body_bytes": 2_000_000,
    #: Ceiling on the cycle budget of a traced run ("trace": true):
    #: the worker classifies every cycle, so the budget bounds the
    #: extra work a trace request can demand.
    "max_trace_cycles": 2_000_000,
}

#: Default engine for requests that do not name one.
DEFAULT_ENGINE = "ruu-bypass"

#: ``SimResult.extra`` keys that are host-timing telemetry: legitimate
#: to differ between two runs of the same point, so they are excluded
#: from the wire form (and from byte-identity).
VOLATILE_EXTRA_KEYS = frozenset({
    "host_seconds", "host_inst_per_sec", "host_cycles_per_sec",
    "from_cache",
})

#: Config fields a request may override: every integer field of
#: MachineConfig, derived from the dataclass so new knobs are
#: serveable from day one.  ``latencies`` (an FUClass mapping) is the
#: one field with no JSON spelling.
OVERRIDABLE_CONFIG_FIELDS = frozenset(
    field.name for field in dataclasses.fields(MachineConfig)
    if field.name != "latencies"
)


class ProtocolError(Exception):
    """A request the protocol rejects, with a machine-readable reason."""

    def __init__(self, reason: str, message: str,
                 **detail: Any) -> None:
        super().__init__(message)
        self.reason = reason
        self.message = message
        self.detail = detail

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "reason": self.reason,
            "message": self.message,
        }
        payload.update(self.detail)
        return payload


@dataclass(frozen=True)
class SimRequest:
    """A validated simulation request, ready for admission.

    ``key`` is the result-cache content hash of the point -- also the
    coalescing identity: two requests with equal keys are the same
    simulation by construction.
    """

    point: SimPoint
    key: str
    label: str


def build_workload_registry() -> Dict[str, Workload]:
    """Every bundled workload the service accepts by name.

    The Livermore loops (``LLL1``..``LLL14``) at their default sizes
    plus the synthetic microkernels.  Built once at server start; the
    :class:`~repro.workloads.base.Workload` objects are immutable for
    serving purposes (``make_memory`` hands each run a fresh copy).
    """
    registry: Dict[str, Workload] = {}
    for workload in all_loops() + synthetic_suite():
        registry[workload.name] = workload
    return registry


def _parse_config(payload: Any) -> MachineConfig:
    if payload is None:
        return CRAY1_LIKE
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_request", "'config' must be an object of field overrides",
        )
    overrides: Dict[str, int] = {}
    for name, value in payload.items():
        if name not in OVERRIDABLE_CONFIG_FIELDS:
            raise ProtocolError(
                "unknown_config_field",
                f"unknown or unsupported config field {name!r}",
                field=str(name),
                allowed=sorted(OVERRIDABLE_CONFIG_FIELDS),
            )
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "bad_config_value",
                f"config field {name!r} must be an integer, "
                f"got {type(value).__name__}",
                field=name,
            )
        if value < 0:
            raise ProtocolError(
                "bad_config_value",
                f"config field {name!r} must be non-negative, got {value}",
                field=name,
            )
        overrides[name] = value
    max_cycles = overrides.get("max_cycles")
    if max_cycles is not None and max_cycles > LIMITS["max_max_cycles"]:
        raise ProtocolError(
            "max_cycles_too_large",
            f"max_cycles {max_cycles} exceeds the service limit",
            limit=LIMITS["max_max_cycles"],
            got=max_cycles,
        )
    return CRAY1_LIKE.with_(**overrides)


def _parse_source(payload: Dict[str, Any],
                  workloads: Mapping[str, Workload]) -> Workload:
    program_src = payload.get("program")
    workload_name = payload.get("workload")
    if program_src is not None and workload_name is not None:
        raise ProtocolError(
            "ambiguous_source",
            "give either 'program' or 'workload', not both",
        )
    if program_src is None and workload_name is None:
        raise ProtocolError(
            "missing_source",
            "one of 'program' (assembly source) or 'workload' "
            "(a bundled benchmark name) is required",
        )
    if workload_name is not None:
        if not isinstance(workload_name, str) \
                or workload_name not in workloads:
            raise ProtocolError(
                "unknown_workload",
                f"unknown workload {workload_name!r}",
                available=sorted(workloads),
            )
        return workloads[workload_name]
    if not isinstance(program_src, str):
        raise ProtocolError(
            "bad_request", "'program' must be a string of assembly source",
        )
    if len(program_src) > LIMITS["max_program_chars"]:
        raise ProtocolError(
            "program_too_long",
            f"program source is {len(program_src)} chars; "
            f"the service accepts at most {LIMITS['max_program_chars']}",
            limit=LIMITS["max_program_chars"],
            got=len(program_src),
        )
    try:
        program = assemble(program_src, name="request")
    except (AssemblyError, ProgramError) as exc:
        raise ProtocolError(
            "bad_program", f"program does not assemble: {exc}",
        ) from None
    return Workload(
        name="request", program=program, initial_memory=Memory(),
    )


def parse_sim_request(payload: Any,
                      workloads: Mapping[str, Workload]) -> SimRequest:
    """Validate one request object into a :class:`SimRequest`.

    Raises :class:`ProtocolError` on any violation; never touches an
    engine.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_request", "a simulation request must be a JSON object",
        )
    engine = payload.get("engine", DEFAULT_ENGINE)
    if not isinstance(engine, str) or engine not in ENGINE_FACTORIES \
            or engine.startswith("chaos-"):
        raise ProtocolError(
            "unknown_engine",
            f"unknown engine {engine!r}",
            available=sorted(
                name for name in ENGINE_FACTORIES
                if not name.startswith("chaos-")
            ),
        )
    label = payload.get("label", "")
    if not isinstance(label, str):
        raise ProtocolError("bad_request", "'label' must be a string")
    trace = payload.get("trace", False)
    if not isinstance(trace, bool):
        raise ProtocolError(
            "bad_request", "'trace' must be a boolean",
        )
    config = _parse_config(payload.get("config"))
    if trace:
        limit = LIMITS["max_trace_cycles"]
        config_payload = payload.get("config")
        explicit_budget = isinstance(config_payload, dict) \
            and "max_cycles" in config_payload
        if explicit_budget and config.max_cycles > limit:
            raise ProtocolError(
                "trace_too_large",
                f"traced runs accept a max_cycles budget of at most "
                f"{limit}; drop 'trace' or lower 'max_cycles'",
                limit=limit,
                got=config.max_cycles,
            )
        if not explicit_budget and config.max_cycles > limit:
            # The engine default budget exceeds the trace ceiling;
            # clamp so an untraced-sized request stays serveable.
            config = config.with_(max_cycles=limit)
    workload = _parse_source(payload, workloads)
    point = SimPoint(engine, workload, config, trace=trace)
    key = cache_key(engine, workload, config)
    if trace:
        # Traced and untraced runs of one point must never coalesce:
        # the cache key ignores the flag, but a follower waiting on an
        # untraced leader would get a result with no attribution.
        key += ":trace"
    return SimRequest(
        point=point,
        key=key,
        label=label,
    )


def parse_batch(payload: Any) -> List[Any]:
    """Structurally validate a batch envelope; return its items.

    Per-item validation is the caller's job (items settle
    independently); only batch-shape violations reject the whole
    request.
    """
    if not isinstance(payload, dict) \
            or not isinstance(payload.get("requests"), list):
        raise ProtocolError(
            "bad_request",
            "a batch must be {'requests': [<request>, ...]}",
        )
    requests = payload["requests"]
    if not requests:
        raise ProtocolError("empty_batch", "batch has no requests")
    if len(requests) > LIMITS["max_batch_size"]:
        raise ProtocolError(
            "batch_too_large",
            f"batch has {len(requests)} requests; the service accepts "
            f"at most {LIMITS['max_batch_size']}",
            limit=LIMITS["max_batch_size"],
            got=len(requests),
        )
    return requests


def result_to_wire(result: SimResult) -> Dict[str, Any]:
    """The deterministic wire form of a result.

    The cache's lossless serialization minus its schema tag and the
    volatile host-timing extras.
    """
    payload = serialize_result(result)
    payload.pop("schema", None)
    extra = payload.get("extra", {})
    for key in VOLATILE_EXTRA_KEYS:
        extra.pop(key, None)
    return payload


def wire_to_result(payload: Dict[str, Any]) -> SimResult:
    """Rebuild a :class:`SimResult` from its wire form."""
    tagged = dict(payload)
    tagged["schema"] = SCHEMA_VERSION
    return deserialize_result(tagged)


def canonical_result_bytes(result: SimResult) -> bytes:
    """Canonical byte encoding of a result's deterministic face.

    Two results of the same simulation point are equal iff these bytes
    are equal -- the service's byte-identity contract.
    """
    return json.dumps(
        result_to_wire(result), sort_keys=True, separators=(",", ":"),
    ).encode()
