"""Admission control for the simulation service.

The serving layer applies the queuing lesson of the source material one
level up from the issue queue: a shared bounded buffer between arrivals
(HTTP requests) and servers (pool workers), with explicit backpressure
when occupancy hits the bound -- the RUU bounds its shared queue in
hardware; the service bounds its admission queue and says *429 + Retry-
After* instead of stalling the pipe.

Three small, independently testable pieces:

* :class:`AdmissionController` -- a counting bound over *pending*
  points (queued + in flight).  All-or-nothing acquisition keeps batch
  admission atomic: a batch is either fully admitted or rejected whole,
  never half-queued.  Tracks an EWMA of per-point service time to give
  rejected clients an honest ``Retry-After`` estimate.
* :class:`Coalescer` -- deduplicates identical in-flight simulations.
  The identity is the result-cache content hash, so "identical" has
  exactly the cache's meaning: same engine, program, memory image, and
  config.  Followers attach to the leader's future and consume no
  admission capacity -- N simultaneous requests for one point cost one
  simulation.
* :class:`HandoffQueue` -- the thread-safe bridge from event-loop
  handlers to the dispatcher thread, with micro-batch draining: the
  dispatcher blocks for the first item, then sweeps whatever else has
  arrived (up to a cap) into the same runner fan-out.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .protocol import SimRequest


@dataclass
class Ticket:
    """One admitted point travelling from handler to dispatcher."""

    request: SimRequest
    future: "Future" = field(default_factory=Future)


class AdmissionController:
    """Bound the number of pending (queued or running) points.

    ``capacity`` plays the role of the queue-size knob in a queuing
    model: arrivals beyond it are refused immediately rather than
    building unbounded latency.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._pending = 0
        self._lock = threading.Lock()
        #: EWMA of observed per-point service seconds (admission to
        #: settle), seeding the Retry-After estimate.
        self._service_ewma = 0.5
        self.admitted = 0
        self.rejected = 0

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def try_acquire(self, n: int = 1) -> bool:
        """Atomically claim capacity for ``n`` points (all or nothing)."""
        with self._lock:
            if self._pending + n > self.capacity:
                self.rejected += n
                return False
            self._pending += n
            self.admitted += n
            return True

    def release(self, n: int = 1,
                service_seconds: Optional[float] = None) -> None:
        with self._lock:
            self._pending = max(0, self._pending - n)
            if service_seconds is not None and service_seconds >= 0:
                self._service_ewma = (
                    0.8 * self._service_ewma + 0.2 * service_seconds
                )

    def retry_after_seconds(self, jobs: int) -> int:
        """An honest wait hint for a rejected client.

        Roughly one service-time's worth of drain for the queue ahead
        of you, spread over the worker pool; clamped to [1, 60].
        """
        with self._lock:
            pending = self._pending
            ewma = self._service_ewma
        estimate = ewma * (pending / max(1, jobs) + 1.0)
        return max(1, min(60, int(math.ceil(estimate))))


class Coalescer:
    """Map in-flight cache keys to the future that will settle them."""

    def __init__(self) -> None:
        self._inflight: Dict[str, Future] = {}
        self._lock = threading.Lock()
        self.coalesced = 0

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._inflight

    def lead_or_follow(self, key: str,
                       future: "Future") -> Optional["Future"]:
        """Register ``future`` as leader for ``key``, or return the
        existing leader's future (follower case)."""
        with self._lock:
            leader = self._inflight.get(key)
            if leader is not None:
                self.coalesced += 1
                return leader
            self._inflight[key] = future
            return None

    def settle(self, key: str) -> None:
        """Drop the in-flight entry (before resolving the future, so a
        late follower attaches to the cache, not a stale future)."""
        with self._lock:
            self._inflight.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)


class HandoffQueue:
    """Thread-safe FIFO with blocking micro-batch draining."""

    def __init__(self) -> None:
        self._items: Deque[Ticket] = deque()
        self._cv = threading.Condition()
        self._closed = False

    def put(self, tickets: List[Ticket]) -> None:
        with self._cv:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._items.extend(tickets)
            self._cv.notify()

    def get_batch(self, max_items: int) -> List[Ticket]:
        """Block until work or close; drain up to ``max_items``.

        Returns an empty list only when the queue is closed and fully
        drained -- the dispatcher's exit signal.
        """
        with self._cv:
            while not self._items and not self._closed:
                self._cv.wait()
            batch: List[Ticket] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            return batch

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def __len__(self) -> int:
        with self._cv:
            return len(self._items)
