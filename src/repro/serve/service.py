"""The simulation service's engine room.

:class:`SimService` connects the front-end protocol to the PR-3 fleet
machinery, shaped like an inference server's dynamic batcher:

1. **Admit** -- a validated :class:`~repro.serve.protocol.SimRequest`
   either coalesces onto an identical in-flight point (free), claims
   one slot of bounded admission capacity, or is refused with an
   honest retry hint (:class:`ServiceBusy` -> HTTP 429).
2. **Batch** -- a dispatcher thread drains whatever has arrived into a
   micro-batch and fans it out on one long-lived, self-healing
   :class:`~repro.analysis.parallel.ParallelRunner` (``reuse_pool``:
   warm workers, shared on-disk result cache, per-point timeout-kill,
   crash retry -- and ``serial_fallback`` off, so a wedged point can
   never hijack the dispatcher thread itself).
3. **Settle** -- per-point
   :class:`~repro.analysis.parallel.PointOutcome` verdicts resolve the
   waiting futures; a deadlocked program surfaces its
   :class:`~repro.machine.diagnostics.EngineDiagnostic` instead of
   poisoning the batch.

Every transition feeds the metrics registry, so ``/metrics`` shows the
queue the way Carroll & Lin's model would want to see it: arrival
counts, occupancy, service latency, and saturation (rejections).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Dict, List, Optional, Tuple

from ..analysis.parallel import ParallelRunner, PointOutcome
from .admission import AdmissionController, Coalescer, HandoffQueue, Ticket
from .metrics import MetricsRegistry
from .protocol import SimRequest, build_workload_registry


class ServiceBusy(Exception):
    """Admission capacity exhausted; carries the Retry-After hint."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(
            f"admission queue full; retry after ~{retry_after}s"
        )
        self.retry_after = retry_after


class ServiceDraining(Exception):
    """The service is shutting down and admits no new work."""


class BatchOverCapacity(Exception):
    """A batch that needs more admission slots than the service has.

    Such a batch can never be admitted no matter how long the client
    waits, so it must be refused non-retryably (HTTP 413) instead of
    the honest-looking-but-hopeless 429 loop a capacity check alone
    would produce.
    """

    def __init__(self, fresh: int, capacity: int) -> None:
        super().__init__(
            f"batch needs {fresh} admission slot(s) but the service "
            f"has only {capacity} in total; split the batch"
        )
        self.fresh = fresh
        self.capacity = capacity


class SimService:
    """Bounded, coalescing, self-healing simulation execution."""

    def __init__(self,
                 jobs: int = 2,
                 queue_depth: int = 32,
                 cache_dir: Optional[str] = None,
                 point_timeout: Optional[float] = 120.0,
                 max_retries: int = 1,
                 registry: Optional[MetricsRegistry] = None,
                 batch_max: Optional[int] = None) -> None:
        self.jobs = max(1, jobs)
        self.queue_depth = queue_depth
        self.workloads = build_workload_registry()
        self.runner = ParallelRunner(
            jobs=self.jobs,
            cache_dir=cache_dir,
            timeout=point_timeout,
            max_retries=max_retries,
            serial_fallback=False,
            # Always pooled, even with one job: a 1-worker pool still
            # gives process isolation and timeout-kill, so a wedged or
            # crashing point cannot take the dispatcher thread (and
            # hence the whole service) down with it.
            reuse_pool=True,
        )
        self.admission = AdmissionController(queue_depth)
        self.coalescer = Coalescer()
        self.queue = HandoffQueue()
        #: One micro-batch is at most this many points; a couple of
        #: rounds per pool keeps batches short (latency) while filling
        #: every worker (throughput).
        self.batch_max = batch_max or max(1, self.jobs * 2)
        self._submit_lock = threading.Lock()
        self._draining = False
        self._in_flight = 0
        self._started = time.time()
        self._thread: Optional[threading.Thread] = None

        registry = registry or MetricsRegistry()
        self.metrics = registry
        self._m_points = registry.counter(
            "repro_serve_points_total",
            "Simulation points settled, by status",
            ("status",),
        )
        self._m_cache_hits = registry.counter(
            "repro_serve_cache_hits_total",
            "Points served from the shared result cache",
        )
        self._m_cache_misses = registry.counter(
            "repro_serve_cache_misses_total",
            "Points that had to be simulated",
        )
        self._m_coalesced = registry.counter(
            "repro_serve_coalesced_total",
            "Requests coalesced onto an identical in-flight point",
        )
        self._m_rejected = registry.counter(
            "repro_serve_admission_rejected_total",
            "Points refused because the admission queue was full",
        )
        self._m_batches = registry.counter(
            "repro_serve_batches_total",
            "Micro-batches dispatched to the runner pool",
        )
        self._m_queue_depth = registry.gauge(
            "repro_serve_queue_depth",
            "Points waiting for the dispatcher",
        )
        self._m_inflight = registry.gauge(
            "repro_serve_inflight",
            "Points currently executing on the pool",
        )
        self._m_point_seconds = registry.histogram(
            "repro_serve_point_seconds",
            "Per-point service time (batch wall time / batch size)",
        )
        self._m_fleet = registry.gauge(
            "repro_serve_fleet_events",
            "Cumulative self-healing fleet counters",
            ("kind",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._thread.start()

    def drain(self, timeout: Optional[float] = 60.0) -> bool:
        """Stop admitting, finish queued work, release the pool.

        Returns True when the dispatcher fully drained in time.
        """
        with self._submit_lock:
            self._draining = True
        self.queue.close()
        drained = True
        if self._thread is not None:
            self._thread.join(timeout)
            drained = not self._thread.is_alive()
        # A clean drain joins the idle workers; a timed-out one kills
        # the pool rather than blocking shutdown on a wedged point.
        self.runner.close(wait=drained)
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # submission (event-loop side; must never block)
    # ------------------------------------------------------------------

    def submit(self, request: SimRequest) -> Tuple["Future", bool]:
        """Admit one request; returns ``(future, coalesced)``.

        Raises :class:`ServiceBusy` when the queue is full and
        :class:`ServiceDraining` during shutdown.
        """
        futures = self.submit_many([request])
        return futures[0]

    def submit_many(self,
                    requests: List[SimRequest]
                    ) -> List[Tuple["Future", bool]]:
        """Admit a batch atomically: fully admitted or rejected whole.

        Coalesced items (identical to an in-flight point, or duplicates
        within the batch) consume no capacity.
        """
        with self._submit_lock:
            if self._draining:
                raise ServiceDraining("service is draining")
            fresh_keys = set()
            for request in requests:
                if request.key in fresh_keys \
                        or self.coalescer.contains(request.key):
                    continue
                fresh_keys.add(request.key)
            if len(fresh_keys) > self.admission.capacity:
                raise BatchOverCapacity(
                    len(fresh_keys), self.admission.capacity
                )
            if fresh_keys and not self.admission.try_acquire(
                    len(fresh_keys)):
                self._m_rejected.inc(len(fresh_keys))
                raise ServiceBusy(
                    self.admission.retry_after_seconds(self.jobs)
                )
            out: List[Tuple["Future", bool]] = []
            tickets: List[Ticket] = []
            for request in requests:
                future: "Future" = Future()
                leader = self.coalescer.lead_or_follow(
                    request.key, future
                )
                if leader is None:
                    tickets.append(Ticket(request, future))
                    out.append((future, False))
                else:
                    self._m_coalesced.inc()
                    out.append((leader, True))
            if tickets:
                self.queue.put(tickets)
        self._m_queue_depth.set(len(self.queue))
        return out

    # ------------------------------------------------------------------
    # dispatcher (its own thread; the only caller of the runner)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.queue.get_batch(self.batch_max)
            if not batch:
                return
            self._in_flight = len(batch)
            self._m_inflight.set(len(batch))
            self._m_queue_depth.set(len(self.queue))
            self._m_batches.inc()
            started = time.perf_counter()
            try:
                outcomes = self.runner.run_points_settled(
                    [ticket.request.point for ticket in batch]
                )
            except Exception as exc:  # noqa: BLE001 - defensive: the
                # settled API should never raise; fail the batch's
                # futures rather than silently killing the dispatcher.
                outcomes = [
                    PointOutcome(result=None,
                                 error=f"{type(exc).__name__}: {exc}")
                    for _ in batch
                ]
            wall = time.perf_counter() - started
            per_point = wall / len(batch)
            for ticket, outcome in zip(batch, outcomes):
                with self._submit_lock:
                    self.coalescer.settle(ticket.request.key)
                self.admission.release(1, service_seconds=per_point)
                self._m_point_seconds.observe(per_point)
                if outcome is not None and outcome.ok:
                    self._m_points.inc(status="ok")
                    if outcome.cache_hit:
                        self._m_cache_hits.inc()
                    else:
                        self._m_cache_misses.inc()
                else:
                    self._m_points.inc(status="error")
                outcome = outcome if outcome is not None else \
                    PointOutcome(result=None, error="no outcome")
                try:
                    ticket.future.set_result(outcome)
                except InvalidStateError:
                    # An abandoned waiter cancelled the future; the
                    # work is done and accounted for, the result just
                    # has no audience.  The dispatcher must survive.
                    pass
            self._in_flight = 0
            self._m_inflight.set(0)
            self.sync_fleet_metrics()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def sync_fleet_metrics(self) -> None:
        """Mirror the runner's cumulative FleetReport into gauges."""
        fleet = self.runner.fleet
        for kind, value in (
            ("submissions", fleet.submissions),
            ("retries", fleet.retries),
            ("timeouts", fleet.timeouts),
            ("crashes", fleet.crashes),
            ("pools", fleet.pools),
            ("degraded", len(fleet.degraded)),
            ("failures", len(fleet.failures)),
        ):
            self._m_fleet.set(value, kind=kind)

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` snapshot (version added by the server)."""
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "jobs": self.jobs,
            "queue_depth": len(self.queue),
            "in_flight": self._in_flight,
            "pending": self.admission.pending,
            "capacity": self.admission.capacity,
            "cache_hits": self.runner.hits,
            "cache_misses": self.runner.misses,
            "points_run": self.runner.points_run,
            "workloads": sorted(self.workloads),
        }
