"""Restart drill: prove checkpoint/restore works across the fleet.

The paper's claim is that a precise-interrupt machine can be stopped at
a fault and restarted without losing work.  The drill operationalises
that claim end-to-end for every precise engine and every workload:

1. run the engine with a page fault injected on an address the program
   first touches near the *middle* of its dynamic execution;
2. at the trap, capture a :class:`~repro.machine.checkpoint.Checkpoint`
   and write it to disk;
3. tear the engine down, reload the checkpoint from the file (so the
   restored machine shares no live state with the original), and
   restore into a **fresh** engine -- the same type, and additionally a
   *different* precise type (cross-engine restore, e.g. RUU -> history
   buffer), which is only sound because the checkpoint is purely
   architectural;
4. differentially verify the restored state against the golden ISS
   prefix at the trap point, then service the fault, resume, and verify
   the final registers/memory/retired-count against the golden ISS run.

``python -m repro drill`` runs the whole matrix and reports per-point
outcomes; any divergence is a correctness bug in checkpointing, in the
engine's precise-interrupt machinery, or in both.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..machine.checkpoint import Checkpoint, CheckpointError
from ..machine.config import CRAY1_LIKE, MachineConfig
from ..trace.iss import prefix_state, reference_state
from ..workloads.base import Workload
from ..workloads.livermore import all_loops
from .sweeps import ENGINE_FACTORIES

#: Engines that claim precise interrupts, in drill order.  The
#: cross-engine restore target for each point is the next entry
#: (cyclically), so every pair of neighbours is exercised.
PRECISE_ENGINES = (
    "ruu-bypass",
    "ruu-nobypass",
    "ruu-limited",
    "spec-ruu",
    "reorder-buffer",
    "rob-bypass",
    "history-buffer",
    "future-file",
)


@dataclass
class DrillPoint:
    """One engine x workload restart exercise."""

    engine: str
    workload: str
    restored_into: str
    fault_address: Optional[int] = None
    trap_seq: Optional[int] = None
    trap_cycle: Optional[int] = None
    passed: bool = False
    detail: str = ""

    def describe(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        route = (
            self.engine if self.restored_into == self.engine
            else f"{self.engine} -> {self.restored_into}"
        )
        where = (
            f" trap #{self.trap_seq}@{self.trap_cycle}"
            if self.trap_seq is not None else ""
        )
        suffix = f" ({self.detail})" if self.detail else ""
        return f"  [{verdict}] {route:>32s} on {self.workload}{where}{suffix}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "workload": self.workload,
            "restored_into": self.restored_into,
            "fault_address": self.fault_address,
            "trap_seq": self.trap_seq,
            "trap_cycle": self.trap_cycle,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class DrillReport:
    """Outcome of a restart drill over an engine x workload matrix."""

    points: List[DrillPoint] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(point.passed for point in self.points)

    @property
    def failures(self) -> List[DrillPoint]:
        return [point for point in self.points if not point.passed]

    def describe(self) -> str:
        cross = sum(
            1 for p in self.points if p.restored_into != p.engine
        )
        lines = [
            f"restart drill: {len(self.points)} point(s), "
            f"{cross} cross-engine restore(s), "
            f"{len(self.failures)} failure(s)"
        ]
        lines += [point.describe() for point in self.points
                  if not point.passed]
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "points": [point.to_json() for point in self.points],
        }


def midpoint_fault_address(workload: Workload) -> Optional[int]:
    """An address whose *first* access lands mid-way through execution.

    Injecting the fault there guarantees the trap arrives with real
    completed work behind it and real work still to do -- the
    interesting checkpoint case.  Returns None for programs that never
    touch memory.
    """
    golden = reference_state(workload.program, workload.initial_memory)
    first_access: Dict[int, int] = {}
    for entry in golden.trace:
        if entry.address is not None and entry.address not in first_access:
            first_access[entry.address] = entry.seq
    if not first_access:
        return None
    middle = golden.executed // 2
    return min(
        first_access,
        key=lambda address: (abs(first_access[address] - middle), address),
    )


def _drill_one(
    engine_name: str,
    target_name: str,
    workload: Workload,
    config: MachineConfig,
    checkpoint_dir: str,
) -> DrillPoint:
    """Run one fault -> checkpoint -> restore -> resume -> verify pass."""
    point = DrillPoint(
        engine=engine_name, workload=workload.name,
        restored_into=target_name,
    )
    address = midpoint_fault_address(workload)
    if address is None:
        point.passed = True
        point.detail = "skipped: program never touches memory"
        return point
    point.fault_address = address

    golden = reference_state(workload.program, workload.initial_memory)
    memory = workload.make_memory()
    memory.inject_fault(address)
    engine = ENGINE_FACTORIES[engine_name](workload.program, config, memory)
    engine.run()
    record = engine.interrupt_record
    if record is None:
        point.detail = "engine never trapped on the injected fault"
        return point
    if not record.claims_precise:
        point.detail = f"trap was imprecise: {record.describe()}"
        return point
    point.trap_seq = record.seq
    point.trap_cycle = record.cycle

    # Checkpoint to disk, then drop every live reference to the original
    # machine: the restore below must stand on the file alone.
    path = os.path.join(
        checkpoint_dir,
        f"{engine_name}-{workload.name}-{target_name}.ckpt.json",
    )
    try:
        Checkpoint.capture(engine).save(path)
        del engine, memory
        restored = Checkpoint.load(path).restore(engine=target_name)
    except CheckpointError as exc:
        point.detail = f"checkpoint failed: {exc}"
        return point

    # Differential check 1: the restored state must equal the golden
    # prefix at the trap (the paper's precision criterion, transported
    # through serialization).
    prefix = prefix_state(
        workload.program, record.seq, workload.initial_memory
    )
    if restored.regs != prefix.regs:
        point.detail = (
            f"restored registers diverge from the golden prefix: "
            f"{restored.regs.diff(prefix.regs)}"
        )
        return point
    if restored.memory != prefix.memory:
        point.detail = (
            f"restored memory diverges from the golden prefix: "
            f"{restored.memory.diff(prefix.memory)}"
        )
        return point

    # Differential check 2: service the fault, resume, and the final
    # state must be indistinguishable from a never-interrupted run.
    restored.memory.service_fault(address)
    restored.continue_run()
    if restored.interrupt_record is not None:
        point.detail = (
            f"resume trapped again: "
            f"{restored.interrupt_record.describe()}"
        )
        return point
    if restored.regs != golden.regs:
        point.detail = (
            f"final registers diverge: {restored.regs.diff(golden.regs)}"
        )
        return point
    if restored.memory != golden.memory:
        point.detail = (
            f"final memory diverges: {restored.memory.diff(golden.memory)}"
        )
        return point
    if restored.retired != golden.executed:
        point.detail = (
            f"retired {restored.retired} != golden {golden.executed}"
        )
        return point
    point.passed = True
    return point


def restart_drill(
    engines: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
    checkpoint_dir: Optional[str] = None,
    cross_engine: bool = True,
) -> DrillReport:
    """Exercise checkpoint/restore for every engine x workload pair.

    Each pair is drilled twice when ``cross_engine`` is set: restored
    into the same engine type, and into the next precise engine in
    :data:`PRECISE_ENGINES` (cyclically), so the architectural-state
    contract is verified *between* machine types, not just within one.
    """
    engines = list(engines) if engines is not None else list(PRECISE_ENGINES)
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    report = DrillReport()

    def run_matrix(directory: str) -> None:
        for engine_name in engines:
            targets = [engine_name]
            if cross_engine:
                ring = list(PRECISE_ENGINES)
                anchor = (
                    ring.index(engine_name) if engine_name in ring else -1
                )
                partner = ring[(anchor + 1) % len(ring)]
                if partner != engine_name:
                    targets.append(partner)
            for workload in workloads:
                for target in targets:
                    report.points.append(
                        _drill_one(
                            engine_name, target, workload, config, directory
                        )
                    )

    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        run_matrix(checkpoint_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-drill-") as scratch:
            run_matrix(scratch)
    return report
