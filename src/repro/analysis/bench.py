"""Host-performance baseline: measure the sweep harness itself.

``python -m repro bench`` runs a fixed bag of (engine, size, loop)
simulation points three ways -- serial, parallel with a cold cache, and
parallel again with a warm cache -- and emits one machine-readable JSON
document (``BENCH_*.json``) so the repository's performance trajectory
accrues per commit:

* ``serial`` / ``parallel_cold`` / ``parallel_warm`` -- wall seconds and
  points per second for each pass;
* ``speedup_vs_serial`` -- serial wall time over cold-parallel wall
  time (expect > 1 only on multi-core hosts);
* ``cache`` -- hit/miss counts and the warm-pass hit rate (1.0 when the
  cache is sound: every cold-pass point should be served back);
* ``identical_to_serial`` -- True iff every parallel result matched the
  serial result (cycles, instructions, stalls) point for point;
* ``simulated`` -- total simulated instructions/cycles and aggregate
  simulated-instructions-per-host-second, from the per-engine
  host-perf telemetry in ``SimResult.extra``.
"""

from __future__ import annotations

import json
import platform
import os
import time
from typing import Dict, List, Optional, Sequence

from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.stats import SimResult
from ..workloads.base import Workload
from .parallel import FleetReport, ParallelRunner, SimPoint

#: Default bench grid: two mechanisms the paper sweeps, three sizes.
DEFAULT_ENGINES = ("rstu", "ruu-bypass")
DEFAULT_SIZES = (4, 8, 12)

#: 2: reports carry a ``fleet`` section (submission/retry/timeout/crash
#: accounting from the self-healing runner).
BENCH_SCHEMA = 2


def bench_points(
    workloads: Sequence[Workload],
    engines: Sequence[str] = DEFAULT_ENGINES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    base_config: Optional[MachineConfig] = None,
) -> List[SimPoint]:
    """The (engine x size x loop) grid the bench sweeps."""
    config = base_config or CRAY1_LIKE
    return [
        SimPoint(engine, workload, config.with_(window_size=size))
        for engine in engines
        for size in sizes
        for workload in workloads
    ]


def _comparable(result: SimResult) -> tuple:
    """The deterministic face of a result (host timings excluded)."""
    return (
        result.engine,
        result.workload,
        result.cycles,
        result.instructions,
        tuple(sorted(result.stalls.items())),
        result.branches,
        result.branches_taken,
        result.mispredictions,
        result.squashed,
    )


def _pass_stats(label: str, wall: float, n_points: int) -> Dict[str, object]:
    return {
        "label": label,
        "wall_seconds": wall,
        "points": n_points,
        "points_per_sec": (n_points / wall) if wall > 0 else 0.0,
    }


def run_bench(
    workloads: Sequence[Workload],
    jobs: int,
    cache_dir: str,
    engines: Sequence[str] = DEFAULT_ENGINES,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, object]:
    """Execute the bench grid and return the JSON-able report."""
    jobs = jobs if jobs else (os.cpu_count() or 1)
    points = bench_points(workloads, engines=engines, sizes=sizes)

    serial_runner = ParallelRunner(jobs=1)
    serial_start = time.perf_counter()
    serial_results = serial_runner.run_points(points)
    serial_wall = time.perf_counter() - serial_start

    cold_runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    cold_start = time.perf_counter()
    cold_results = cold_runner.run_points(points)
    cold_wall = time.perf_counter() - cold_start

    warm_runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    warm_start = time.perf_counter()
    warm_results = warm_runner.run_points(points)
    warm_wall = time.perf_counter() - warm_start

    identical = all(
        _comparable(serial) == _comparable(cold) == _comparable(warm)
        for serial, cold, warm in zip(
            serial_results, cold_results, warm_results
        )
    )

    fleet = FleetReport()
    for runner in (serial_runner, cold_runner, warm_runner):
        fleet.merge(runner.fleet)

    total_instructions = sum(r.instructions for r in serial_results)
    total_cycles = sum(r.cycles for r in serial_results)
    sim_host_seconds = serial_runner.host_seconds

    return {
        "schema": BENCH_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "grid": {
            "engines": list(engines),
            "sizes": list(sizes),
            "workloads": [w.name for w in workloads],
            "n_points": len(points),
        },
        "jobs": jobs,
        "serial": _pass_stats("serial", serial_wall, len(points)),
        "parallel_cold": _pass_stats("parallel_cold", cold_wall,
                                     len(points)),
        "parallel_warm": _pass_stats("parallel_warm", warm_wall,
                                     len(points)),
        "speedup_vs_serial": (
            serial_wall / cold_wall if cold_wall > 0 else 0.0
        ),
        "cache": {
            "cold_hits": cold_runner.hits,
            "cold_misses": cold_runner.misses,
            "warm_hits": warm_runner.hits,
            "warm_misses": warm_runner.misses,
            "hit_rate": warm_runner.hit_rate,
        },
        "identical_to_serial": identical,
        "fleet": fleet.to_json(),
        "simulated": {
            "instructions": total_instructions,
            "cycles": total_cycles,
            "host_seconds": sim_host_seconds,
            "inst_per_host_sec": (
                total_instructions / sim_host_seconds
                if sim_host_seconds > 0 else 0.0
            ),
        },
    }


def format_bench(report: Dict[str, object]) -> str:
    """A short human-readable summary of a bench report."""
    serial = report["serial"]
    cold = report["parallel_cold"]
    warm = report["parallel_warm"]
    cache = report["cache"]
    simulated = report["simulated"]
    lines = [
        f"bench: {report['grid']['n_points']} points, "
        f"jobs={report['jobs']}, cpu_count={report['host']['cpu_count']}",
        f"  serial        : {serial['wall_seconds']:8.3f}s "
        f"({serial['points_per_sec']:.2f} points/s)",
        f"  parallel cold : {cold['wall_seconds']:8.3f}s "
        f"({cold['points_per_sec']:.2f} points/s)",
        f"  parallel warm : {warm['wall_seconds']:8.3f}s "
        f"({warm['points_per_sec']:.2f} points/s, "
        f"hit rate {cache['hit_rate']:.2f})",
        f"  speedup vs serial: {report['speedup_vs_serial']:.2f}x",
        f"  identical to serial: {report['identical_to_serial']}",
        f"  fleet: {report['fleet']['retries']} retries, "
        f"{report['fleet']['timeouts']} timeouts, "
        f"{report['fleet']['crashes']} crashes, "
        f"{len(report['fleet']['failures'])} failures",
        f"  simulated: {simulated['instructions']} instructions / "
        f"{simulated['cycles']} cycles "
        f"({simulated['inst_per_host_sec']:.0f} inst/host-s)",
    ]
    return "\n".join(lines)


def write_bench_json(report: Dict[str, object], path: str) -> None:
    """Write the report atomically (same discipline as the cache)."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
