"""Disk cache for simulation results.

Full table regeneration re-runs many identical (engine, config,
workload) simulations.  :class:`ResultCache` memoizes
:class:`~repro.machine.stats.SimResult` values on disk, keyed by a
content hash of the engine name, the machine configuration, and the
workload's program + initial memory -- so a cache entry can never serve
stale results after a workload or config edit.

Usage::

    cache = ResultCache(".repro-cache")
    result = cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, config)

Simulations are deterministic, which is what makes caching sound.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from typing import Callable, Optional

from ..isa.encoding import encode_program
from ..machine.config import MachineConfig
from ..machine.memory import Memory
from ..machine.stats import SimResult
from ..workloads.base import Workload


def _config_fingerprint(config: MachineConfig) -> str:
    payload = {
        "latencies": {
            fu.value: cycles for fu, cycles in sorted(
                config.latencies.items(), key=lambda kv: kv[0].value
            )
        },
        "issue_width": config.issue_width,
        "branch_taken_penalty": config.branch_taken_penalty,
        "branch_not_taken_penalty": config.branch_not_taken_penalty,
        "window_size": config.window_size,
        "n_load_registers": config.n_load_registers,
        "counter_bits": config.counter_bits,
        "dispatch_paths": config.dispatch_paths,
        "commit_paths": config.commit_paths,
        "n_tags": config.n_tags,
        "forward_latency": config.forward_latency,
        "store_execute_latency": config.store_execute_latency,
        "spec_predict_taken_penalty": config.spec_predict_taken_penalty,
        "spec_mispredict_penalty": config.spec_mispredict_penalty,
        "spec_max_branches": config.spec_max_branches,
    }
    return json.dumps(payload, sort_keys=True)


def _memory_fingerprint(memory: Memory) -> str:
    return json.dumps(
        sorted(
            (address, repr(value))
            for address, value in memory.nonzero().items()
        )
    )


def cache_key(engine_name: str, workload: Workload,
              config: MachineConfig) -> str:
    """Content hash identifying one simulation."""
    digest = hashlib.sha256()
    digest.update(engine_name.encode())
    digest.update(encode_program(workload.program))
    digest.update(_memory_fingerprint(workload.initial_memory).encode())
    digest.update(_config_fingerprint(config).encode())
    return digest.hexdigest()


def _result_to_json(result: SimResult) -> dict:
    return {
        "engine": result.engine,
        "workload": result.workload,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "stalls": dict(result.stalls),
        "branches": result.branches,
        "branches_taken": result.branches_taken,
        "interrupts": result.interrupts,
        "mispredictions": result.mispredictions,
        "squashed": result.squashed,
    }


def _result_from_json(payload: dict) -> SimResult:
    result = SimResult(
        engine=payload["engine"],
        workload=payload["workload"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        stalls=Counter(payload["stalls"]),
        branches=payload["branches"],
        branches_taken=payload["branches_taken"],
        interrupts=payload["interrupts"],
        mispredictions=payload["mispredictions"],
        squashed=payload["squashed"],
    )
    result.extra["from_cache"] = True
    return result


class ResultCache:
    """A directory of memoized simulation results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[SimResult]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return _result_from_json(json.load(handle))

    def put(self, key: str, result: SimResult) -> None:
        with open(self._path(key), "w") as handle:
            json.dump(_result_to_json(result), handle)

    def run(
        self,
        builder: Callable,
        engine_name: str,
        workload: Workload,
        config: MachineConfig,
    ) -> SimResult:
        """Return the cached result or simulate and memoize."""
        key = cache_key(engine_name, workload, config)
        cached = self.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        engine = builder(workload.program, config, workload.make_memory())
        result = engine.run()
        # never cache interrupted runs: the caller's fault-injection
        # state is not part of the key
        if result.interrupts == 0:
            self.put(key, result)
        return result

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed
