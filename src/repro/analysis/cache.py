"""Disk cache for simulation results.

Full table regeneration re-runs many identical (engine, config,
workload) simulations.  :class:`ResultCache` memoizes
:class:`~repro.machine.stats.SimResult` values on disk, keyed by a
content hash of the engine name, the machine configuration, and the
workload's program + initial memory -- so a cache entry can never serve
stale results after a workload or config edit.

Correctness guarantees (relied on by the parallel runner, which shares
one cache directory across worker processes):

* **Key completeness** -- the config part of the key is derived from
  ``dataclasses.fields(MachineConfig)``, so a field added to the config
  later automatically perturbs the key; it can never be silently left
  out and serve stale results.
* **Atomic writes** -- :meth:`ResultCache.put` writes to a temp file in
  the cache directory and publishes it with ``os.replace``.  Readers
  never observe a half-written entry, and concurrent writers of the
  same key are harmless (the simulations are deterministic, so both
  write identical bytes).
* **Corrupt entries are misses** -- an unparseable or
  schema-incompatible entry (interrupted run, older cache layout) is
  deleted and the simulation re-run, instead of crashing every later
  read forever.
* **Lossless round-trip** -- serialization walks
  ``dataclasses.fields(SimResult)``, so cached and fresh results carry
  the same payload (including ``extra``) modulo the explicit
  :data:`EXCLUDED_EXTRA_KEYS`.

Usage::

    cache = ResultCache(".repro-cache")
    result = cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, config)

Simulations are deterministic, which is what makes caching sound.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import hashlib
import os
import tempfile
from collections import Counter
from typing import Callable, Mapping, Optional

from ..isa.encoding import encode_program
from ..machine.config import MachineConfig
from ..machine.memory import Memory
from ..machine.stats import SimResult
from ..workloads.base import Workload

#: Bump when the on-disk entry layout changes; older entries then read
#: as misses rather than mis-parsing.
SCHEMA_VERSION = 2

#: ``SimResult.extra`` keys deliberately left out of cache entries.
#: ``interrupt`` holds a live :class:`InterruptRecord` (interrupted runs
#: are never cached anyway); ``from_cache`` is the cache's own
#: provenance marker, stamped on the way *out* so that the stored bytes
#: stay equal to the fresh result's payload.
EXCLUDED_EXTRA_KEYS = frozenset({"interrupt", "from_cache"})


def _fingerprint_value(value):
    """A stable, JSON-able encoding of one config field value."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return sorted(
            (_fingerprint_value(k), _fingerprint_value(v))
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return [_fingerprint_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_fingerprint_value(v) for v in value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _config_fingerprint(config: MachineConfig) -> str:
    """Every ``MachineConfig`` field, derived automatically.

    Walking ``dataclasses.fields`` (instead of a hand-kept list) means a
    latency knob added next month perturbs cache keys from day one --
    ``tests/test_cache.py`` asserts this for every field.
    """
    payload = {
        field.name: _fingerprint_value(getattr(config, field.name))
        for field in dataclasses.fields(MachineConfig)
    }
    return json.dumps(payload, sort_keys=True)


def _memory_fingerprint(memory: Memory) -> str:
    return json.dumps(
        sorted(
            (address, repr(value))
            for address, value in memory.nonzero().items()
        )
    )


def cache_key(engine_name: str, workload: Workload,
              config: MachineConfig) -> str:
    """Content hash identifying one simulation."""
    digest = hashlib.sha256()
    digest.update(engine_name.encode())
    digest.update(encode_program(workload.program))
    digest.update(_memory_fingerprint(workload.initial_memory).encode())
    digest.update(_config_fingerprint(config).encode())
    return digest.hexdigest()


def _result_to_json(result: SimResult) -> dict:
    """Serialize every ``SimResult`` field (minus excluded extras)."""
    payload: dict = {"schema": SCHEMA_VERSION}
    for field in dataclasses.fields(SimResult):
        value = getattr(result, field.name)
        if field.name == "stalls":
            value = dict(value)
        elif field.name == "extra":
            value = {
                key: entry for key, entry in value.items()
                if key not in EXCLUDED_EXTRA_KEYS
            }
        payload[field.name] = value
    return payload


def _result_from_json(payload: dict) -> SimResult:
    """Inverse of :func:`_result_to_json`; raises on incompatible data."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"cache entry schema {payload.get('schema')!r} != "
            f"{SCHEMA_VERSION}"
        )
    kwargs = {}
    for field in dataclasses.fields(SimResult):
        value = payload[field.name]  # KeyError => corrupt => miss
        if field.name == "stalls":
            value = Counter(value)
        kwargs[field.name] = value
    return SimResult(**kwargs)


class ResultCache:
    """A directory of memoized simulation results.

    Safe to share between processes: writes are atomic and unreadable
    entries degrade to misses.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[SimResult]:
        path = self._path(key)
        try:
            with open(path) as handle:
                result = _result_from_json(json.load(handle))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, AttributeError, KeyError, TypeError,
                ValueError, OSError):
            # Truncated, corrupt, or stale-schema entry: drop it and let
            # the caller re-simulate.  Another process may race us to the
            # delete; that is fine.
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        result.extra["from_cache"] = True
        return result

    def put(self, key: str, result: SimResult) -> None:
        payload = json.dumps(_result_to_json(result))
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def run(
        self,
        builder: Callable,
        engine_name: str,
        workload: Workload,
        config: MachineConfig,
    ) -> SimResult:
        """Return the cached result or simulate and memoize."""
        key = cache_key(engine_name, workload, config)
        cached = self.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        engine = builder(workload.program, config, workload.make_memory())
        result = engine.run()
        # never cache interrupted runs: the caller's fault-injection
        # state is not part of the key
        if result.interrupts == 0:
            self.put(key, result)
        return result

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed
