"""Disk cache for simulation results.

Full table regeneration re-runs many identical (engine, config,
workload) simulations.  :class:`ResultCache` memoizes
:class:`~repro.machine.stats.SimResult` values on disk, keyed by a
content hash of the engine name, the machine configuration, and the
workload's program + initial memory -- so a cache entry can never serve
stale results after a workload or config edit.

Correctness guarantees (relied on by the parallel runner, which shares
one cache directory across worker processes):

* **Key completeness** -- the config part of the key is derived from
  ``dataclasses.fields(MachineConfig)``, so a field added to the config
  later automatically perturbs the key; it can never be silently left
  out and serve stale results.
* **Atomic writes** -- :meth:`ResultCache.put` writes to a temp file in
  the cache directory and publishes it with ``os.replace``.  Readers
  never observe a half-written entry, and concurrent writers of the
  same key are harmless (the simulations are deterministic, so both
  write identical bytes).
* **Corrupt entries are misses** -- an unparseable or
  schema-incompatible entry (interrupted run, older cache layout) is
  deleted and the simulation re-run, instead of crashing every later
  read forever.
* **A broken cache never fails a sweep** -- an uncreatable or unwritable
  cache directory disables caching (one warning, then silence), and an
  unreadable entry (permissions, I/O error) degrades to a miss.  The
  cache is an accelerator; losing it costs time, never results.
* **Lossless round-trip** -- serialization walks
  ``dataclasses.fields(SimResult)``, so cached and fresh results carry
  the same payload (including ``extra``) modulo the explicit
  :data:`EXCLUDED_EXTRA_KEYS`.

Usage::

    cache = ResultCache(".repro-cache")
    result = cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, config)

Simulations are deterministic, which is what makes caching sound.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import hashlib
import os
import tempfile
import threading
import warnings
from collections import Counter
from typing import Callable, Mapping, Optional

from ..isa.encoding import encode_program
from ..machine.config import MachineConfig
from ..machine.interrupts import InterruptRecord
from ..machine.memory import Memory
from ..machine.stats import SimResult
from ..workloads.base import Workload

#: Bump when the on-disk entry layout changes; older entries then read
#: as misses rather than mis-parsing.  3: ``interrupt`` records are
#: serialized (tagged dict) instead of excluded, and the memory
#: fingerprint covers injected fault addresses.
SCHEMA_VERSION = 3

#: ``SimResult.extra`` keys deliberately left out of cache entries.
#: ``from_cache`` is the cache's own provenance marker, stamped on the
#: way *out* so that the stored bytes stay equal to the fresh result's
#: payload.  (``interrupt`` round-trips losslessly since schema 3 --
#: see :meth:`InterruptRecord.to_json`.)
EXCLUDED_EXTRA_KEYS = frozenset({"from_cache"})


def _fingerprint_value(value):
    """A stable, JSON-able encoding of one config field value."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return sorted(
            (_fingerprint_value(k), _fingerprint_value(v))
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return [_fingerprint_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_fingerprint_value(v) for v in value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _config_fingerprint(config: MachineConfig) -> str:
    """Every ``MachineConfig`` field, derived automatically.

    Walking ``dataclasses.fields`` (instead of a hand-kept list) means a
    latency knob added next month perturbs cache keys from day one --
    ``tests/test_cache.py`` asserts this for every field.
    """
    payload = {
        field.name: _fingerprint_value(getattr(config, field.name))
        for field in dataclasses.fields(MachineConfig)
    }
    return json.dumps(payload, sort_keys=True)


def _memory_fingerprint(memory: Memory) -> str:
    return json.dumps(
        {
            "words": sorted(
                (address, repr(value))
                for address, value in memory.nonzero().items()
            ),
            "faulting": sorted(memory.faulting_addresses),
        },
        sort_keys=True,
    )


def cache_key(engine_name: str, workload: Workload,
              config: MachineConfig) -> str:
    """Content hash identifying one simulation."""
    digest = hashlib.sha256()
    digest.update(engine_name.encode())
    digest.update(encode_program(workload.program))
    digest.update(_memory_fingerprint(workload.initial_memory).encode())
    digest.update(_config_fingerprint(config).encode())
    return digest.hexdigest()


def _extra_to_json(extra: dict) -> dict:
    """Serialize ``SimResult.extra``; interrupt records become tagged
    dicts so the round-trip is lossless."""
    payload = {}
    for key, entry in extra.items():
        if key in EXCLUDED_EXTRA_KEYS:
            continue
        if isinstance(entry, InterruptRecord):
            payload[key] = {"__interrupt__": entry.to_json()}
        else:
            payload[key] = entry
    return payload


def _extra_from_json(payload: dict) -> dict:
    """Inverse of :func:`_extra_to_json`."""
    extra = {}
    for key, entry in payload.items():
        if isinstance(entry, dict) and set(entry) == {"__interrupt__"}:
            extra[key] = InterruptRecord.from_json(entry["__interrupt__"])
        else:
            extra[key] = entry
    return extra


def serialize_result(result: SimResult) -> dict:
    """Public face of the lossless ``SimResult`` -> JSON-able mapping.

    The serving protocol (:mod:`repro.serve.protocol`) derives its wire
    format from this, so a result that crosses the network round-trips
    through exactly the machinery the cache already pins with tests.
    """
    return _result_to_json(result)


def deserialize_result(payload: dict) -> SimResult:
    """Inverse of :func:`serialize_result`; raises on incompatible data."""
    return _result_from_json(payload)


def _result_to_json(result: SimResult) -> dict:
    """Serialize every ``SimResult`` field (minus excluded extras)."""
    payload: dict = {"schema": SCHEMA_VERSION}
    for field in dataclasses.fields(SimResult):
        value = getattr(result, field.name)
        if field.name == "stalls":
            value = dict(value)
        elif field.name == "extra":
            value = _extra_to_json(value)
        payload[field.name] = value
    return payload


def _result_from_json(payload: dict) -> SimResult:
    """Inverse of :func:`_result_to_json`; raises on incompatible data."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"cache entry schema {payload.get('schema')!r} != "
            f"{SCHEMA_VERSION}"
        )
    kwargs = {}
    for field in dataclasses.fields(SimResult):
        value = payload[field.name]  # KeyError => corrupt => miss
        if field.name == "stalls":
            value = Counter(value)
        elif field.name == "extra":
            value = _extra_from_json(value)
        kwargs[field.name] = value
    return SimResult(**kwargs)


class ResultCache:
    """A directory of memoized simulation results.

    Safe to share between processes: writes are atomic and unreadable
    entries degrade to misses.  Also safe to share between *threads*
    within one process (the serving layer's request handlers all read
    through one cache): entry reads and writes are independent by
    construction, and the hit/miss counters and warn-once latch are
    guarded by a lock so concurrent readers never lose counts.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: Set when the cache directory itself is unusable; every
        #: operation is then a cheap no-op and the sweep runs uncached.
        self.disabled = False
        self._warned = False
        self._lock = threading.Lock()
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            self._degrade(f"cannot create cache directory: {exc}")

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def _warn_once(self, message: str) -> None:
        with self._lock:
            if self._warned:
                return
            self._warned = True
        warnings.warn(
                f"result cache {self.directory!r}: {message}; "
                f"continuing without it (simulations re-run, results "
                f"unaffected)",
                RuntimeWarning,
                stacklevel=4,
            )

    def _degrade(self, message: str) -> None:
        """Disable the cache for this process; the sweep continues."""
        self.disabled = True
        self._warn_once(message)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[SimResult]:
        if self.disabled:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                result = _result_from_json(json.load(handle))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, AttributeError, KeyError, TypeError,
                ValueError):
            # Truncated, corrupt, or stale-schema entry: drop it and let
            # the caller re-simulate.  Another process may race us to the
            # delete; that is fine.
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        except OSError as exc:
            # Unreadable entry (permissions, I/O error, entry is a
            # directory, ...): a miss, not a failure.
            self._warn_once(f"cannot read entry: {exc}")
            return None
        result.extra["from_cache"] = True
        return result

    def put(self, key: str, result: SimResult) -> None:
        if self.disabled:
            return
        payload = json.dumps(_result_to_json(result))
        try:
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key}.", suffix=".tmp"
            )
        except OSError as exc:
            self._degrade(f"cannot write entries: {exc}")
            return
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, self._path(key))
        except OSError as exc:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            self._warn_once(f"cannot publish entry: {exc}")
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def run(
        self,
        builder: Callable,
        engine_name: str,
        workload: Workload,
        config: MachineConfig,
    ) -> SimResult:
        """Return the cached result or simulate and memoize."""
        key = cache_key(engine_name, workload, config)
        cached = self.get(key)
        if cached is not None:
            self._count(hit=True)
            return cached
        self._count(hit=False)
        engine = builder(workload.program, config, workload.make_memory())
        result = engine.run()
        # Interrupted runs cache too: injected fault addresses are part
        # of the memory fingerprint (schema 3) and the interrupt record
        # round-trips losslessly.
        self.put(key, result)
        return result

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError as exc:
            self._degrade(f"cannot list entries: {exc}")
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except OSError as exc:
                    self._warn_once(f"cannot delete entry: {exc}")
        return removed
