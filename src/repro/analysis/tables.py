"""Render results in the paper's table formats (plain text).

``format_table1`` reproduces the per-loop statistics table;
``format_sweep_table`` renders Tables 2-6 (size, speedup, issue rate),
optionally side by side with the paper's published column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.stats import SimResult
from .sweeps import Sweep


def format_table1(
    results: Sequence[SimResult],
    paper: Optional[Dict[str, Tuple[int, int, float]]] = None,
) -> str:
    """The Table 1 layout: instructions, cycles, issue rate per loop."""
    header = (
        f"{'Benchmark':>10s} {'Instructions':>13s} {'Clock Cycles':>13s} "
        f"{'Issue Rate':>11s}"
    )
    if paper is not None:
        header += f" {'Paper Rate':>11s}"
    lines = [header, "-" * len(header)]
    total_instructions = 0
    total_cycles = 0
    for result in results:
        total_instructions += result.instructions
        total_cycles += result.cycles
        line = (
            f"{result.workload:>10s} {result.instructions:13d} "
            f"{result.cycles:13d} {result.issue_rate:11.3f}"
        )
        if paper is not None and result.workload in paper:
            line += f" {paper[result.workload][2]:11.3f}"
        lines.append(line)
    total_rate = total_instructions / total_cycles if total_cycles else 0.0
    total_line = (
        f"{'Total':>10s} {total_instructions:13d} {total_cycles:13d} "
        f"{total_rate:11.3f}"
    )
    if paper is not None:
        paper_total_rate = (
            sum(row[0] for row in paper.values())
            / sum(row[1] for row in paper.values())
        )
        total_line += f" {paper_total_rate:11.3f}"
    lines.append("-" * len(header))
    lines.append(total_line)
    return "\n".join(lines)


def format_sweep_table(
    sweep: Sweep,
    paper: Optional[Dict[int, Tuple[float, float]]] = None,
    title: str = "",
) -> str:
    """The Table 2-6 layout: entries, relative speedup, issue rate."""
    header = f"{'Entries':>8s} {'Speedup':>9s} {'Issue Rate':>11s}"
    if paper is not None:
        header += f" {'Paper Spd':>10s} {'Paper Rate':>11s}"
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in sweep.rows:
        line = f"{row.size:8d} {row.speedup:9.3f} {row.issue_rate:11.3f}"
        if paper is not None and row.size in paper:
            spd, rate = paper[row.size]
            line += f" {spd:10.3f} {rate:11.3f}"
        lines.append(line)
    return "\n".join(lines)


def format_comparison(
    label_to_curve: Dict[str, Dict[int, float]],
    sizes: Sequence[int],
    value_name: str = "speedup",
) -> str:
    """Several mechanisms side by side across sizes."""
    labels = list(label_to_curve)
    header = f"{'Entries':>8s}" + "".join(f" {label:>14s}" for label in labels)
    lines = [f"({value_name})", header, "-" * len(header)]
    for size in sizes:
        cells = "".join(
            f" {label_to_curve[label].get(size, float('nan')):14.3f}"
            for label in labels
        )
        lines.append(f"{size:8d}{cells}")
    return "\n".join(lines)
