"""Shape-fidelity metrics: does a measured curve behave like the paper's?

Absolute speedups depend on the exact compiled code, which we cannot
match (DESIGN.md).  What must reproduce is the *shape*:

* speedup is (near-)monotonically non-decreasing in window size;
* the curve saturates -- the knee falls at a similar size;
* two mechanisms keep the paper's ordering and relative magnitudes.

These metrics are asserted by the benchmark harness and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple


def monotonic_fraction(curve: Dict[int, float], tolerance: float = 0.01) -> float:
    """Fraction of consecutive steps that do not decrease (within tol)."""
    sizes = sorted(curve)
    if len(sizes) < 2:
        return 1.0
    good = sum(
        1
        for a, b in zip(sizes, sizes[1:])
        if curve[b] >= curve[a] - tolerance
    )
    return good / (len(sizes) - 1)


def saturation_size(curve: Dict[int, float], threshold: float = 0.95) -> int:
    """Smallest size reaching ``threshold`` of the curve's maximum."""
    sizes = sorted(curve)
    peak = max(curve[size] for size in sizes)
    for size in sizes:
        if curve[size] >= threshold * peak:
            return size
    return sizes[-1]


def spearman(curve_a: Dict[int, float], curve_b: Dict[int, float]) -> float:
    """Spearman rank correlation over the sizes both curves share."""
    shared = sorted(set(curve_a) & set(curve_b))
    if len(shared) < 2:
        raise ValueError("need at least two shared sizes")
    ranks_a = _ranks([curve_a[size] for size in shared])
    ranks_b = _ranks([curve_b[size] for size in shared])
    return _pearson(ranks_a, ranks_b)


def _ranks(values: Sequence[float]) -> list:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = float(rank)
    return ranks


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def normalized_curve(curve: Dict[int, float]) -> Dict[int, float]:
    """Scale a curve so its maximum is 1 (compares shapes, not levels)."""
    peak = max(curve.values())
    return {size: value / peak for size, value in curve.items()}


def shape_report(
    measured: Dict[int, float],
    paper: Dict[int, float],
    label: str,
) -> Dict[str, object]:
    """Summary comparing a measured curve with the paper's."""
    return {
        "label": label,
        "spearman": spearman(measured, paper),
        "monotonic_fraction": monotonic_fraction(measured),
        "saturation_measured": saturation_size(measured),
        "saturation_paper": saturation_size(paper),
        "final_measured": measured[max(measured)],
        "final_paper": paper[max(paper)],
    }


def ordering_holds(
    curves: Dict[str, Dict[int, float]],
    expected_order: Sequence[str],
    at_size: int,
    tolerance: float = 0.02,
) -> bool:
    """Do the mechanisms rank as the paper says at ``at_size``?

    ``expected_order`` lists labels from fastest to slowest.
    """
    values = [curves[label][at_size] for label in expected_order]
    return all(
        a >= b - tolerance for a, b in zip(values, values[1:])
    )
