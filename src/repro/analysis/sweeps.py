"""Sweep harness: run engines across workload suites and window sizes.

This is the machinery every benchmark uses.  ``run_suite`` aggregates a
suite exactly as the paper aggregates Table 1 (total instructions over
total cycles), ``sweep_sizes`` produces the size -> (speedup, rate) rows
of Tables 2-6, and ``ENGINE_FACTORIES`` names every machine in the
repository so benchmarks and examples can select them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.prediction import BranchPredictor, TwoBitPredictor
from ..core.ruu import BypassMode, RUUEngine
from ..core.speculative import SpeculativeRUUEngine
from ..interrupts.inorder import (
    FutureFileEngine,
    HistoryBufferEngine,
    ReorderBufferBypassEngine,
    ReorderBufferEngine,
)
from ..isa.program import Program
from ..issue.dispatch_stack import DispatchStackEngine
from ..issue.rspool import RSPoolEngine
from ..issue.rstu import RSTUEngine
from ..issue.simple import SimpleEngine
from ..issue.tagunit import TagUnitEngine
from ..issue.tomasulo import TomasuloEngine
from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.engine import Engine
from ..machine.memory import Memory
from ..machine.stats import SimResult, aggregate, speedup
from ..workloads.base import Workload
from ..workloads.livermore import all_loops

EngineBuilder = Callable[[Program, MachineConfig, Memory], Engine]


def _plain(cls) -> EngineBuilder:
    return lambda program, config, memory: cls(program, config, memory=memory)


def _ruu(mode: BypassMode) -> EngineBuilder:
    return lambda program, config, memory: RUUEngine(
        program, config, memory=memory, bypass=mode
    )


def _spec(predictor_cls=TwoBitPredictor,
          mode: BypassMode = BypassMode.FULL) -> EngineBuilder:
    return lambda program, config, memory: SpeculativeRUUEngine(
        program, config, memory=memory, bypass=mode,
        predictor=predictor_cls(),
    )


#: Every machine in the repository, by name.
ENGINE_FACTORIES: Dict[str, EngineBuilder] = {
    "simple": _plain(SimpleEngine),
    "dispatch-stack": _plain(DispatchStackEngine),
    "tomasulo": _plain(TomasuloEngine),
    "tagunit": _plain(TagUnitEngine),
    "rspool": _plain(RSPoolEngine),
    "rstu": _plain(RSTUEngine),
    "ruu-bypass": _ruu(BypassMode.FULL),
    "ruu-nobypass": _ruu(BypassMode.NONE),
    "ruu-limited": _ruu(BypassMode.LIMITED),
    "spec-ruu": _spec(),
    "reorder-buffer": _plain(ReorderBufferEngine),
    "rob-bypass": _plain(ReorderBufferBypassEngine),
    "history-buffer": _plain(HistoryBufferEngine),
    "future-file": _plain(FutureFileEngine),
}


def engine_name_of(builder: EngineBuilder) -> Optional[str]:
    """The registry name of ``builder``, if it is a registered factory.

    The parallel runner ships engine *names* (the factory lambdas do not
    pickle), so the suite helpers translate before delegating.
    """
    for name, candidate in ENGINE_FACTORIES.items():
        if candidate is builder:
            return name
    return None


def run_workload(
    builder: EngineBuilder,
    workload: Workload,
    config: Optional[MachineConfig] = None,
) -> SimResult:
    """Run one engine on one workload with fresh memory."""
    engine = builder(
        workload.program, config or CRAY1_LIKE, workload.make_memory()
    )
    return engine.run()


def run_suite(
    builder: EngineBuilder,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
    runner=None,
) -> SimResult:
    """Run a workload suite and aggregate as the paper does.

    With a :class:`~repro.analysis.parallel.ParallelRunner` the loops
    fan out over worker processes; aggregation order (and therefore the
    result) is identical to the serial path.  An unregistered builder
    falls back to serial -- the runner can only ship engine names.
    """
    workloads = list(workloads) if workloads is not None else all_loops()
    if runner is not None:
        name = engine_name_of(builder)
        if name is not None:
            from .parallel import run_suite_parallel

            return run_suite_parallel(runner, name, workloads, config)
    return aggregate(
        run_workload(builder, workload, config) for workload in workloads
    )


@dataclass
class SweepRow:
    """One row of a Table 2-6 style sweep."""

    size: int
    speedup: float
    issue_rate: float
    cycles: int


@dataclass
class Sweep:
    """A full size sweep against a fixed baseline."""

    engine: str
    baseline: SimResult
    rows: List[SweepRow] = field(default_factory=list)

    def speedups(self) -> Dict[int, float]:
        return {row.size: row.speedup for row in self.rows}

    def issue_rates(self) -> Dict[int, float]:
        return {row.size: row.issue_rate for row in self.rows}


def sweep_sizes(
    engine_name: str,
    sizes: Iterable[int],
    workloads: Optional[Sequence[Workload]] = None,
    base_config: Optional[MachineConfig] = None,
    baseline: Optional[SimResult] = None,
    runner=None,
    **config_overrides,
) -> Sweep:
    """Measure speedup and issue rate across window sizes.

    ``baseline`` defaults to the simple engine on the same suite and
    config (the paper's Table 1 machine).  ``config_overrides`` apply to
    the swept engine only (e.g. ``dispatch_paths=2`` for Table 3).
    With a :class:`~repro.analysis.parallel.ParallelRunner` the whole
    (size x workload) grid fans out at once and the rows come back
    identical to the serial sweep.
    """
    if runner is not None:
        from .parallel import sweep_sizes_parallel

        return sweep_sizes_parallel(
            runner, engine_name, sizes, workloads=workloads,
            base_config=base_config, baseline=baseline, **config_overrides,
        )
    workloads = list(workloads) if workloads is not None else all_loops()
    config = base_config or CRAY1_LIKE
    if baseline is None:
        baseline = run_suite(ENGINE_FACTORIES["simple"], workloads, config)
    builder = ENGINE_FACTORIES[engine_name]
    sweep = Sweep(engine=engine_name, baseline=baseline)
    for size in sizes:
        swept = config.with_(window_size=size, **config_overrides)
        result = run_suite(builder, workloads, swept)
        sweep.rows.append(
            SweepRow(
                size=size,
                speedup=speedup(baseline, result),
                issue_rate=result.issue_rate,
                cycles=result.cycles,
            )
        )
    return sweep


def per_loop_baseline(
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
    runner=None,
) -> List[SimResult]:
    """Table 1: the simple engine on each loop individually."""
    workloads = list(workloads) if workloads is not None else all_loops()
    if runner is not None:
        from .parallel import per_loop_parallel

        return per_loop_parallel(runner, "simple", workloads, config)
    builder = ENGINE_FACTORIES["simple"]
    return [run_workload(builder, workload, config) for workload in workloads]
