"""Sweep harness, paper reference data, table rendering, shape metrics."""

from . import paper_data
from .bench import bench_points, format_bench, run_bench, write_bench_json
from .cache import ResultCache, cache_key
from .drill import DrillPoint, DrillReport, restart_drill
from .parallel import (
    FleetError,
    FleetReport,
    ParallelRunner,
    PointFailure,
    SimPoint,
    per_loop_parallel,
    run_point,
    run_suite_parallel,
    sweep_sizes_parallel,
)
from .depgraph import (
    DataflowLimit,
    build_dependence_graph,
    dataflow_limit,
    dependence_distances,
    distance_summary,
)
from .export import (
    ascii_chart,
    result_to_dict,
    results_to_json,
    sweep_to_csv,
    sweep_to_rows,
)
from .shape import (
    monotonic_fraction,
    normalized_curve,
    ordering_holds,
    saturation_size,
    shape_report,
    spearman,
)
from .sweeps import (
    ENGINE_FACTORIES,
    Sweep,
    SweepRow,
    per_loop_baseline,
    run_suite,
    run_workload,
    sweep_sizes,
)
from .report import ReportSpec, build_report
from .tables import format_comparison, format_sweep_table, format_table1
from .verify import (
    VerificationFailure,
    VerificationReport,
    verify_all,
    verify_engine,
)

__all__ = [
    "DataflowLimit",
    "DrillPoint",
    "DrillReport",
    "ENGINE_FACTORIES",
    "FleetError",
    "FleetReport",
    "ParallelRunner",
    "PointFailure",
    "restart_drill",
    "ReportSpec",
    "ResultCache",
    "SimPoint",
    "Sweep",
    "SweepRow",
    "bench_points",
    "build_report",
    "cache_key",
    "format_bench",
    "per_loop_parallel",
    "run_bench",
    "run_point",
    "run_suite_parallel",
    "sweep_sizes_parallel",
    "write_bench_json",
    "ascii_chart",
    "build_dependence_graph",
    "dataflow_limit",
    "dependence_distances",
    "distance_summary",
    "format_comparison",
    "format_sweep_table",
    "format_table1",
    "monotonic_fraction",
    "normalized_curve",
    "ordering_holds",
    "paper_data",
    "per_loop_baseline",
    "result_to_dict",
    "results_to_json",
    "run_suite",
    "run_workload",
    "saturation_size",
    "shape_report",
    "spearman",
    "sweep_sizes",
    "sweep_to_csv",
    "sweep_to_rows",
    "VerificationFailure",
    "VerificationReport",
    "verify_all",
    "verify_engine",
]
