"""Self-healing parallel sweep runner: fan points out over processes.

Every table and ablation in the repository reduces to a bag of
independent ``(engine, config, workload)`` simulations -- Tables 2-6
are embarrassingly parallel over (engine, size, loop) points.
:class:`ParallelRunner` executes such a bag on a
``concurrent.futures.ProcessPoolExecutor`` while keeping the
guarantees the serial harness provides:

* **Determinism** -- results come back in the order the points were
  submitted, regardless of which worker finished first, so aggregation
  (and therefore every table row) is bit-identical to a serial run.
  Retries and fallback do not perturb this: the simulations are
  deterministic, so a point's result is the same however many attempts
  it took.
* **Safe cache sharing** -- workers share one on-disk
  :class:`~repro.analysis.cache.ResultCache` directory.  The cache
  writes atomically (temp file + ``os.replace``) and treats corrupt
  entries as misses, so concurrent runners never serve partial JSON.
* **Host-perf accounting** -- per-point host wall time comes back in
  ``SimResult.extra`` and the runner aggregates totals
  (:attr:`ParallelRunner.host_seconds`, :attr:`points_run`,
  :attr:`wall_seconds`) for the bench trajectory.
* **Fault tolerance** -- a sweep *always completes or says exactly
  which points failed and why*.  Python-level failures inside a point
  come back as values (the pool survives).  A worker process that dies
  (OOM kill, segfault, ``os._exit``) breaks the pool: the runner kills
  the stragglers, rebuilds the pool, and resubmits the unfinished
  points with exponential backoff, up to :attr:`max_retries` rounds.  A
  point whose result does not arrive within :attr:`timeout` seconds is
  treated the same way (the stuck worker is killed with the pool).
  Points still unfinished after the last round run serially in this
  process (``serial_fallback``); only if *that* fails too does
  :meth:`run_points` raise :class:`FleetError`, whose
  :class:`FleetReport` names every failed point and cause.  Every
  attempt, retry, timeout and degraded point is recorded in
  :attr:`ParallelRunner.fleet`.

``jobs=1`` (or a single point) runs in-process with no executor, so the
serial path stays available on one-core hosts and under profilers --
except with ``reuse_pool``, where even one job runs in a worker process
so that process isolation and timeout-kill always hold.

Usage::

    runner = ParallelRunner(jobs=4, cache_dir=".repro-cache",
                            timeout=120.0)
    sweep = sweep_sizes_parallel(runner, "rstu", paper_data.RSTU_SIZES)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.stats import SimResult, aggregate, speedup
from ..workloads.base import Workload
from ..workloads.livermore import all_loops
from .cache import ResultCache
from .sweeps import ENGINE_FACTORIES, Sweep, SweepRow


@dataclass(frozen=True)
class SimPoint:
    """One simulation: an engine name, a workload, and a config.

    The engine is named (not passed as a builder) because the factory
    lambdas in :data:`ENGINE_FACTORIES` do not pickle; workers resolve
    the name in their own process.
    """

    engine: str
    workload: Workload
    config: MachineConfig
    #: Attach a streaming observability recorder and embed the cycle
    #: attribution in ``result.extra["attribution"]``.  Traced points
    #: bypass the result cache (the cache key does not include the
    #: flag, and cached entries carry no attribution).
    trace: bool = False


def run_point(point: SimPoint,
              cache: Optional[ResultCache] = None) -> SimResult:
    """Execute one point (in this process), optionally through a cache."""
    builder = ENGINE_FACTORIES[point.engine]
    if getattr(point, "trace", False):
        from ..obs import TraceRecorder, attribute_cycles

        engine = builder(
            point.workload.program, point.config,
            point.workload.make_memory(),
        )
        recorder = TraceRecorder(detail=False)
        engine.recorder = recorder
        result = engine.run()
        result.extra["attribution"] = attribute_cycles(
            result, recorder
        ).to_json()
        return result
    if cache is not None:
        return cache.run(builder, point.engine, point.workload, point.config)
    engine = builder(
        point.workload.program, point.config, point.workload.make_memory()
    )
    return engine.run()


def _worker(job: Tuple[SimPoint, Optional[str]]) -> Tuple[SimResult, bool]:
    """Pool entry point: run one point, report whether it was a cache hit.

    Must stay a module-level function so the pool can pickle it by
    reference.  Each call opens the cache directory fresh -- cheap, and
    it keeps hit/miss counters per-point instead of per-process.
    """
    point, cache_dir = job
    if cache_dir is None or getattr(point, "trace", False):
        return run_point(point), False
    cache = ResultCache(cache_dir)
    result = cache.run(
        ENGINE_FACTORIES[point.engine], point.engine,
        point.workload, point.config,
    )
    return result, cache.hits > 0


def _guarded_worker(job: Tuple[SimPoint, Optional[str]]) -> Tuple:
    """Run one point, returning failures as values.

    A Python exception inside a simulation (a real engine bug, a
    :class:`~repro.machine.faults.DeadlockError`, ...) comes back as
    ``("error", message, diagnostic_json_or_None)`` instead of
    poisoning the pool; only a hard process death (segfault, OOM kill)
    breaks the executor.  When the exception carries an
    :class:`~repro.machine.diagnostics.EngineDiagnostic` (deadlock
    watchdog, cycle budget), its JSON form rides along so callers --
    notably the serving layer -- can surface *what the pipeline was
    waiting for*, not just that it stalled.
    """
    try:
        result, hit = _worker(job)
        return ("ok", result, hit)
    except Exception as exc:  # noqa: BLE001 - converted to a report entry
        diagnostic = getattr(exc, "diagnostic", None)
        if diagnostic is not None:
            try:
                diagnostic = diagnostic.to_json()
            except Exception:  # noqa: BLE001 - diagnostics are best-effort
                diagnostic = None
        return ("error", f"{type(exc).__name__}: {exc}", diagnostic)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully tear down an executor with stuck or dead workers.

    ``shutdown`` alone would block on a hung worker; kill the worker
    processes first, then reap without waiting.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except OSError:  # already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class PointFailure:
    """One simulation point that could not produce a result."""

    index: int
    engine: str
    workload: str
    attempts: int
    error: str
    #: Machine-readable pipeline snapshot when the failure was a
    #: :class:`~repro.machine.faults.DeadlockError` (JSON form of
    #: :class:`~repro.machine.diagnostics.EngineDiagnostic`).
    diagnostic: Optional[Dict[str, Any]] = None

    def describe(self) -> str:
        return (
            f"point {self.index} ({self.engine} on {self.workload}): "
            f"{self.error} after {self.attempts} attempt(s)"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "engine": self.engine,
            "workload": self.workload,
            "attempts": self.attempts,
            "error": self.error,
            "diagnostic": self.diagnostic,
        }


@dataclass
class PointOutcome:
    """Settled verdict for one point of a :meth:`run_points_settled`.

    Exactly one of ``result`` / ``error`` is set.  ``diagnostic`` is the
    JSON pipeline snapshot when the error was a deadlock;
    ``cache_hit`` reports whether the result was served from the shared
    :class:`~repro.analysis.cache.ResultCache`.
    """

    result: Optional[SimResult]
    error: Optional[str] = None
    diagnostic: Optional[Dict[str, Any]] = None
    attempts: int = 0
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class FleetReport:
    """What it took to complete (or fail) a fan-out.

    A clean run has ``submissions == points`` and every other counter
    zero.  Anything else is the self-healing machinery earning its keep.
    """

    jobs: int = 0
    points: int = 0
    submissions: int = 0   # point-submissions, including retries
    retries: int = 0       # resubmissions after a failed round
    timeouts: int = 0      # per-point result deadlines that expired
    crashes: int = 0       # pool-breaking worker deaths observed
    pools: int = 0         # executors built (>1 means rebuilds happened)
    degraded: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def clean(self) -> bool:
        """True when no retry/timeout/crash/fallback machinery engaged."""
        return (
            self.ok and not self.retries and not self.timeouts
            and not self.crashes and not self.degraded
        )

    def merge(self, other: "FleetReport") -> None:
        """Accumulate ``other`` (one ``run_points`` call) into this."""
        self.jobs = max(self.jobs, other.jobs)
        self.points += other.points
        self.submissions += other.submissions
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.pools += other.pools
        self.degraded.extend(other.degraded)
        self.failures.extend(other.failures)

    def describe(self) -> str:
        lines = [
            f"fleet: {self.points} point(s) over {self.jobs} job(s): "
            f"{self.submissions} submission(s), {self.retries} "
            f"retry/retries, {self.timeouts} timeout(s), "
            f"{self.crashes} worker crash(es), "
            f"{len(self.degraded)} point(s) completed by serial "
            f"fallback, {len(self.failures)} failure(s)"
        ]
        lines += [f"  degraded: {entry['engine']} on {entry['workload']}"
                  for entry in self.degraded]
        lines += [f"  FAILED: {failure.describe()}"
                  for failure in self.failures]
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "points": self.points,
            "submissions": self.submissions,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pools": self.pools,
            "degraded": list(self.degraded),
            "failures": [failure.to_json() for failure in self.failures],
            "ok": self.ok,
            "clean": self.clean,
        }


class FleetError(RuntimeError):
    """Some points failed even after retries and serial fallback.

    Carries the :class:`FleetReport`, which names every failed point
    and its last error -- the "or reports exactly which points failed
    and why" half of the runner's contract.
    """

    def __init__(self, report: FleetReport) -> None:
        super().__init__(
            f"{len(report.failures)} of {report.points} point(s) failed "
            f"permanently:\n" + "\n".join(
                f"  {failure.describe()}" for failure in report.failures
            )
        )
        self.report = report


class ParallelRunner:
    """Fan (engine, config, workload) points over worker processes.

    Attributes (cumulative across :meth:`run_points` calls):
        hits / misses: cache outcomes, when ``cache_dir`` is set.
        points_run: simulation points executed.
        host_seconds: summed per-point simulator wall time (the work
            done, across all workers).
        wall_seconds: elapsed wall time spent inside ``run_points``
            (the time you waited); ``host_seconds / wall_seconds`` is
            the achieved parallelism.
        fleet: cumulative :class:`FleetReport` (attempts, retries,
            timeouts, crashes, degraded points); ``last_fleet`` is the
            report of the most recent :meth:`run_points` call alone.

    Self-healing knobs:
        timeout: per-point result deadline in seconds (None: wait
            forever).  Measured from when the runner starts waiting on
            that point's future, so it only trips for genuinely stuck
            work, not for points queued behind a busy pool.
        max_retries: pool-rebuild rounds after the first (a crashed or
            timed-out round kills the pool, backs off, resubmits).
        backoff: base seconds slept before retry round ``k``
            (``backoff * 2**(k-1)``).
        serial_fallback: run still-unfinished points in this process
            after the last round instead of failing them.
        reuse_pool: keep one warm ``ProcessPoolExecutor`` alive across
            :meth:`run_points` calls instead of building a fresh pool
            per round.  This is what makes the runner serve-able: a
            long-lived service pays the worker spawn cost once, not per
            request.  A crashed or timed-out round still kills and
            rebuilds the pool (the self-healing contract is unchanged);
            call :meth:`close` to release the workers.  With
            ``reuse_pool`` the per-call ``jobs`` clamp to the point
            count is skipped so the pool keeps a stable size, and both
            a single point and ``jobs=1`` still run in a worker
            process rather than inline (isolation and timeout-kill
            apply to them too).
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None,
                 max_retries: int = 2,
                 backoff: float = 0.25,
                 serial_fallback: bool = True,
                 reuse_pool: bool = False) -> None:
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self.cache_dir = cache_dir
        if cache_dir is not None:
            # A failing makedirs must not kill the sweep: ResultCache
            # rechecks per process and degrades to uncached runs.
            try:
                os.makedirs(cache_dir, exist_ok=True)
            except OSError:
                pass
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.serial_fallback = serial_fallback
        self.reuse_pool = reuse_pool
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self.hits = 0
        self.misses = 0
        self.points_run = 0
        self.host_seconds = 0.0
        self.wall_seconds = 0.0
        self.fleet = FleetReport()
        self.last_fleet = FleetReport()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def run_points(self, points: Iterable[SimPoint],
                   jobs: Optional[int] = None) -> List[SimResult]:
        """Run every point; results return in submission order.

        Raises :class:`FleetError` -- after retries and (if enabled)
        serial fallback -- when some points cannot produce a result;
        the error's report says which and why.
        """
        outcomes, fleet = self._execute(list(points), jobs)
        if fleet.failures:
            raise FleetError(fleet)
        return [outcome.result for outcome in outcomes]  # type: ignore[misc]

    def run_points_settled(self, points: Iterable[SimPoint],
                           jobs: Optional[int] = None
                           ) -> List[PointOutcome]:
        """Run every point; return a per-point verdict, never raising.

        The serving layer's entry point: a point that fails (a deadlock,
        an engine bug, a worker that kept dying) becomes a
        :class:`PointOutcome` with ``error`` (and ``diagnostic`` for
        deadlocks) instead of poisoning the whole batch.  Failures are
        still recorded in :attr:`fleet` / :attr:`last_fleet`.
        """
        outcomes, _ = self._execute(list(points), jobs)
        return outcomes

    def close(self, wait: bool = True) -> None:
        """Release the persistent pool (no-op without ``reuse_pool``).

        An idle pool is shut down politely (workers join, the
        executor's machinery unwinds cleanly).  ``wait=False`` takes
        the kill path instead -- for callers that know the pool may
        hold a wedged worker and must not block on it.
        """
        if self._pool is not None:
            if wait:
                try:
                    self._pool.shutdown(wait=True, cancel_futures=True)
                except Exception:  # broken pool: fall back to the axe
                    _kill_pool(self._pool)
            else:
                _kill_pool(self._pool)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, points: List[SimPoint],
                 jobs: Optional[int]
                 ) -> Tuple[List[PointOutcome], FleetReport]:
        jobs = jobs if jobs else self.jobs
        if not self.reuse_pool:
            # A persistent pool keeps its size across calls; a one-shot
            # pool shrinks to the work at hand.
            jobs = max(1, min(jobs, len(points) or 1))
        unknown = sorted({p.engine for p in points} - set(ENGINE_FACTORIES))
        if unknown:
            raise KeyError(f"unknown engine(s): {', '.join(unknown)}")
        fleet = FleetReport(jobs=jobs, points=len(points))
        jobs_args = [(point, self.cache_dir) for point in points]
        results: List[Optional[SimResult]] = [None] * len(points)
        hit_flags: List[bool] = [False] * len(points)
        errors: List[Optional[str]] = [None] * len(points)
        diags: List[Optional[Dict[str, Any]]] = [None] * len(points)
        attempts: List[int] = [0] * len(points)

        started = time.perf_counter()
        try:
            # A persistent (serve-able) runner never runs inline, even
            # with one job: the pooled path is what provides process
            # isolation and timeout-kill for long-lived callers.
            if jobs == 1 and not self.reuse_pool:
                for index, job in enumerate(jobs_args):
                    fleet.submissions += 1
                    attempts[index] += 1
                    self._record(
                        index, _guarded_worker(job),
                        results, hit_flags, errors, diags,
                    )
            else:
                self._run_rounds(
                    jobs_args, jobs, fleet,
                    results, hit_flags, errors, diags, attempts,
                )
        finally:
            self.wall_seconds += time.perf_counter() - started
            for failure_index in [i for i, r in enumerate(results)
                                  if r is None and errors[i] is not None]:
                point = points[failure_index]
                fleet.failures.append(
                    PointFailure(
                        index=failure_index,
                        engine=point.engine,
                        workload=point.workload.name,
                        attempts=attempts[failure_index],
                        error=errors[failure_index] or "unknown",
                        diagnostic=diags[failure_index],
                    )
                )
            self.last_fleet = fleet
            self.fleet.merge(fleet)

        for index, result in enumerate(results):
            if result is None:
                continue
            if self.cache_dir is not None:
                if hit_flags[index]:
                    self.hits += 1
                else:
                    self.misses += 1
            self.points_run += 1
            self.host_seconds += float(
                result.extra.get("host_seconds", 0.0)
            )
        outcomes = [
            PointOutcome(
                result=results[index],
                error=errors[index] if results[index] is None else None,
                diagnostic=(
                    diags[index] if results[index] is None else None
                ),
                attempts=attempts[index],
                cache_hit=bool(results[index] is not None
                               and hit_flags[index]),
            )
            for index in range(len(points))
        ]
        return outcomes, fleet

    # ------------------------------------------------------------------
    # self-healing internals
    # ------------------------------------------------------------------

    @staticmethod
    def _record(index: int, outcome: Tuple,
                results: List[Optional[SimResult]],
                hit_flags: List[bool],
                errors: List[Optional[str]],
                diags: List[Optional[Dict[str, Any]]]) -> None:
        if outcome[0] == "ok":
            results[index] = outcome[1]
            hit_flags[index] = outcome[2]
            errors[index] = None
            diags[index] = None
        else:
            errors[index] = outcome[1]
            diags[index] = outcome[2] if len(outcome) > 2 else None

    def _run_rounds(self, jobs_args: List[Tuple], jobs: int,
                    fleet: FleetReport,
                    results: List[Optional[SimResult]],
                    hit_flags: List[bool],
                    errors: List[Optional[str]],
                    diags: List[Optional[Dict[str, Any]]],
                    attempts: List[int]) -> None:
        remaining = list(range(len(jobs_args)))
        for round_number in range(self.max_retries + 1):
            if not remaining:
                return
            if round_number:
                fleet.retries += len(remaining)
                time.sleep(self.backoff * (2 ** (round_number - 1)))
            remaining = self._one_round(
                jobs_args, remaining, jobs, fleet,
                results, hit_flags, errors, diags, attempts,
            )
        if remaining and self.serial_fallback:
            for index in remaining:
                fleet.submissions += 1
                attempts[index] += 1
                self._record(
                    index, _guarded_worker(jobs_args[index]),
                    results, hit_flags, errors, diags,
                )
                if results[index] is not None:
                    point = jobs_args[index][0]
                    fleet.degraded.append({
                        "index": index,
                        "engine": point.engine,
                        "workload": point.workload.name,
                        "attempts": attempts[index],
                    })

    def _ensure_pool(self, jobs: int,
                     fleet: FleetReport) -> ProcessPoolExecutor:
        """Return the persistent pool, (re)building it when needed."""
        if self._pool is not None and self._pool_workers == jobs:
            return self._pool
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None
        self._pool = ProcessPoolExecutor(max_workers=jobs)
        self._pool_workers = jobs
        fleet.pools += 1
        return self._pool

    def _one_round(self, jobs_args: List[Tuple], remaining: List[int],
                   jobs: int, fleet: FleetReport,
                   results: List[Optional[SimResult]],
                   hit_flags: List[bool],
                   errors: List[Optional[str]],
                   diags: List[Optional[Dict[str, Any]]],
                   attempts: List[int]) -> List[int]:
        """Submit ``remaining`` to a pool; return what's left.

        Ends early (killing the pool) on the first timeout or worker
        crash; results that finished before the incident are harvested
        so their work is not repeated.  With ``reuse_pool`` the warm
        persistent pool is used (and discarded only when broken);
        otherwise each round builds and drains its own.
        """
        if self.reuse_pool:
            pool = self._ensure_pool(jobs, fleet)
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(remaining))
            )
            fleet.pools += 1
        futures = {}
        for index in remaining:
            futures[index] = pool.submit(_guarded_worker, jobs_args[index])
            fleet.submissions += 1
            attempts[index] += 1
        broken = False
        try:
            for index in remaining:
                if broken:
                    break
                try:
                    outcome = futures[index].result(timeout=self.timeout)
                except FuturesTimeout:
                    fleet.timeouts += 1
                    errors[index] = (
                        f"timeout: no result within {self.timeout}s "
                        f"(worker killed)"
                    )
                    broken = True
                except BrokenProcessPool:
                    fleet.crashes += 1
                    errors[index] = errors[index] or (
                        "worker process died (pool broken)"
                    )
                    broken = True
                except Exception as exc:  # pragma: no cover - defensive
                    errors[index] = f"{type(exc).__name__}: {exc}"
                    broken = True
                else:
                    self._record(index, outcome,
                                 results, hit_flags, errors, diags)
        finally:
            if broken:
                self._harvest(futures, results, hit_flags, errors, diags)
                _kill_pool(pool)
                if self.reuse_pool:
                    self._pool = None
                    self._pool_workers = 0
            elif not self.reuse_pool:
                pool.shutdown()
        leftovers = [index for index in remaining
                     if results[index] is None]
        for index in leftovers:
            if errors[index] is None:
                errors[index] = "worker process died (pool broken)"
        return leftovers

    def _harvest(self, futures: Dict[int, Any],
                 results: List[Optional[SimResult]],
                 hit_flags: List[bool],
                 errors: List[Optional[str]],
                 diags: List[Optional[Dict[str, Any]]]) -> None:
        """Collect results that completed before the pool broke."""
        for index, future in futures.items():
            if results[index] is not None or not future.done():
                continue
            try:
                outcome = future.result(timeout=0)
            except Exception:  # broken/cancelled future
                continue
            self._record(index, outcome, results, hit_flags, errors, diags)


def run_suite_parallel(
    runner: ParallelRunner,
    engine_name: str,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
) -> SimResult:
    """Parallel twin of :func:`~repro.analysis.sweeps.run_suite`."""
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    results = runner.run_points(
        SimPoint(engine_name, workload, config) for workload in workloads
    )
    return aggregate(results)


def per_loop_parallel(
    runner: ParallelRunner,
    engine_name: str,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
) -> List[SimResult]:
    """Parallel twin of :func:`~repro.analysis.sweeps.per_loop_baseline`
    (for any engine)."""
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    return runner.run_points(
        SimPoint(engine_name, workload, config) for workload in workloads
    )


def sweep_sizes_parallel(
    runner: ParallelRunner,
    engine_name: str,
    sizes: Iterable[int],
    workloads: Optional[Sequence[Workload]] = None,
    base_config: Optional[MachineConfig] = None,
    baseline: Optional[SimResult] = None,
    **config_overrides,
) -> Sweep:
    """Parallel twin of :func:`~repro.analysis.sweeps.sweep_sizes`.

    The whole (size x workload) grid -- plus the baseline suite when
    one is not supplied -- goes out as a single flat fan-out, then rows
    aggregate per size in submission order, so the resulting
    :class:`Sweep` is identical to the serial one.
    """
    sizes = list(sizes)
    workloads = list(workloads) if workloads is not None else all_loops()
    config = base_config or CRAY1_LIKE
    points: List[SimPoint] = []
    if baseline is None:
        points.extend(
            SimPoint("simple", workload, config) for workload in workloads
        )
    swept_configs = [
        config.with_(window_size=size, **config_overrides) for size in sizes
    ]
    for swept in swept_configs:
        points.extend(
            SimPoint(engine_name, workload, swept) for workload in workloads
        )
    results = runner.run_points(points)
    cursor = 0
    if baseline is None:
        baseline = aggregate(results[:len(workloads)])
        cursor = len(workloads)
    sweep = Sweep(engine=engine_name, baseline=baseline)
    for size in sizes:
        chunk = results[cursor:cursor + len(workloads)]
        cursor += len(workloads)
        result = aggregate(chunk)
        sweep.rows.append(
            SweepRow(
                size=size,
                speedup=speedup(baseline, result),
                issue_rate=result.issue_rate,
                cycles=result.cycles,
            )
        )
    return sweep
