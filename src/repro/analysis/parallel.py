"""Parallel sweep runner: fan simulation points out over processes.

Every table and ablation in the repository reduces to a bag of
independent ``(engine, config, workload)`` simulations -- Tables 2-6
are embarrassingly parallel over (engine, size, loop) points.
:class:`ParallelRunner` executes such a bag on a
``concurrent.futures.ProcessPoolExecutor`` while keeping three
guarantees the serial harness provides:

* **Determinism** -- results come back in the order the points were
  submitted, regardless of which worker finished first, so aggregation
  (and therefore every table row) is bit-identical to a serial run.
* **Safe cache sharing** -- workers share one on-disk
  :class:`~repro.analysis.cache.ResultCache` directory.  The cache
  writes atomically (temp file + ``os.replace``) and treats corrupt
  entries as misses, so concurrent runners never serve partial JSON.
* **Host-perf accounting** -- per-point host wall time comes back in
  ``SimResult.extra`` and the runner aggregates totals
  (:attr:`ParallelRunner.host_seconds`, :attr:`points_run`,
  :attr:`wall_seconds`) for the bench trajectory.

``jobs=1`` (or a single point) runs in-process with no executor, so the
serial path stays available on one-core hosts and under profilers.

Usage::

    runner = ParallelRunner(jobs=4, cache_dir=".repro-cache")
    sweep = sweep_sizes_parallel(runner, "rstu", paper_data.RSTU_SIZES)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.stats import SimResult, aggregate, speedup
from ..workloads.base import Workload
from ..workloads.livermore import all_loops
from .cache import ResultCache
from .sweeps import ENGINE_FACTORIES, Sweep, SweepRow


@dataclass(frozen=True)
class SimPoint:
    """One simulation: an engine name, a workload, and a config.

    The engine is named (not passed as a builder) because the factory
    lambdas in :data:`ENGINE_FACTORIES` do not pickle; workers resolve
    the name in their own process.
    """

    engine: str
    workload: Workload
    config: MachineConfig


def run_point(point: SimPoint,
              cache: Optional[ResultCache] = None) -> SimResult:
    """Execute one point (in this process), optionally through a cache."""
    builder = ENGINE_FACTORIES[point.engine]
    if cache is not None:
        return cache.run(builder, point.engine, point.workload, point.config)
    engine = builder(
        point.workload.program, point.config, point.workload.make_memory()
    )
    return engine.run()


def _worker(job: Tuple[SimPoint, Optional[str]]) -> Tuple[SimResult, bool]:
    """Pool entry point: run one point, report whether it was a cache hit.

    Must stay a module-level function so the pool can pickle it by
    reference.  Each call opens the cache directory fresh -- cheap, and
    it keeps hit/miss counters per-point instead of per-process.
    """
    point, cache_dir = job
    if cache_dir is None:
        return run_point(point), False
    cache = ResultCache(cache_dir)
    result = cache.run(
        ENGINE_FACTORIES[point.engine], point.engine,
        point.workload, point.config,
    )
    return result, cache.hits > 0


class ParallelRunner:
    """Fan (engine, config, workload) points over worker processes.

    Attributes (cumulative across :meth:`run_points` calls):
        hits / misses: cache outcomes, when ``cache_dir`` is set.
        points_run: simulation points executed.
        host_seconds: summed per-point simulator wall time (the work
            done, across all workers).
        wall_seconds: elapsed wall time spent inside ``run_points``
            (the time you waited); ``host_seconds / wall_seconds`` is
            the achieved parallelism.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None) -> None:
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self.cache_dir = cache_dir
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.points_run = 0
        self.host_seconds = 0.0
        self.wall_seconds = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def run_points(self, points: Iterable[SimPoint],
                   jobs: Optional[int] = None) -> List[SimResult]:
        """Run every point; results return in submission order."""
        points = list(points)
        jobs = jobs if jobs else self.jobs
        jobs = max(1, min(jobs, len(points) or 1))
        started = time.perf_counter()
        unknown = sorted({p.engine for p in points} - set(ENGINE_FACTORIES))
        if unknown:
            raise KeyError(f"unknown engine(s): {', '.join(unknown)}")
        jobs_args = [(point, self.cache_dir) for point in points]
        if jobs == 1:
            outcomes = [_worker(job) for job in jobs_args]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                # ``map`` preserves submission order -- the determinism
                # guarantee the tables rely on.
                outcomes = list(pool.map(_worker, jobs_args))
        self.wall_seconds += time.perf_counter() - started
        results: List[SimResult] = []
        for result, hit in outcomes:
            if self.cache_dir is not None:
                if hit:
                    self.hits += 1
                else:
                    self.misses += 1
            self.points_run += 1
            self.host_seconds += float(
                result.extra.get("host_seconds", 0.0)
            )
            results.append(result)
        return results


def run_suite_parallel(
    runner: ParallelRunner,
    engine_name: str,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
) -> SimResult:
    """Parallel twin of :func:`~repro.analysis.sweeps.run_suite`."""
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    results = runner.run_points(
        SimPoint(engine_name, workload, config) for workload in workloads
    )
    return aggregate(results)


def per_loop_parallel(
    runner: ParallelRunner,
    engine_name: str,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
) -> List[SimResult]:
    """Parallel twin of :func:`~repro.analysis.sweeps.per_loop_baseline`
    (for any engine)."""
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    return runner.run_points(
        SimPoint(engine_name, workload, config) for workload in workloads
    )


def sweep_sizes_parallel(
    runner: ParallelRunner,
    engine_name: str,
    sizes: Iterable[int],
    workloads: Optional[Sequence[Workload]] = None,
    base_config: Optional[MachineConfig] = None,
    baseline: Optional[SimResult] = None,
    **config_overrides,
) -> Sweep:
    """Parallel twin of :func:`~repro.analysis.sweeps.sweep_sizes`.

    The whole (size x workload) grid -- plus the baseline suite when
    one is not supplied -- goes out as a single flat fan-out, then rows
    aggregate per size in submission order, so the resulting
    :class:`Sweep` is identical to the serial one.
    """
    sizes = list(sizes)
    workloads = list(workloads) if workloads is not None else all_loops()
    config = base_config or CRAY1_LIKE
    points: List[SimPoint] = []
    if baseline is None:
        points.extend(
            SimPoint("simple", workload, config) for workload in workloads
        )
    swept_configs = [
        config.with_(window_size=size, **config_overrides) for size in sizes
    ]
    for swept in swept_configs:
        points.extend(
            SimPoint(engine_name, workload, swept) for workload in workloads
        )
    results = runner.run_points(points)
    cursor = 0
    if baseline is None:
        baseline = aggregate(results[:len(workloads)])
        cursor = len(workloads)
    sweep = Sweep(engine=engine_name, baseline=baseline)
    for size in sizes:
        chunk = results[cursor:cursor + len(workloads)]
        cursor += len(workloads)
        result = aggregate(chunk)
        sweep.rows.append(
            SweepRow(
                size=size,
                speedup=speedup(baseline, result),
                issue_rate=result.issue_rate,
                cycles=result.cycles,
            )
        )
    return sweep
