"""Dynamic dependence analysis: graphs, distances, dataflow limits.

The paper's whole argument starts from a measurement: "the main reason
for this sub-optimal performance is data dependencies" (§2.2), and its
§6.2 discussion turns on *dependency distance* (how many instructions
separate a producer from its consumer).  This module makes both notions
first-class:

* :func:`build_dependence_graph` -- the dynamic dataflow DAG of a trace
  (register RAW edges plus memory RAW edges), as a ``networkx.DiGraph``;
* :func:`dependence_distances` -- the distance histogram behind §6.2:
  short distances are resolved by result-bus snooping, long distances
  are exactly the cases where the no-bypass RUU must wait for the
  commit bus;
* :func:`dataflow_limit` -- the critical-path bound: the minimum cycles
  any machine needs given only true dependencies and functional-unit
  latencies (infinite window, infinite fetch, no structural hazards).
  Engines can then be scored as a fraction of the dataflow limit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..isa.opcodes import FUClass
from ..machine.config import CRAY1_LIKE, MachineConfig
from ..trace.trace import Trace


def build_dependence_graph(trace: Trace) -> "nx.DiGraph":
    """The dynamic dataflow DAG of a trace.

    Nodes are dynamic sequence numbers with attributes ``pc``, ``fu``
    and ``mnemonic``.  Edges carry ``kind`` ("reg" or "mem") and
    ``register``/``address``.  Only true (RAW) dependencies appear --
    anti and output dependencies are artifacts of register reuse that
    every mechanism in the repository renames away.
    """
    graph = nx.DiGraph()
    last_writer: Dict[object, int] = {}
    last_store: Dict[int, int] = {}
    for entry in trace:
        inst = entry.inst
        graph.add_node(
            entry.seq,
            pc=entry.pc,
            fu=inst.fu,
            mnemonic=inst.opcode.mnemonic,
        )
        for reg in inst.sources:
            producer = last_writer.get(reg)
            if producer is not None:
                graph.add_edge(
                    producer, entry.seq, kind="reg", register=reg.name
                )
        if inst.is_load and entry.address is not None:
            producer = last_store.get(entry.address)
            if producer is not None:
                graph.add_edge(
                    producer, entry.seq, kind="mem", address=entry.address
                )
        if inst.dest is not None:
            last_writer[inst.dest] = entry.seq
        if inst.is_store and entry.address is not None:
            last_store[entry.address] = entry.seq
    return graph


def dependence_distances(trace: Trace) -> Counter:
    """Histogram of producer->consumer distances (dynamic instructions).

    Distance 1 means back-to-back dependent instructions; the paper's
    §6.2 example shows why *large* distances hurt the no-bypass RUU
    (the producer has completed -- and can only be read from the commit
    bus -- by the time the consumer issues).
    """
    graph = build_dependence_graph(trace)
    distances: Counter = Counter()
    for producer, consumer in graph.edges():
        distances[consumer - producer] += 1
    return distances


@dataclass
class DataflowLimit:
    """Critical-path analysis of one trace."""

    trace_length: int
    critical_path_cycles: int
    ideal_ipc: float
    critical_path_nodes: List[int]
    fu_cycles_on_path: Dict[FUClass, int]

    def describe(self) -> str:
        mix = ", ".join(
            f"{fu.value}={cycles}"
            for fu, cycles in sorted(
                self.fu_cycles_on_path.items(), key=lambda kv: -kv[1]
            )
        )
        return (
            f"{self.trace_length} instructions, dataflow critical path "
            f"{self.critical_path_cycles} cycles (ideal IPC "
            f"{self.ideal_ipc:.2f}); path latency by unit: {mix}"
        )


def dataflow_limit(
    trace: Trace, config: Optional[MachineConfig] = None
) -> DataflowLimit:
    """Minimum execution cycles given only true dependencies.

    Every instruction costs its functional-unit latency; an instruction
    may start once all its producers finish.  This ignores issue width,
    window size, the result bus and branches -- it is the bound an
    infinitely wide, perfectly speculative machine could approach, and
    the denominator for "fraction of dataflow limit" scores.
    """
    config = config or CRAY1_LIKE
    graph = build_dependence_graph(trace)
    finish: Dict[int, int] = {}
    best_pred: Dict[int, Optional[int]] = {}
    for seq in sorted(graph.nodes):
        latency = config.latency(graph.nodes[seq]["fu"])
        start = 0
        pred: Optional[int] = None
        for producer in graph.predecessors(seq):
            if finish[producer] > start:
                start = finish[producer]
                pred = producer
        finish[seq] = start + latency
        best_pred[seq] = pred
    if not finish:
        return DataflowLimit(0, 0, 0.0, [], {})
    tail = max(finish, key=lambda seq: finish[seq])
    path: List[int] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = best_pred[cursor]
    path.reverse()
    fu_cycles: Dict[FUClass, int] = {}
    for seq in path:
        fu = graph.nodes[seq]["fu"]
        fu_cycles[fu] = fu_cycles.get(fu, 0) + config.latency(fu)
    critical = finish[tail]
    return DataflowLimit(
        trace_length=len(trace),
        critical_path_cycles=critical,
        ideal_ipc=len(trace) / critical if critical else 0.0,
        critical_path_nodes=path,
        fu_cycles_on_path=fu_cycles,
    )


def distance_summary(trace: Trace, buckets=(1, 2, 4, 8, 16)) -> str:
    """Human-readable dependence-distance distribution."""
    distances = dependence_distances(trace)
    total = sum(distances.values())
    if not total:
        return "no dependencies"
    lines = [f"{total} true dependencies:"]
    previous = 0
    for bound in buckets:
        count = sum(
            n for distance, n in distances.items()
            if previous < distance <= bound
        )
        lines.append(
            f"  distance {previous + 1:>3d}..{bound:<3d}: "
            f"{count:6d} ({count / total:6.1%})"
        )
        previous = bound
    rest = sum(n for d, n in distances.items() if d > previous)
    lines.append(
        f"  distance  > {previous:<3d}: {rest:6d} ({rest / total:6.1%})"
    )
    return "\n".join(lines)
