"""Result export (CSV/JSON) and dependency-free ASCII charts.

Sweeps and results can be persisted for external tooling and rendered
as terminal line charts -- the repository is offline-first, so no
plotting library is assumed.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from ..machine.stats import SimResult
from .sweeps import Sweep


def sweep_to_rows(sweep: Sweep) -> List[Dict[str, object]]:
    """Flatten a sweep into dict rows (size, speedup, issue_rate, ...)."""
    return [
        {
            "engine": sweep.engine,
            "size": row.size,
            "speedup": row.speedup,
            "issue_rate": row.issue_rate,
            "cycles": row.cycles,
            "baseline_cycles": sweep.baseline.cycles,
        }
        for row in sweep.rows
    ]


def sweep_to_csv(sweep: Sweep) -> str:
    """Render a sweep as CSV text."""
    rows = sweep_to_rows(sweep)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def result_to_dict(result: SimResult) -> Dict[str, object]:
    """JSON-safe dictionary for one simulation result."""
    return {
        "engine": result.engine,
        "workload": result.workload,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "issue_rate": result.issue_rate,
        "branches": result.branches,
        "branches_taken": result.branches_taken,
        "interrupts": result.interrupts,
        "mispredictions": result.mispredictions,
        "squashed": result.squashed,
        "stalls": dict(result.stalls),
        "extra": {
            key: value
            for key, value in result.extra.items()
            if isinstance(value, (int, float, str, dict, list))
        },
    }


def results_to_json(results: Sequence[SimResult], indent: int = 2) -> str:
    """Serialize results to a JSON document."""
    return json.dumps(
        [result_to_dict(result) for result in results], indent=indent
    )


def ascii_chart(
    curves: Dict[str, Dict[int, float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "speedup",
) -> str:
    """Plot one or more (size -> value) curves as an ASCII chart.

    Each curve gets a distinct glyph; the x axis spans the union of the
    sizes, the y axis the value range (zero-based).
    """
    if not curves:
        return "(no curves)"
    glyphs = "*o+x#@%&"
    xs = sorted({size for curve in curves.values() for size in curve})
    peak = max(
        value for curve in curves.values() for value in curve.values()
    )
    if peak <= 0:
        peak = 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = xs[0], xs[-1]
    x_span = max(1, x_hi - x_lo)

    def col(x: int) -> int:
        return round((x - x_lo) / x_span * (width - 1))

    def row(value: float) -> int:
        return (height - 1) - round(value / peak * (height - 1))

    for index, (label, curve) in enumerate(sorted(curves.items())):
        glyph = glyphs[index % len(glyphs)]
        for x, value in sorted(curve.items()):
            r, c = row(value), col(x)
            grid[r][c] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for r, cells in enumerate(grid):
        if r == 0:
            axis = f"{peak:6.2f} |"
        elif r == height - 1:
            axis = f"{0.0:6.2f} |"
        else:
            axis = "       |"
        lines.append(axis + "".join(cells))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_lo:<8d}{y_label:^{width - 16}s}{x_hi:>8d}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}"
        for i, label in enumerate(sorted(curves))
    )
    lines.append("        " + legend)
    return "\n".join(lines)
