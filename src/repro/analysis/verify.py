"""Self-verification: check an engine's architectural correctness.

``verify_engine`` runs one engine across a workload suite and compares
final registers/memory/instruction counts against the golden functional
model.  This is the same invariant the test-suite enforces, packaged as
a library call (and the ``python -m repro verify`` command) so that
downstream modifications -- new engines, new configs, edited kernels --
can be checked in one line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..machine.config import CRAY1_LIKE, MachineConfig
from ..trace.iss import reference_state
from ..workloads.base import Workload
from ..workloads.livermore import all_loops
from .sweeps import ENGINE_FACTORIES


@dataclass
class VerificationFailure:
    """One workload on which an engine diverged from the golden model."""

    workload: str
    register_diff: Dict[str, tuple]
    memory_diff: Dict[int, tuple]
    retired: int
    expected_retired: int
    interrupt: Optional[str] = None

    def describe(self) -> str:
        parts = [f"{self.workload}:"]
        if self.interrupt:
            parts.append(f"unexpected interrupt ({self.interrupt})")
        if self.register_diff:
            parts.append(f"{len(self.register_diff)} register(s) differ")
        if self.memory_diff:
            parts.append(f"{len(self.memory_diff)} memory word(s) differ")
        if self.retired != self.expected_retired:
            parts.append(
                f"retired {self.retired} != {self.expected_retired}"
            )
        return " ".join(parts)


@dataclass
class VerificationReport:
    """Outcome of verifying one engine over a suite."""

    engine: str
    workloads_checked: int = 0
    failures: List[VerificationFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.passed:
            return (
                f"{self.engine}: OK -- bit-exact with the golden model "
                f"on {self.workloads_checked} workload(s)"
            )
        lines = [
            f"{self.engine}: FAILED on {len(self.failures)} of "
            f"{self.workloads_checked} workload(s)"
        ]
        lines += [f"  {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)


def verify_engine(
    engine_name: str,
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
) -> VerificationReport:
    """Check one engine against the golden model on each workload."""
    builder = ENGINE_FACTORIES[engine_name]
    workloads = list(workloads) if workloads is not None else all_loops()
    config = config or CRAY1_LIKE
    report = VerificationReport(engine=engine_name)
    for workload in workloads:
        report.workloads_checked += 1
        golden = reference_state(workload.program, workload.initial_memory)
        memory = workload.make_memory()
        engine = builder(workload.program, config, memory)
        result = engine.run()
        register_diff = engine.regs.diff(golden.regs)
        memory_diff = memory.diff(golden.memory)
        interrupted = (
            engine.interrupt_record.describe()
            if engine.interrupt_record is not None else None
        )
        if register_diff or memory_diff or interrupted \
                or result.instructions != golden.executed:
            report.failures.append(
                VerificationFailure(
                    workload=workload.name,
                    register_diff=register_diff,
                    memory_diff=memory_diff,
                    retired=result.instructions,
                    expected_retired=golden.executed,
                    interrupt=interrupted,
                )
            )
    return report


def verify_all(
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[MachineConfig] = None,
    engines: Optional[Sequence[str]] = None,
) -> List[VerificationReport]:
    """Verify every registered engine (or a named subset)."""
    names = list(engines) if engines is not None \
        else sorted(ENGINE_FACTORIES)
    return [verify_engine(name, workloads, config) for name in names]
