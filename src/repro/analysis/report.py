"""Campaign report generator: one Markdown document for a whole run.

``build_report`` runs a configurable campaign -- per-loop baseline
detail (the breakdown the paper omits "for reasons of brevity"),
mechanism comparisons, stall/FU breakdowns, and the Table 2-6 sweeps --
and renders a self-contained Markdown report.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..machine.config import CRAY1_LIKE, MachineConfig
from ..machine.stats import SimResult
from ..workloads.base import Workload
from ..workloads.livermore import all_loops
from . import paper_data
from .sweeps import ENGINE_FACTORIES, run_suite, run_workload, sweep_sizes


@dataclass
class ReportSpec:
    """What to include in a campaign report."""

    engines: Sequence[str] = (
        "simple", "dispatch-stack", "tomasulo", "rstu",
        "ruu-bypass", "ruu-limited", "ruu-nobypass", "spec-ruu",
    )
    window_size: int = 12
    sweep_engines: Sequence[str] = ("rstu", "ruu-bypass")
    sweep_sizes: Sequence[int] = (3, 6, 10, 20, 30)
    include_per_loop: bool = True
    include_stalls: bool = True


def _md_table(headers: List[str], rows: List[List[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def build_report(
    workloads: Optional[Sequence[Workload]] = None,
    spec: Optional[ReportSpec] = None,
    config: Optional[MachineConfig] = None,
) -> str:
    """Run the campaign and render the Markdown report."""
    workloads = list(workloads) if workloads is not None else all_loops()
    spec = spec or ReportSpec()
    base_config = config or CRAY1_LIKE
    engine_config = base_config.with_(window_size=spec.window_size)

    sections: List[str] = []
    sections.append("# RUU reproduction -- campaign report\n")
    sections.append(
        f"*workloads:* {', '.join(w.name for w in workloads)}  \n"
        f"*window/buffer size:* {spec.window_size}  \n"
        f"*engines:* {', '.join(spec.engines)}\n"
    )

    # -- per-loop baseline detail ---------------------------------------
    per_loop: Dict[str, Dict[str, SimResult]] = {}
    for engine in spec.engines:
        builder = ENGINE_FACTORIES[engine]
        cfg = base_config if engine == "simple" else engine_config
        per_loop[engine] = {
            workload.name: run_workload(builder, workload, cfg)
            for workload in workloads
        }

    if spec.include_per_loop:
        sections.append("## Per-loop issue rates\n")
        headers = ["loop"] + list(spec.engines)
        rows = []
        for workload in workloads:
            row: List[object] = [workload.name]
            for engine in spec.engines:
                row.append(_fmt(per_loop[engine][workload.name].issue_rate))
            rows.append(row)
        sections.append(_md_table(headers, rows) + "\n")

    # -- aggregate comparison ----------------------------------------------
    sections.append("## Aggregate comparison\n")
    aggregates = {
        engine: run_suite(
            ENGINE_FACTORIES[engine], workloads,
            base_config if engine == "simple" else engine_config,
        )
        for engine in spec.engines
    }
    baseline = aggregates[spec.engines[0]]
    rows = []
    for engine, result in aggregates.items():
        rows.append([
            engine,
            result.cycles,
            _fmt(baseline.cycles / result.cycles),
            _fmt(result.issue_rate),
        ])
    sections.append(
        _md_table(["engine", "cycles", "speedup", "issue rate"], rows)
        + "\n"
    )

    # -- stall breakdown -------------------------------------------------------
    if spec.include_stalls:
        sections.append("## Stall breakdown (cycles lost per cause)\n")
        causes = sorted({
            cause
            for result in aggregates.values()
            for cause in result.stalls
        })
        headers = ["engine"] + causes
        rows = []
        for engine, result in aggregates.items():
            rows.append(
                [engine] + [result.stalls.get(cause, 0) for cause in causes]
            )
        sections.append(_md_table(headers, rows) + "\n")

    # -- sweeps ------------------------------------------------------------------
    for engine in spec.sweep_engines:
        sections.append(f"## Window sweep: {engine}\n")
        sweep = sweep_sizes(
            engine, spec.sweep_sizes, workloads=workloads,
            base_config=base_config, baseline=baseline,
        )
        paper_table = {
            "rstu": paper_data.TABLE2_RSTU,
            "ruu-bypass": paper_data.TABLE4_RUU_BYPASS,
            "ruu-nobypass": paper_data.TABLE5_RUU_NOBYPASS,
            "ruu-limited": paper_data.TABLE6_RUU_LIMITED,
        }.get(engine, {})
        headers = ["entries", "speedup", "issue rate", "paper speedup"]
        rows = []
        for row in sweep.rows:
            paper_cell = (
                _fmt(paper_table[row.size][0])
                if row.size in paper_table else "-"
            )
            rows.append([
                row.size, _fmt(row.speedup), _fmt(row.issue_rate),
                paper_cell,
            ])
        sections.append(_md_table(headers, rows) + "\n")

    sections.append(
        "---\n*generated by `repro.analysis.report` "
        "(timestamps omitted for deterministic artifacts)*\n"
    )
    return "\n".join(sections)
