"""Chaos engines: deliberately misbehaving workers for fleet tests.

The self-healing guarantees of :class:`~repro.analysis.parallel.
ParallelRunner` -- retry after a worker crash, per-point timeouts,
serial fallback -- are only guarantees if something exercises them.
This module registers engine factories that misbehave **only inside a
worker process** (detected by comparing ``os.getpid()`` against the pid
captured at import time), so the serial-fallback path in the parent
process still succeeds and the runner's recovery can be observed
end-to-end:

* ``chaos-crash``      -- the worker dies with ``os._exit`` (simulates
  a segfaulting or OOM-killed simulation); in the parent it runs
  normally.
* ``chaos-hang``       -- the worker sleeps far past any sane timeout;
  in the parent it runs normally.
* ``chaos-crash-once`` -- dies in a worker until a sentinel file
  exists, then behaves; exercises the retry-then-succeed path without
  ever needing the serial fallback.
* ``chaos-error``      -- raises :class:`~repro.machine.faults.
  SimulationError` everywhere; exercises the permanent-failure path
  (:class:`~repro.analysis.parallel.FleetError`).

``ProcessPoolExecutor`` forks on Linux, so factories registered in the
parent's :data:`~repro.analysis.sweeps.ENGINE_FACTORIES` are visible in
workers without any pickling of the classes themselves.

Test-support code, but shipped in the package so the CI chaos job and
``pytest`` can share it.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from ..issue.simple import SimpleEngine
from ..machine.faults import SimulationError
from ..machine.stats import SimResult
from .sweeps import ENGINE_FACTORIES

#: Pid of the process that imported this module -- i.e. the test/CLI
#: parent.  Forked pool workers inherit the value but have a new pid.
_MAIN_PID = os.getpid()

#: Keys this module adds to :data:`ENGINE_FACTORIES`.
CHAOS_ENGINES = (
    "chaos-crash", "chaos-hang", "chaos-crash-once", "chaos-error",
)

#: Exit code used by crashing chaos workers, distinctive in waitpid
#: statuses and log output.
CRASH_EXIT_CODE = 13

_state_dir: Optional[str] = None


def _in_worker() -> bool:
    return os.getpid() != _MAIN_PID


class ChaosCrashEngine(SimpleEngine):
    """Kills its worker process mid-run; behaves in the parent."""

    name = "chaos-crash"

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        if _in_worker():
            os._exit(CRASH_EXIT_CODE)
        return super().run(max_cycles)


class ChaosHangEngine(SimpleEngine):
    """Never returns inside a worker; behaves in the parent."""

    name = "chaos-hang"

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        if _in_worker():
            time.sleep(3600)
        return super().run(max_cycles)


class ChaosCrashOnceEngine(SimpleEngine):
    """Crashes its worker until the sentinel file exists, then runs.

    The first worker attempt drops the sentinel *before* dying, so the
    retry round finds it and succeeds -- modelling a transient fault
    (e.g. a host OOM that clears on retry).
    """

    name = "chaos-crash-once"

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        if _in_worker() and _state_dir is not None:
            sentinel = os.path.join(_state_dir, "crash-once.sentinel")
            if not os.path.exists(sentinel):
                with open(sentinel, "w") as handle:
                    handle.write(str(os.getpid()))
                os._exit(CRASH_EXIT_CODE)
        return super().run(max_cycles)


class ChaosErrorEngine(SimpleEngine):
    """Raises a deterministic simulation error in every process."""

    name = "chaos-error"

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        raise SimulationError("chaos-error: injected failure")


def install_chaos_engines(state_dir: Optional[str] = None) -> None:
    """Register the chaos factories (idempotent).

    ``state_dir`` hosts the ``chaos-crash-once`` sentinel; pass a temp
    directory so repeated runs start from the crashing state.
    """
    global _state_dir
    _state_dir = state_dir
    ENGINE_FACTORIES["chaos-crash"] = \
        lambda program, config, memory: ChaosCrashEngine(
            program, config, memory)
    ENGINE_FACTORIES["chaos-hang"] = \
        lambda program, config, memory: ChaosHangEngine(
            program, config, memory)
    ENGINE_FACTORIES["chaos-crash-once"] = \
        lambda program, config, memory: ChaosCrashOnceEngine(
            program, config, memory)
    ENGINE_FACTORIES["chaos-error"] = \
        lambda program, config, memory: ChaosErrorEngine(
            program, config, memory)


def remove_chaos_engines() -> None:
    """Undo :func:`install_chaos_engines`."""
    global _state_dir
    _state_dir = None
    for key in CHAOS_ENGINES:
        ENGINE_FACTORIES.pop(key, None)
