"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``        -- assemble and run an assembly file on an engine
* ``trace PROG``      -- run with the observability recorder: per-cycle
  attribution (every cycle in exactly one bucket) and a
  Perfetto-loadable Chrome trace (``--out trace.json``)
* ``diff PROG``       -- run a program on two engines
  (``--engines A,B``) and report the first commit-order divergence,
  per-bucket attribution deltas and per-instruction latency deltas
* ``lint FILE``       -- statically verify an assembly file (CFG,
  reaching definitions, config cross-checks, critical-path bound)
* ``compare [loops]`` -- compare all issue mechanisms on Livermore loops
* ``tables``          -- regenerate the paper's Tables 1-6
  (``--jobs N`` fans the sweeps over worker processes)
* ``bench``           -- measure the sweep harness itself (serial vs
  parallel, cache hit rate) and emit a ``BENCH_*.json`` perf baseline
* ``report``          -- generate a Markdown campaign report
* ``verify``          -- check engines against the golden model
* ``drill``           -- restart drill: inject a mid-program fault,
  checkpoint at the trap, restore into a fresh (possibly different)
  precise engine, resume, and verify against the golden model
* ``loops``           -- list the bundled workloads with their stats
* ``serve``           -- run the simulator as a persistent HTTP
  service (bounded admission queue, request coalescing, shared result
  cache, Prometheus ``/metrics``; see ``docs/service.md``)
* ``loadbench``       -- drive a server through the standard load
  phases and emit ``BENCH_serve.json`` with pass/fail gates

``repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    ENGINE_FACTORIES,
    format_sweep_table,
    format_table1,
    paper_data,
    per_loop_baseline,
    run_suite,
    sweep_sizes,
)
from .isa import assemble
from .machine import MachineConfig, Memory
from .trace import FunctionalExecutor
from .workloads import LIVERMORE_FACTORIES, all_loops


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    with open(args.file) as handle:
        program = assemble(handle.read(), name=args.file)
    config = MachineConfig(window_size=args.window)
    builder = ENGINE_FACTORIES[args.engine]
    engine = builder(program, config, Memory())
    if args.timeline or args.timeline_json:
        from .machine.timeline import Timeline

        engine.timeline = Timeline()
    result = engine.run()
    print(result.describe())
    if engine.interrupt_record is not None:
        print(engine.interrupt_record.describe())
    if args.timeline and engine.timeline is not None:
        print()
        print(engine.timeline.gantt(
            program=program, first=args.first, last=args.last
        ))
        print()
        print(engine.timeline.summary())
    if args.timeline_json and engine.timeline is not None:
        with open(args.timeline_json, "w") as handle:
            json.dump(engine.timeline.to_json(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.timeline_json}")
    if args.registers:
        for name, value in sorted(engine.regs.nonzero().items()):
            print(f"  {name:>4s} = {value}")
    return 0


def _resolve_program(spec: str):
    """A positional PROG is a bundled workload name or an asm file.

    Returns ``(program, memory)`` with a fresh memory either way.
    """
    from .workloads import synthetic_suite

    registry = {
        workload.name: workload
        for workload in all_loops() + synthetic_suite()
    }
    if spec in registry:
        workload = registry[spec]
        return workload.program, workload.make_memory()
    with open(spec) as handle:
        return assemble(handle.read(), name=spec), Memory()


def _traced_run(program, memory, engine_name: str,
                config: MachineConfig, sample_every: int = 1):
    """Run one engine with a detail recorder; returns (recorder, result)."""
    from .obs import TraceRecorder

    engine = ENGINE_FACTORIES[engine_name](program, config, memory)
    recorder = TraceRecorder(detail=True, sample_every=sample_every)
    engine.recorder = recorder
    result = engine.run()
    return recorder, result


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import attribute_cycles, validate_chrome_trace, \
        write_chrome_trace

    program, memory = _resolve_program(args.prog)
    config = MachineConfig(window_size=args.window)
    recorder, result = _traced_run(
        program, memory, args.engine, config,
        sample_every=args.sample_every,
    )
    attribution = attribute_cycles(result, recorder)
    print(result.describe())
    print(attribution.describe())
    if args.out:
        document = write_chrome_trace(args.out, recorder)
        problems = validate_chrome_trace(document, cycles=result.cycles)
        if problems:
            print(f"{args.out}: INVALID trace ({len(problems)} problems)")
            for problem in problems[:10]:
                print(f"  {problem}")
            return 1
        print(
            f"wrote {args.out} ({len(document['traceEvents'])} events; "
            f"open in https://ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from .obs import diff_against_iss, diff_recorders

    engines = [name.strip() for name in args.engines.split(",") if name]
    if len(engines) != 2:
        print("--engines needs exactly two comma-separated names "
              "(e.g. --engines ruu-bypass,tomasulo)")
        return 2
    unknown = [name for name in engines if name not in ENGINE_FACTORIES]
    if unknown:
        print(f"unknown engine(s): {', '.join(unknown)}; "
              f"choose from {', '.join(sorted(ENGINE_FACTORIES))}")
        return 2
    config = MachineConfig(window_size=args.window)
    recorders = []
    for name in engines:
        program, memory = _resolve_program(args.prog)
        recorders.append(_traced_run(program, memory, name, config))
    (rec_a, res_a), (rec_b, res_b) = recorders
    diff = diff_recorders(rec_a, rec_b, res_a, res_b, top=args.top)
    print(diff.describe())
    if args.iss:
        program, memory = _resolve_program(args.prog)
        golden = FunctionalExecutor(program, memory).run()
        for name, recorder in zip(engines, (rec_a, rec_b)):
            divergence = diff_against_iss(recorder, golden)
            verdict = "matches the golden ISS commit order" \
                if divergence is None else (
                    f"diverges from the golden ISS at retirement "
                    f"#{divergence.index} ({divergence.text_a} vs "
                    f"{divergence.text_b})"
                )
            print(f"  {name:>16s}: {verdict}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(diff.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .isa import AssemblyError, ProgramError
    from .lint import lint_program

    try:
        with open(args.file) as handle:
            source = handle.read()
        program = assemble(source, name=args.file)
    except OSError as exc:
        print(f"{args.file}: error: {exc.strerror or exc}")
        return 1
    except (AssemblyError, ProgramError) as exc:
        print(f"{args.file}: error: {exc}")
        return 1
    config = MachineConfig(window_size=args.window)
    report = lint_program(program, config)
    if args.json:
        print(report.to_json())
    else:
        print(report.describe())
    if not report.ok:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    numbers = args.loops or list(range(1, 15))
    workloads = [LIVERMORE_FACTORIES[n]() for n in numbers]
    config = MachineConfig(window_size=args.window)
    results = {
        name: run_suite(builder, workloads, config)
        for name, builder in ENGINE_FACTORIES.items()
    }
    baseline = results["simple"]
    print(f"{'engine':>16s} {'cycles':>9s} {'speedup':>8s} {'rate':>7s}")
    for name in sorted(results):
        result = results[name]
        print(
            f"{name:>16s} {result.cycles:9d} "
            f"{baseline.cycles / result.cycles:8.3f} "
            f"{result.issue_rate:7.3f}"
        )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .analysis.parallel import ParallelRunner

    runner = None
    if getattr(args, "jobs", 1) and args.jobs > 1:
        runner = ParallelRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    loops = all_loops()
    print(format_table1(per_loop_baseline(loops, runner=runner),
                        paper_data.TABLE1_BASELINE))
    print()
    baseline = run_suite(ENGINE_FACTORIES["simple"], loops, runner=runner)
    specs = [
        ("Table 2: RSTU (1 path)", "rstu", paper_data.RSTU_SIZES,
         paper_data.TABLE2_RSTU, {}),
        ("Table 3: RSTU (2 paths)", "rstu", paper_data.RSTU_SIZES,
         paper_data.TABLE3_RSTU_2PATH, {"dispatch_paths": 2}),
        ("Table 4: RUU with bypass", "ruu-bypass", paper_data.RUU_SIZES,
         paper_data.TABLE4_RUU_BYPASS, {}),
        ("Table 5: RUU without bypass", "ruu-nobypass",
         paper_data.RUU_SIZES, paper_data.TABLE5_RUU_NOBYPASS, {}),
        ("Table 6: RUU limited bypass", "ruu-limited",
         paper_data.RUU_SIZES, paper_data.TABLE6_RUU_LIMITED, {}),
    ]
    for title, engine, sizes, table, overrides in specs:
        sweep = sweep_sizes(engine, sizes, workloads=loops,
                            baseline=baseline, runner=runner, **overrides)
        print(format_sweep_table(sweep, table, title))
        print()
    if runner is not None and runner.points_run:
        print(
            f"[{runner.points_run} points over {runner.jobs} jobs: "
            f"{runner.wall_seconds:.1f}s wall, "
            f"{runner.host_seconds:.1f}s simulator time, "
            f"cache {runner.hits} hits / {runner.misses} misses]"
        )
        if not runner.fleet.clean:
            print(runner.fleet.describe())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import tempfile

    from .analysis.bench import format_bench, run_bench, write_bench_json
    from .workloads import SUITES

    workloads = SUITES[args.suite]()
    engines = args.engines or None
    unknown = [name for name in (engines or [])
               if name not in ENGINE_FACTORIES]
    if unknown:
        print(f"unknown engine(s): {', '.join(unknown)}; "
              f"choose from {', '.join(sorted(ENGINE_FACTORIES))}")
        return 2
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        cache_dir = args.cache_dir or scratch
        kwargs = {}
        if engines:
            kwargs["engines"] = engines
        if args.sizes:
            kwargs["sizes"] = args.sizes
        report = run_bench(
            workloads, jobs=args.jobs, cache_dir=cache_dir, **kwargs
        )
    print(format_bench(report))
    if args.json:
        write_bench_json(report, args.json)
        print(f"wrote {args.json}")
    return 0 if report["identical_to_serial"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import ReportSpec, build_report
    from .workloads import SUITES

    workloads = SUITES[args.suite]()
    spec = ReportSpec(window_size=args.window)
    text = build_report(workloads, spec)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis.verify import verify_all
    from .workloads import SUITES

    unknown = [name for name in args.engines if name not in ENGINE_FACTORIES]
    if unknown:
        print(f"unknown engine(s): {', '.join(unknown)}; "
              f"choose from {', '.join(sorted(ENGINE_FACTORIES))}")
        return 2
    workloads = SUITES[args.suite]()
    config = MachineConfig(window_size=args.window)
    reports = verify_all(
        workloads, config,
        engines=args.engines or None,
    )
    failed = 0
    for report in reports:
        print(report.describe())
        if not report.passed:
            failed += 1
    return 1 if failed else 0


def _cmd_drill(args: argparse.Namespace) -> int:
    import json

    from .analysis.drill import PRECISE_ENGINES, restart_drill
    from .workloads import SUITES

    engines = args.engines or list(PRECISE_ENGINES)
    unknown = [name for name in engines if name not in ENGINE_FACTORIES]
    if unknown:
        print(f"unknown engine(s): {', '.join(unknown)}; "
              f"choose from {', '.join(sorted(ENGINE_FACTORIES))}")
        return 2
    workloads = SUITES[args.suite]()
    config = MachineConfig(window_size=args.window)
    report = restart_drill(
        engines=engines,
        workloads=workloads,
        config=config,
        checkpoint_dir=args.checkpoint_dir,
        cross_engine=not args.no_cross,
    )
    print(report.describe())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_loops(args: argparse.Namespace) -> int:
    for workload in all_loops():
        executor = FunctionalExecutor(
            workload.program, workload.make_memory()
        )
        trace = executor.run()
        print(
            f"{workload.name:>6s}  {len(workload.program):4d} static / "
            f"{len(trace):6d} dynamic instructions  "
            f"({workload.description})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from .serve.server import ServeApp
    from .serve.service import SimService

    if args.access_log:
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    service = SimService(
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        point_timeout=args.point_timeout,
        max_retries=args.max_retries,
        batch_max=args.batch_max,
    )
    app = ServeApp(service, request_timeout=args.request_timeout)
    try:
        return asyncio.run(app.run(args.host, args.port))
    except KeyboardInterrupt:
        return 0


def _cmd_loadbench(args: argparse.Namespace) -> int:
    from .serve.loadgen import (
        LoadGenerator,
        format_report,
        write_report_json,
    )

    handle = None
    host, port = args.host, args.port
    if args.spawn:
        import tempfile

        from .serve.server import serve_in_background

        scratch = tempfile.mkdtemp(prefix="repro-loadbench-cache-")
        handle = serve_in_background(
            jobs=args.jobs,
            queue_depth=args.queue_depth,
            cache_dir=scratch,
            point_timeout=args.point_timeout,
        )
        host, port = "127.0.0.1", handle.port
        print(f"spawned server on port {port} "
              f"(jobs={args.jobs}, queue={args.queue_depth})")
    elif port is None:
        print("either --port (attach) or --spawn is required")
        return 2
    try:
        generator = LoadGenerator(host, port)
        report = generator.run_all()
    finally:
        if handle is not None:
            handle.stop()
    print(format_report(report))
    write_report_json(report, args.json)
    print(f"wrote {args.json}")
    return 0 if report["passed"] else 1


def main(argv=None) -> int:
    from .version import get_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sohi RUU reproduction: CRAY-1-like issue-logic "
                    "simulators",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {get_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="assemble and run a program")
    p_run.add_argument("file")
    p_run.add_argument("--engine", default="ruu-bypass",
                       choices=sorted(ENGINE_FACTORIES))
    p_run.add_argument("--window", type=int, default=12)
    p_run.add_argument("--registers", action="store_true",
                       help="dump non-zero registers after the run")
    p_run.add_argument("--timeline", action="store_true",
                       help="print a pipeline Gantt diagram and "
                            "stage-delay summary after the run")
    p_run.add_argument("--first", type=int, default=0,
                       help="first instruction (dynamic seq) shown in "
                            "the --timeline Gantt (default 0)")
    p_run.add_argument("--last", type=int, default=24,
                       help="last instruction (dynamic seq) shown in "
                            "the --timeline Gantt (default 24)")
    p_run.add_argument("--timeline-json", default=None, metavar="PATH",
                       help="record a timeline and write it as JSON "
                            "(machine-readable Gantt data)")
    p_run.set_defaults(func=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run one engine with the observability recorder: full "
             "cycle attribution plus a Perfetto-loadable Chrome trace",
    )
    p_trace.add_argument("prog",
                         help="assembly file or bundled workload name "
                              "(e.g. LLL3; see 'repro loops')")
    p_trace.add_argument("--engine", default="ruu-bypass",
                         choices=sorted(ENGINE_FACTORIES))
    p_trace.add_argument("--window", type=int, default=12)
    p_trace.add_argument("--out", default=None, metavar="FILE",
                         help="write Chrome trace-event JSON here "
                              "(open in ui.perfetto.dev)")
    p_trace.add_argument("--sample-every", type=int, default=1,
                         help="occupancy sampling stride in cycles "
                              "(default 1: every cycle)")
    p_trace.set_defaults(func=_cmd_trace)

    p_diff = sub.add_parser(
        "diff",
        help="differential trace debugging: run a program on two "
             "engines and report where their pipelines diverge",
    )
    p_diff.add_argument("prog",
                        help="assembly file or bundled workload name")
    p_diff.add_argument("--engines", required=True, metavar="A,B",
                        help="exactly two engine names, comma-separated")
    p_diff.add_argument("--window", type=int, default=12)
    p_diff.add_argument("--top", type=int, default=10,
                        help="how many per-instruction latency deltas "
                             "to report (default 10)")
    p_diff.add_argument("--iss", action="store_true",
                        help="also check each engine's commit stream "
                             "against the golden functional ISS")
    p_diff.add_argument("--json", default=None, metavar="FILE",
                        help="write the machine-readable diff here")
    p_diff.set_defaults(func=_cmd_diff)

    p_lint = sub.add_parser(
        "lint", help="statically verify a program before running it"
    )
    p_lint.add_argument("file")
    p_lint.add_argument("--window", type=int, default=12,
                        help="window size for the config cross-checks")
    p_lint.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON diagnostics")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    p_lint.set_defaults(func=_cmd_lint)

    p_cmp = sub.add_parser("compare", help="compare all mechanisms")
    p_cmp.add_argument("loops", nargs="*", type=int)
    p_cmp.add_argument("--window", type=int, default=12)
    p_cmp.set_defaults(func=_cmd_compare)

    p_tab = sub.add_parser("tables", help="regenerate Tables 1-6")
    p_tab.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweeps (default 1: "
                            "serial)")
    p_tab.add_argument("--cache-dir", default=None,
                       help="shared on-disk result cache for the workers")
    p_tab.set_defaults(func=_cmd_tables)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the sweep harness (serial vs parallel) and emit "
             "a BENCH JSON perf baseline",
    )
    p_bench.add_argument("--jobs", type=int, default=0,
                         help="worker processes (default: cpu count)")
    p_bench.add_argument("--json", default=None, metavar="FILE",
                         help="write the machine-readable report here "
                              "(e.g. BENCH_sweeps.json)")
    p_bench.add_argument("--suite", default="quick",
                         choices=["quick", "livermore", "paper",
                                  "synthetic"])
    p_bench.add_argument("--engines", nargs="*", default=None,
                         help="engines to sweep (default: rstu ruu-bypass)")
    p_bench.add_argument("--sizes", nargs="*", type=int, default=None,
                         help="window sizes to sweep (default: 4 8 12)")
    p_bench.add_argument("--cache-dir", default=None,
                         help="result-cache directory (default: a "
                              "temporary directory, discarded after)")
    p_bench.set_defaults(func=_cmd_bench)

    p_report = sub.add_parser(
        "report", help="generate a Markdown campaign report"
    )
    p_report.add_argument("-o", "--output", default=None)
    p_report.add_argument("--suite", default="quick",
                          choices=["quick", "livermore", "paper",
                                   "synthetic"])
    p_report.add_argument("--window", type=int, default=12)
    p_report.set_defaults(func=_cmd_report)

    p_verify = sub.add_parser(
        "verify",
        help="check engines against the golden model",
    )
    p_verify.add_argument("engines", nargs="*",
                          help="engines to verify (default: all)")
    p_verify.add_argument("--suite", default="quick",
                          choices=["quick", "livermore", "paper",
                                   "synthetic"])
    p_verify.add_argument("--window", type=int, default=10)
    p_verify.set_defaults(func=_cmd_verify)

    p_drill = sub.add_parser(
        "drill",
        help="restart drill: fault -> checkpoint -> restore -> resume "
             "-> verify, for every precise engine",
    )
    p_drill.add_argument("engines", nargs="*",
                         help="engines to drill (default: all precise "
                              "engines)")
    p_drill.add_argument("--suite", default="livermore",
                         choices=["quick", "livermore", "paper",
                                  "synthetic"])
    p_drill.add_argument("--window", type=int, default=12)
    p_drill.add_argument("--checkpoint-dir", default=None,
                         help="keep checkpoint files here (default: a "
                              "temporary directory, discarded after)")
    p_drill.add_argument("--no-cross", action="store_true",
                         help="skip the cross-engine restore leg")
    p_drill.add_argument("--json", default=None, metavar="FILE",
                         help="write the machine-readable report here")
    p_drill.set_defaults(func=_cmd_drill)

    p_loops = sub.add_parser("loops", help="list bundled workloads")
    p_loops.set_defaults(func=_cmd_loops)

    p_serve = sub.add_parser(
        "serve",
        help="run the simulator as a persistent HTTP service",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker processes in the simulation pool")
    p_serve.add_argument("--queue-depth", type=int, default=32,
                         help="admission bound on pending points; "
                              "beyond it clients get 429 + Retry-After")
    p_serve.add_argument("--cache-dir", default=None,
                         help="shared on-disk result cache (default: "
                              "no persistent cache)")
    p_serve.add_argument("--point-timeout", type=float, default=120.0,
                         help="per-point wall clock before the worker "
                              "is killed")
    p_serve.add_argument("--request-timeout", type=float, default=None,
                         help="per-request deadline (default: derived "
                              "from the point timeout and retry budget)")
    p_serve.add_argument("--max-retries", type=int, default=1,
                         help="crash/timeout retries per point")
    p_serve.add_argument("--batch-max", type=int, default=None,
                         help="micro-batch cap per dispatch (default: "
                              "2x jobs)")
    p_serve.add_argument("--access-log", action="store_true",
                         help="print structured access-log lines")
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "loadbench",
        help="load-test a simulation server and emit BENCH_serve.json",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=None,
                        help="attach to a running server at this port")
    p_load.add_argument("--spawn", action="store_true",
                        help="spawn a private in-process server "
                             "instead of attaching")
    p_load.add_argument("--jobs", type=int, default=2,
                        help="worker processes for --spawn")
    p_load.add_argument("--queue-depth", type=int, default=16,
                        help="admission bound for --spawn (small by "
                             "default so the burst phase can provoke "
                             "backpressure)")
    p_load.add_argument("--point-timeout", type=float, default=120.0,
                        help="per-point timeout for --spawn")
    p_load.add_argument("--json", default="BENCH_serve.json",
                        metavar="FILE",
                        help="write the machine-readable report here")
    p_load.set_defaults(func=_cmd_loadbench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
