"""Smith & Pleszkun precise-interrupt schemes on the in-order machine."""

from .inorder import (
    FutureFileEngine,
    HistoryBufferEngine,
    InOrderPreciseEngine,
    ReorderBufferBypassEngine,
    ReorderBufferEngine,
)

__all__ = [
    "FutureFileEngine",
    "HistoryBufferEngine",
    "InOrderPreciseEngine",
    "ReorderBufferBypassEngine",
    "ReorderBufferEngine",
]
