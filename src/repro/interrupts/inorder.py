"""Smith & Pleszkun precise-interrupt schemes (paper section 4, ref [5]).

The paper frames the RUU against the classic mechanisms for making an
in-order-issue machine's interrupts precise: the plain reorder buffer,
the reorder buffer with bypasses, the history buffer, and the future
file.  These engines implement all four on top of the simple-issue
machine so the paper's qualitative claims can be measured:

* the **plain reorder buffer** "aggravates data dependencies": a value
  cannot be read until the reorder buffer updates the register, even if
  it was computed long ago -- destination registers stay busy from
  issue to *commit*;
* **bypass logic**, the **history buffer** and the **future file** all
  restore reads at *completion* time and perform alike -- they differ
  only in hardware cost (search paths, an extra read port, a duplicate
  register file), which is why the paper treats them as interchangeable
  bypass forms (§6.1);
* all four deliver precise interrupts and support restart, unlike the
  plain simple engine.

Issue remains strictly in order and blocking -- dependency *resolution*
(the RUU's other half) is exactly what these machines lack.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpKind
from ..isa.registers import Register, RegisterFile
from ..isa.semantics import coerce_for_bank, effective_address, evaluate
from ..machine.engine import Engine
from ..machine.faults import FAULT_TYPES, PageFault
from ..machine.stats import StallReason


class _BufEntry:
    """One slot of the result-reordering structure."""

    __slots__ = (
        "seq", "inst", "value", "fault", "done_cycle", "address",
        "datum", "old_value", "squashed",
    )

    def __init__(self, seq: int, inst: Instruction) -> None:
        self.seq = seq
        self.inst = inst
        self.value = None
        self.fault: Optional[Exception] = None
        self.done_cycle: Optional[int] = None
        self.address: Optional[int] = None
        self.datum = None
        self.old_value = None
        self.squashed = False

    @property
    def done(self) -> bool:
        return self.done_cycle is not None


class InOrderPreciseEngine(Engine):
    """Shared machinery: in-order issue, buffered in-order commit."""

    name = "inorder-precise"
    claims_precise_interrupts = True
    #: Does a pending destination register unblock at completion (True)
    #: or only at commit (False, the plain reorder buffer)?
    unblocks_at_completion = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.buffer: Deque[_BufEntry] = deque()
        self._busy: Dict[Register, _BufEntry] = {}

    # ------------------------------------------------------------------
    # register-read policy hooks
    # ------------------------------------------------------------------

    def _read_source(self, reg: Register) -> Tuple[bool, object]:
        """May the issue stage read ``reg`` now, and what value?"""
        entry = self._busy.get(reg)
        if entry is None:
            return True, self._issue_file_read(reg)
        return False, None

    def _issue_file_read(self, reg: Register):
        """Which register file does the issue stage read from?"""
        return self.regs.read(reg)

    def _on_complete(self, entry: _BufEntry) -> None:
        """A result arrived on the bus (still uncommitted)."""
        if self.unblocks_at_completion and entry.inst.dest is not None:
            if self._busy.get(entry.inst.dest) is entry:
                del self._busy[entry.inst.dest]

    def _recover_precise_state(self, fault_seq: int) -> None:
        """Undo any speculative register-file damage at an interrupt."""

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _try_issue(self, inst: Instruction, seq: int) -> bool:
        if len(self.buffer) >= self.config.window_size:
            self.stall(StallReason.WINDOW_FULL)
            return False
        values = []
        for reg in inst.sources:
            ok, value = self._read_source(reg)
            if not ok:
                self.stall(StallReason.SOURCE_BUSY)
                return False
            values.append(value)
        dest = inst.dest
        if dest is not None and dest in self._busy:
            self.stall(StallReason.DEST_BUSY)
            return False
        if not self.fus.can_accept(inst.fu, self.cycle):
            self.stall(StallReason.FU_BUSY)
            return False
        done_cycle = self.fus.result_cycle(inst.fu, self.cycle)
        if dest is not None and not self.result_bus.is_free(done_cycle):
            self.stall(StallReason.RESULT_BUS)
            return False

        entry = _BufEntry(seq, inst)
        self._execute(entry, values)
        self.fus.accept(inst.fu, self.cycle)
        if dest is not None:
            self.result_bus.reserve(done_cycle)
            entry.old_value = self._issue_file_read(dest)
            self._busy[dest] = entry
        self.buffer.append(entry)
        self._schedule_completion(done_cycle, entry)
        self.note(seq, "issue")
        self.note(seq, "dispatch")
        return True

    def _execute(self, entry: _BufEntry, values) -> None:
        """Compute at issue (in-order issue sees correct operands).

        Stores only *capture* their datum and address here; memory is
        written at commit, in program order -- that, plus buffered
        register updates, is what makes these machines precise.  Loads
        forward from uncommitted stores in the buffer.
        """
        inst = entry.inst
        kind = inst.opcode.kind
        try:
            if kind is OpKind.LOAD:
                entry.address = effective_address(values[-1], inst.imm)
                entry.value = coerce_for_bank(
                    inst.dest, self._load_value(entry.address)
                )
            elif kind is OpKind.STORE:
                entry.address = effective_address(values[-1], inst.imm)
                entry.datum = values[0]
            else:
                raw = evaluate(inst.opcode, values[:len(inst.srcs)], inst.imm)
                entry.value = coerce_for_bank(inst.dest, raw)
        except FAULT_TYPES as fault:
            entry.fault = fault

    def _load_value(self, address: int):
        """Read memory, honouring uncommitted stores in the buffer."""
        for entry in reversed(self.buffer):
            if entry.inst.is_store and entry.address == address \
                    and not entry.squashed:
                return entry.datum
        return self.memory.read(address)

    # ------------------------------------------------------------------
    # completion and commit
    # ------------------------------------------------------------------

    def _phase_complete(self) -> None:
        for entry in self._pop_completions():
            if entry.squashed:
                continue
            entry.done_cycle = self.cycle
            self.note(entry.seq, "complete")
            if entry.fault is None:
                self._on_complete(entry)

    def _phase_commit(self) -> None:
        if self.interrupt_record is not None:
            return
        budget = self.config.commit_paths
        while budget > 0 and self.buffer:
            entry = self.buffer[0]
            if not entry.done or entry.done_cycle >= self.cycle:
                return
            if entry.fault is not None:
                self._interrupt_at(entry)
                return
            inst = entry.inst
            if inst.is_store:
                try:
                    self.memory.write(entry.address, entry.datum)
                except PageFault as fault:
                    entry.fault = fault
                    self._interrupt_at(entry)
                    return
            if inst.dest is not None:
                self._commit_register(entry)
            self.buffer.popleft()
            self.note(entry.seq, "commit")
            self._note_retired(entry.seq)
            budget -= 1

    def _commit_register(self, entry: _BufEntry) -> None:
        self.regs.write(entry.inst.dest, entry.value)
        if self._busy.get(entry.inst.dest) is entry:
            del self._busy[entry.inst.dest]

    # ------------------------------------------------------------------
    # precise interrupts
    # ------------------------------------------------------------------

    def _interrupt_at(self, entry: _BufEntry) -> None:
        self._take_interrupt(
            entry.fault, seq=entry.seq, pc=entry.inst.pc, precise=True
        )
        doomed = sum(1 for seq in self.retire_log if seq >= entry.seq)
        if doomed:
            self.retired -= doomed
            self.retire_log = [
                seq for seq in self.retire_log if seq < entry.seq
            ]
        self._recover_precise_state(entry.seq)
        for victim in self.buffer:
            victim.squashed = True
        self.buffer.clear()
        self._busy.clear()
        self.pc = entry.inst.pc
        self.decode_slot = None
        # Recycle the squashed sequence numbers (see RUUEngine
        # ``_interrupt_at``): ``seq`` stays the dynamic index.
        self.next_seq = entry.seq
        self.fetch_done = False
        self.fetch_resume_cycle = self.cycle + 1

    def _prepare_resume(self) -> None:
        """``_interrupt_at`` already left a clean, restartable machine."""

    # ------------------------------------------------------------------

    def _branch_operand(self, reg: Register) -> Tuple[bool, object]:
        return self._read_source(reg)

    def _register_pending(self, reg: Register) -> bool:
        return reg in self._busy

    def _drained(self) -> bool:
        return not self.buffer


class ReorderBufferEngine(InOrderPreciseEngine):
    """Plain reorder buffer: registers unlock only at commit.

    This is the scheme whose dependency aggravation motivates adding
    bypasses -- and, ultimately, the RUU.
    """

    name = "reorder-buffer"
    unblocks_at_completion = False


class ReorderBufferBypassEngine(InOrderPreciseEngine):
    """Reorder buffer with bypass paths: a completed-but-uncommitted
    result can be read directly from the buffer at issue time."""

    name = "rob-bypass"
    unblocks_at_completion = False

    def _read_source(self, reg: Register) -> Tuple[bool, object]:
        entry = self._busy.get(reg)
        if entry is None:
            return True, self.regs.read(reg)
        if entry.done and entry.fault is None:
            return True, entry.value
        return False, None


class HistoryBufferEngine(InOrderPreciseEngine):
    """History buffer: the register file is written eagerly at
    completion; pre-issue values are kept so a trap can be rolled back.
    """

    name = "history-buffer"
    unblocks_at_completion = True

    def _on_complete(self, entry: _BufEntry) -> None:
        if entry.inst.dest is not None:
            self.regs.write(entry.inst.dest, entry.value)
        super()._on_complete(entry)

    def _commit_register(self, entry: _BufEntry) -> None:
        # Already written at completion; committing merely discards the
        # history record (the old value can no longer be needed).
        if self._busy.get(entry.inst.dest) is entry:
            del self._busy[entry.inst.dest]

    def _recover_precise_state(self, fault_seq: int) -> None:
        """Roll back: restore pre-issue values, youngest first."""
        for entry in reversed(self.buffer):
            if entry.inst.dest is not None and entry.done \
                    and entry.fault is None:
                self.regs.write(entry.inst.dest, entry.old_value)


class FutureFileEngine(InOrderPreciseEngine):
    """Future file: a duplicate register file absorbs eager updates;
    the architectural file is written in order at commit.  ``regs`` is
    the architectural file (the precise state)."""

    name = "future-file"
    unblocks_at_completion = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.future: RegisterFile = self.regs.copy()

    def _issue_file_read(self, reg: Register):
        return self.future.read(reg)

    def _on_complete(self, entry: _BufEntry) -> None:
        if entry.inst.dest is not None:
            self.future.write(entry.inst.dest, entry.value)
        super()._on_complete(entry)

    def _recover_precise_state(self, fault_seq: int) -> None:
        """The architectural file is already precise; resynchronize the
        future file from it."""
        self.future = self.regs.copy()

    def _on_restore(self) -> None:
        """A restored register file must be mirrored into the future
        file before issue reads resume."""
        self.future = self.regs.copy()
