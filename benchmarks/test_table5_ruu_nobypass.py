"""Table 5: the RUU without bypass logic.

Operands already computed but uncommitted at issue time are obtained
only from the RUU-to-register-file bus; the paper (and this bench)
shows a substantial but clearly reduced speedup versus Table 4 --
aggravated by scheduled code that separates producers from consumers.
"""

from repro.analysis import (
    format_sweep_table,
    monotonic_fraction,
    paper_data,
    spearman,
    sweep_sizes,
)

from conftest import emit


def test_table5_ruu_without_bypass(benchmark, loops, baseline, results_dir):
    sweep = benchmark.pedantic(
        sweep_sizes,
        args=("ruu-nobypass", paper_data.RUU_SIZES),
        kwargs={"workloads": loops, "baseline": baseline},
        rounds=1, iterations=1,
    )
    text = format_sweep_table(
        sweep, paper_data.TABLE5_RUU_NOBYPASS,
        "Table 5: RUU without bypass logic (paper columns right)",
    )
    emit(results_dir, "table5_ruu_nobypass", text)

    curve = sweep.speedups()
    paper = {s: v[0] for s, v in paper_data.TABLE5_RUU_NOBYPASS.items()}
    assert monotonic_fraction(curve, tolerance=0.02) == 1.0
    assert spearman(curve, paper) > 0.9
    # Still a real speedup over simple issue at useful sizes...
    assert curve[50] > 1.2
    # ...but clearly below the bypassed RUU (paper: 1.475 vs 1.786).
    bypass = sweep_sizes(
        "ruu-bypass", [50], workloads=loops, baseline=baseline
    ).speedups()[50]
    assert curve[50] < 0.9 * bypass
