"""Benchmark fixtures: the Livermore suite, a shared baseline, and an
artifact directory where each bench writes its regenerated table."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import CRAY1_LIKE
from repro.workloads import all_loops

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def loops():
    return all_loops()


@pytest.fixture(scope="session")
def baseline(loops):
    """The simple-issue machine on the whole suite (the Table 1 total)."""
    return run_suite(ENGINE_FACTORIES["simple"], loops, CRAY1_LIKE)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a regenerated table to the artifact directory and stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
