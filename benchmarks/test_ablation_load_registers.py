"""Ablation A1: how many load registers does the RUU actually need?

The paper used 6 and notes that 4 were sufficient for most cases.
Sweeps the count on a 20-entry RUU; asserts performance is monotone in
the count and has saturated by 6.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig

from conftest import emit

COUNTS = [1, 2, 3, 4, 6, 8]


def test_load_register_sweep(benchmark, loops, baseline, results_dir):
    def sweep():
        rows = []
        for count in COUNTS:
            config = MachineConfig(window_size=20, n_load_registers=count)
            result = run_suite(ENGINE_FACTORIES["ruu-bypass"], loops, config)
            rows.append((count, result.cycles,
                         baseline.cycles / result.cycles,
                         result.issue_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation A1: load-register count (RUU-bypass, 20 entries)",
             f"{'LoadRegs':>9s} {'Speedup':>9s} {'Issue Rate':>11s}"]
    for count, cycles, spd, rate in rows:
        lines.append(f"{count:9d} {spd:9.3f} {rate:11.3f}")
    emit(results_dir, "ablation_load_registers", "\n".join(lines))

    cycles = [row[1] for row in rows]
    # more load registers never hurt
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    by_count = {row[0]: row[1] for row in rows}
    # The paper's 6 registers capture nearly all of the performance.
    # (Our capacity model is conservative -- one register per in-flight
    # memory op rather than per distinct address, see DESIGN.md -- so
    # unlike the paper we still see a few percent beyond 6.)
    assert by_count[6] <= by_count[4]
    assert by_count[6] <= 1.10 * by_count[8]
