"""Ablation A5 (paper §4, after Smith & Pleszkun [5]): what does each
precise-interrupt scheme cost an *in-order* machine -- and what does the
RUU deliver instead?

Asserted orderings (S&P's findings, which §4 of the paper summarizes):
the plain reorder buffer degrades issue; bypass / history buffer /
future file recover nearly all of it; and the RUU turns the tables by
making the reordering hardware *resolve* dependencies rather than
aggravate them.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig

from conftest import emit

SCHEMES = [
    "simple",           # no precise interrupts at all
    "reorder-buffer",
    "rob-bypass",
    "history-buffer",
    "future-file",
    "ruu-bypass",       # the paper's answer
]


def test_interrupt_scheme_costs(benchmark, loops, baseline, results_dir):
    config = MachineConfig(window_size=12)

    def run_schemes():
        rows = []
        for name in SCHEMES:
            result = run_suite(ENGINE_FACTORIES[name], loops, config)
            rows.append((name, result.cycles, result.issue_rate))
        return rows

    rows = benchmark.pedantic(run_schemes, rounds=1, iterations=1)
    lines = [
        "Ablation A5: precise-interrupt schemes (12-entry buffers)",
        f"{'Scheme':>16s} {'Speedup':>9s} {'Issue Rate':>11s} "
        f"{'Precise?':>9s} {'OoO issue?':>11s}",
    ]
    flags = {
        "simple": ("no", "no"),
        "reorder-buffer": ("yes", "no"),
        "rob-bypass": ("yes", "no"),
        "history-buffer": ("yes", "no"),
        "future-file": ("yes", "no"),
        "ruu-bypass": ("yes", "yes"),
    }
    cycles = {}
    for name, cyc, rate in rows:
        cycles[name] = cyc
        precise, ooo = flags[name]
        lines.append(
            f"{name:>16s} {baseline.cycles / cyc:9.3f} {rate:11.3f} "
            f"{precise:>9s} {ooo:>11s}"
        )
    emit(results_dir, "ablation_interrupt_schemes", "\n".join(lines))

    # S&P ordering on the in-order machine:
    assert cycles["reorder-buffer"] > cycles["rob-bypass"]
    assert cycles["rob-bypass"] >= cycles["history-buffer"] * 0.98
    assert abs(cycles["history-buffer"] - cycles["future-file"]) \
        <= 0.02 * cycles["future-file"]
    # the in-order precise schemes all cost something vs plain simple:
    assert cycles["history-buffer"] >= cycles["simple"] * 0.99
    # the RUU gives precision AND a large speedup:
    assert cycles["ruu-bypass"] < cycles["simple"]
    assert cycles["ruu-bypass"] < cycles["reorder-buffer"]
