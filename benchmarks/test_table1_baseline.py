"""Table 1: statistics for the benchmark programs on simple issue.

Regenerates the per-loop instructions / cycles / issue-rate table for
the in-order blocking-issue machine.  Absolute instruction counts differ
from the paper (our kernels are hand-compiled at reduced problem sizes);
the claim that must hold is the *rate*: every loop is far below the
1-instruction-per-cycle limit, dominated by data-dependency stalls.
"""

from repro.analysis import format_table1, paper_data, per_loop_baseline

from conftest import emit


def test_table1_baseline(benchmark, loops, results_dir):
    results = benchmark.pedantic(
        per_loop_baseline, args=(loops,), rounds=1, iterations=1
    )
    text = format_table1(results, paper_data.TABLE1_BASELINE)
    emit(results_dir, "table1_baseline", text)

    total_instructions = sum(r.instructions for r in results)
    total_cycles = sum(r.cycles for r in results)
    total_rate = total_instructions / total_cycles
    # Shape claims: well below the theoretical limit, every single loop.
    assert 0.15 < total_rate < 0.6
    for result in results:
        assert result.issue_rate < 0.6, result.workload
