"""Ablation A2: NI/LI instance-counter width.

The paper uses 3-bit counters (up to 7 live instances per register) and
reports that issue never blocked for lack of an instance.  Sweeps the
width; asserts 3 bits are indeed enough (zero INSTANCE_LIMIT stalls) and
that narrower counters cost performance.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig, StallReason

from conftest import emit

WIDTHS = [1, 2, 3, 4]


def test_counter_width_sweep(benchmark, loops, baseline, results_dir):
    def sweep():
        rows = []
        for bits in WIDTHS:
            config = MachineConfig(window_size=20, counter_bits=bits)
            result = run_suite(ENGINE_FACTORIES["ruu-bypass"], loops, config)
            rows.append((
                bits,
                result.cycles,
                baseline.cycles / result.cycles,
                result.stalls[StallReason.INSTANCE_LIMIT],
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A2: NI/LI counter width (RUU-bypass, 20 entries)",
        f"{'Bits':>5s} {'Speedup':>9s} {'InstanceLimitStalls':>20s}",
    ]
    for bits, cycles, spd, stalls in rows:
        lines.append(f"{bits:5d} {spd:9.3f} {stalls:20d}")
    emit(results_dir, "ablation_counter_width", "\n".join(lines))

    by_bits = {row[0]: row for row in rows}
    # 4 bits never block; with 3 bits our hand-compiled kernels (which
    # recycle temporary registers more aggressively than CFT output --
    # e.g. LLL9 writes the same scratch S register ~10 times per
    # iteration) block occasionally, costing under 1% -- the paper's
    # CFT-compiled code saw no blocking at 3 bits.
    assert by_bits[4][3] == 0
    assert by_bits[3][1] <= 1.01 * by_bits[4][1]
    # narrow counters are costly: 1-bit serializes same-register writes
    assert by_bits[1][3] > by_bits[2][3] > by_bits[3][3]
    assert by_bits[1][1] >= 1.5 * by_bits[3][1]
