"""Table 6: the RUU with limited bypass (the duplicated A register file
acting as a future file for the branch-condition registers).

Asserted ordering at every size: none <= limited <= full (within
tolerance), with limited recovering a substantial part of the gap.
"""

from repro.analysis import (
    format_sweep_table,
    monotonic_fraction,
    paper_data,
    spearman,
    sweep_sizes,
)

from conftest import emit


def test_table6_ruu_limited_bypass(benchmark, loops, baseline, results_dir):
    sweep = benchmark.pedantic(
        sweep_sizes,
        args=("ruu-limited", paper_data.RUU_SIZES),
        kwargs={"workloads": loops, "baseline": baseline},
        rounds=1, iterations=1,
    )
    text = format_sweep_table(
        sweep, paper_data.TABLE6_RUU_LIMITED,
        "Table 6: RUU with limited bypass / A future file "
        "(paper columns right)",
    )
    emit(results_dir, "table6_ruu_limited", text)

    limited = sweep.speedups()
    paper = {s: v[0] for s, v in paper_data.TABLE6_RUU_LIMITED.items()}
    assert monotonic_fraction(limited, tolerance=0.02) == 1.0
    # Rank correlation is computed over all 12 sizes; on the saturated
    # plateau (25-50 entries) our curve is nearly flat, so tiny jitter
    # reorders ranks there -- hence a looser bound than Tables 2-4.
    assert spearman(limited, paper) > 0.8

    probe_sizes = [6, 12, 30, 50]
    none = sweep_sizes(
        "ruu-nobypass", probe_sizes, workloads=loops, baseline=baseline
    ).speedups()
    full = sweep_sizes(
        "ruu-bypass", probe_sizes, workloads=loops, baseline=baseline
    ).speedups()
    for size in probe_sizes:
        assert limited[size] >= none[size] - 0.02, size
        assert limited[size] <= full[size] + 0.02, size
    # recovers a significant portion of the bypass gap (paper §6.3)
    assert limited[50] > none[50] + 0.3 * (full[50] - none[50])
