"""Ablation A10: engine behaviour across the (ILP, memory) space.

The Livermore loops are fixed points in this space; the synthetic
generator moves through it continuously.  Two sweeps:

* ILP: 1..3 independent dependency chains (no memory traffic) -- the
  out-of-order machines should separate from the baseline as chains
  are added, while a single chain pins everyone to its latency;
* memory intensity: 0%..75% of body ops touching a small working set --
  rising load/store traffic drags every machine toward the memory
  latency, compressing the mechanisms together.
"""

from repro.analysis import ENGINE_FACTORIES
from repro.machine import MachineConfig
from repro.workloads.generator import ilp_sweep, memory_sweep

from conftest import emit

ENGINES = ["simple", "rstu", "ruu-bypass"]
CONFIG = MachineConfig(window_size=16)


def _rates(workload):
    rates = {}
    for name in ENGINES:
        engine = ENGINE_FACTORIES[name](
            workload.program, CONFIG, workload.make_memory()
        )
        rates[name] = engine.run().issue_rate
    return rates


def test_ilp_and_memory_sweeps(benchmark, results_dir):
    def sweep():
        ilp_rows = []
        for streams, workload in enumerate(
            ilp_sweep(iterations=24, body_ops=18, seed=11,
                      memory_fraction=0.0),
            start=1,
        ):
            ilp_rows.append((streams, _rates(workload)))
        mem_rows = []
        for fraction, workload in zip(
            (0.0, 0.25, 0.5, 0.75),
            memory_sweep(iterations=24, body_ops=18, seed=11, streams=3),
        ):
            mem_rows.append((fraction, _rates(workload)))
        return ilp_rows, mem_rows

    ilp_rows, mem_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation A10: synthetic (ILP x memory) space",
             "", "issue rate vs independent chains (no memory traffic):",
             f"{'chains':>7s}" + "".join(f" {e:>11s}" for e in ENGINES)]
    for streams, rates in ilp_rows:
        lines.append(
            f"{streams:7d}"
            + "".join(f" {rates[e]:11.3f}" for e in ENGINES)
        )
    lines += ["", "issue rate vs memory fraction (3 chains):",
              f"{'memfrac':>7s}" + "".join(f" {e:>11s}" for e in ENGINES)]
    for fraction, rates in mem_rows:
        lines.append(
            f"{fraction:7.2f}"
            + "".join(f" {rates[e]:11.3f}" for e in ENGINES)
        )
    emit(results_dir, "ablation_ilp_memory", "\n".join(lines))

    # ILP claims: the RUU's advantage over simple issue grows with the
    # number of independent chains.
    gaps = [
        rates["ruu-bypass"] - rates["simple"] for _, rates in ilp_rows
    ]
    assert gaps[2] > gaps[0]
    # every machine improves (or holds) as chains are added
    for engine in ENGINES:
        series = [rates[engine] for _, rates in ilp_rows]
        assert series[-1] >= series[0] - 0.01, engine
