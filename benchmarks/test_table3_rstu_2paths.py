"""Table 3: the RSTU with two data paths to the functional units.

The paper's reservoir argument: decode fills the RSTU at one
instruction/cycle, so doubling the drain gains little.  Asserted: the
two-path curve dominates the one-path curve but by at most ~10%.
"""

from repro.analysis import (
    format_sweep_table,
    paper_data,
    spearman,
    sweep_sizes,
)

from conftest import emit


def test_table3_rstu_two_paths(benchmark, loops, baseline, results_dir):
    sweep = benchmark.pedantic(
        sweep_sizes,
        args=("rstu", paper_data.RSTU_SIZES),
        kwargs={
            "workloads": loops,
            "baseline": baseline,
            "dispatch_paths": 2,
        },
        rounds=1, iterations=1,
    )
    text = format_sweep_table(
        sweep, paper_data.TABLE3_RSTU_2PATH,
        "Table 3: RSTU, two dispatch paths (paper columns right)",
    )
    emit(results_dir, "table3_rstu_2paths", text)

    two_path = sweep.speedups()
    one_path = sweep_sizes(
        "rstu", paper_data.RSTU_SIZES, workloads=loops, baseline=baseline
    ).speedups()
    for size in paper_data.RSTU_SIZES:
        assert two_path[size] >= one_path[size] - 0.02, size
        assert two_path[size] <= one_path[size] * 1.10, size
    paper = {s: v[0] for s, v in paper_data.TABLE3_RSTU_2PATH.items()}
    assert spearman(two_path, paper) > 0.95
