"""Table 4: the RUU with bypass logic, sizes 3..50.

The headline result: a reasonably sized RUU both speeds execution up
*and* gives precise interrupts, approaching the (imprecise) RSTU's
saturated speedup at large sizes.
"""

from repro.analysis import (
    format_sweep_table,
    monotonic_fraction,
    paper_data,
    spearman,
    sweep_sizes,
)

from conftest import emit


def test_table4_ruu_with_bypass(benchmark, loops, baseline, results_dir):
    sweep = benchmark.pedantic(
        sweep_sizes,
        args=("ruu-bypass", paper_data.RUU_SIZES),
        kwargs={"workloads": loops, "baseline": baseline},
        rounds=1, iterations=1,
    )
    text = format_sweep_table(
        sweep, paper_data.TABLE4_RUU_BYPASS,
        "Table 4: RUU with bypass logic (paper columns right)",
    )
    emit(results_dir, "table4_ruu_bypass", text)

    curve = sweep.speedups()
    paper = {s: v[0] for s, v in paper_data.TABLE4_RUU_BYPASS.items()}
    assert monotonic_fraction(curve, tolerance=0.02) == 1.0
    assert spearman(curve, paper) > 0.95
    # 10-12 entries already give a solid speedup (paper: 1.38-1.50).
    assert curve[12] > 1.3
    # ...and the large-size RUU approaches the RSTU (checked in the
    # Table 2 bench's artifact; cross-checked in tests/test_paper_shape).
    assert curve[50] > 1.6
