"""Ablations A8 and A9: commit bandwidth and interrupt response time.

A8 -- the RUU-to-register-file path is the no-bypass machine's only way
to obtain values whose producers completed before the consumer issued,
so commit bandwidth matters there and nowhere else.

A9 -- precise-interrupt response time: a trap is taken when the
faulting instruction reaches the RUU head, so the response time is the
commit-drain of everything older.  It grows with occupancy -- the
latency cost of a big window, a trade-off the paper does not quantify.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.core import RUUEngine
from repro.machine import MachineConfig, Timeline
from repro.workloads import fault_probe

from conftest import emit


def test_commit_bandwidth(benchmark, loops, baseline, results_dir):
    def sweep():
        rows = []
        for engine in ("ruu-bypass", "ruu-nobypass"):
            for paths in (1, 2):
                config = MachineConfig(window_size=20, commit_paths=paths)
                result = run_suite(ENGINE_FACTORIES[engine], loops, config)
                rows.append((engine, paths, result.cycles,
                             result.issue_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A8: RUU commit (RUU->register file) bandwidth",
        f"{'Engine':>14s} {'Paths':>6s} {'Speedup':>9s} {'Rate':>7s}",
    ]
    cycles = {}
    for engine, paths, cyc, rate in rows:
        cycles[(engine, paths)] = cyc
        lines.append(
            f"{engine:>14s} {paths:6d} {baseline.cycles / cyc:9.3f} "
            f"{rate:7.3f}"
        )
    emit(results_dir, "ablation_commit_bandwidth", "\n".join(lines))

    # bypassed RUU: commit bandwidth is nearly irrelevant
    assert abs(cycles[("ruu-bypass", 2)] - cycles[("ruu-bypass", 1)]) \
        <= 0.01 * cycles[("ruu-bypass", 1)]
    # no-bypass RUU: dependents drain via the commit bus -> real gain
    gain = cycles[("ruu-nobypass", 1)] / cycles[("ruu-nobypass", 2)]
    assert gain > 1.03


def test_interrupt_response_and_squash_cost(benchmark, results_dir):
    """A9: what a precise trap costs, versus RUU size.

    Two metrics per window size, fault injected early in a loop:

    * response time (detection -> trap): stays ~constant and tiny --
      the single result bus limits completions to one per cycle, so the
      in-order commit stage never builds a backlog and the head reaches
      the faulting instruction almost immediately;
    * squashed younger instructions: grows with the window -- the
      wasted-work cost of taking a trap on a larger machine.
    """

    def sweep():
        rows = []
        for size in (4, 10, 20, 50):
            workload = fault_probe(n=40, fault_index=5)
            memory = workload.make_memory()
            memory.inject_fault(workload.fault_address)
            engine = RUUEngine(
                workload.program, MachineConfig(window_size=size),
                memory=memory,
            )
            engine.timeline = Timeline()
            engine.run()
            record = engine.interrupt_record
            assert record is not None and record.claims_precise
            detected = engine.timeline.events_for(record.seq)["complete"]
            rows.append(
                (size, record.cycle - detected, engine.squashed)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A9: precise-trap cost vs RUU size",
        f"{'Entries':>8s} {'Detect->trap':>13s} {'Squashed work':>14s}",
    ]
    for size, latency, squashed in rows:
        lines.append(f"{size:8d} {latency:13d} {squashed:14d}")
    emit(results_dir, "ablation_interrupt_latency", "\n".join(lines))

    by_size = {row[0]: row for row in rows}
    # responses are near-immediate at every size (continuous drain)
    assert all(row[1] <= 5 for row in rows)
    # but squashed younger work grows with the window
    assert by_size[50][2] > by_size[4][2]
    assert by_size[20][2] >= by_size[10][2] >= by_size[4][2]
