"""Ablation A4 (paper §7): conditional execution on the RUU.

Compares the blocking-branch RUU against the speculative RUU with three
predictors, across window sizes and bypass modes.  The paper's §7 claim
is qualitative (the RUU makes conditional execution cheap); asserted
here: speculation never loses, helps most when branch conditions resolve
late (the no-bypass machine), and prediction accuracy on loop code is
high.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.core import (
    AlwaysTakenPredictor,
    BypassMode,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
    TwoBitPredictor,
)
from repro.machine import MachineConfig, aggregate

from conftest import emit

PREDICTORS = [
    ("2bit", TwoBitPredictor),
    ("btfn", StaticBTFNPredictor),
    ("taken", AlwaysTakenPredictor),
]


def _spec_suite(loops, config, predictor_cls, bypass):
    results = []
    for workload in loops:
        engine = SpeculativeRUUEngine(
            workload.program, config, memory=workload.make_memory(),
            bypass=bypass, predictor=predictor_cls(),
        )
        results.append(engine.run())
    return aggregate(results)


def test_speculation_ablation(benchmark, loops, baseline, results_dir):
    config = MachineConfig(window_size=20)

    def run_ablation():
        rows = []
        for bypass in (BypassMode.FULL, BypassMode.NONE):
            plain_name = (
                "ruu-bypass" if bypass is BypassMode.FULL else "ruu-nobypass"
            )
            plain = run_suite(ENGINE_FACTORIES[plain_name], loops, config)
            rows.append((bypass.value, "none (blocking)", plain.cycles,
                         None))
            for label, predictor_cls in PREDICTORS:
                result = _spec_suite(loops, config, predictor_cls, bypass)
                rows.append((bypass.value, label, result.cycles,
                             result.mispredictions))
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [
        "Ablation A4: speculative RUU (20 entries)",
        f"{'Bypass':>10s} {'Predictor':>16s} {'Speedup':>9s} "
        f"{'Mispredicts':>12s}",
    ]
    table = {}
    for bypass, label, cycles, mispredicts in rows:
        table[(bypass, label)] = cycles
        spd = baseline.cycles / cycles
        mp = "-" if mispredicts is None else str(mispredicts)
        lines.append(f"{bypass:>10s} {label:>16s} {spd:9.3f} {mp:>12s}")
    emit(results_dir, "ablation_speculation", "\n".join(lines))

    for bypass in ("bypass", "nobypass"):
        blocking = table[(bypass, "none (blocking)")]
        for label, _ in PREDICTORS:
            # speculation never loses on loop-dominated code
            assert table[(bypass, label)] <= blocking * 1.03, (bypass, label)
    # and it buys the most where conditions resolve latest (no bypass):
    gain_full = table[("bypass", "none (blocking)")] \
        - table[("bypass", "btfn")]
    gain_none = table[("nobypass", "none (blocking)")] \
        - table[("nobypass", "btfn")]
    assert gain_none >= gain_full
