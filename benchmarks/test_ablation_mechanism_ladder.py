"""Ablation A3: the paper's design progression as a ladder.

simple -> Tomasulo -> Tag Unit -> RS pool -> RSTU -> RUU, at comparable
resource levels.  Window sizing note: Tomasulo and the Tag Unit use
distributed stations (window_size is per functional unit, 2 each = 24
total across the 12 unit classes); the pooled designs get a 12-entry
pool -- i.e. the pooled machines have *half* the stations of the
distributed ones, which is exactly the sharing argument of §3.2.2.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig

from conftest import emit

LADDER = [
    ("simple", MachineConfig()),
    ("dispatch-stack", MachineConfig(window_size=12)),  # OoO, no renaming
    ("tomasulo", MachineConfig(window_size=2)),       # 2 stations per FU
    ("tagunit", MachineConfig(window_size=2, n_tags=12)),
    ("rspool", MachineConfig(window_size=12, n_tags=12)),
    ("rstu", MachineConfig(window_size=12)),
    ("ruu-bypass", MachineConfig(window_size=12)),
]


def test_mechanism_ladder(benchmark, loops, baseline, results_dir):
    def run_ladder():
        rows = []
        for name, config in LADDER:
            result = run_suite(ENGINE_FACTORIES[name], loops, config)
            rows.append((name, result.cycles,
                         baseline.cycles / result.cycles,
                         result.issue_rate))
        return rows

    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    lines = [
        "Ablation A3: issue-mechanism ladder (comparable resources)",
        f"{'Mechanism':>12s} {'Speedup':>9s} {'Issue Rate':>11s} "
        f"{'Precise?':>9s}",
    ]
    precise = {"ruu-bypass"}
    for name, cycles, spd, rate in rows:
        flag = "yes" if name in precise else "no"
        lines.append(f"{name:>12s} {spd:9.3f} {rate:11.3f} {flag:>9s}")
    emit(results_dir, "ablation_mechanism_ladder", "\n".join(lines))

    by_name = {row[0]: row[1] for row in rows}
    # every dependency-resolving mechanism beats simple issue
    for name in ("dispatch-stack", "tomasulo", "tagunit", "rspool",
                 "rstu", "ruu-bypass"):
        assert by_name[name] < by_name["simple"], name
    # renaming beats the no-renaming dispatch stack [18]
    assert by_name["rstu"] < by_name["dispatch-stack"]
    # the Tag Unit with enough tags matches Tomasulo (same timing, less
    # hardware -- the whole point of §3.2.1)
    assert abs(by_name["tagunit"] - by_name["tomasulo"]) \
        <= 0.02 * by_name["tomasulo"]
    # the RUU pays only a modest price over the (imprecise) RSTU
    assert by_name["ruu-bypass"] <= 1.5 * by_name["rstu"]
