"""Table 2: relative speedup and issue rate with a RSTU (one dispatch
path), sizes 3..30.

Shape claims asserted: the curve is monotone, saturates by ~15-20
entries, and ranks identically to the paper's column (Spearman > 0.95).
"""

from repro.analysis import (
    format_sweep_table,
    monotonic_fraction,
    paper_data,
    saturation_size,
    spearman,
    sweep_sizes,
)

from conftest import emit


def test_table2_rstu(benchmark, loops, baseline, results_dir):
    sweep = benchmark.pedantic(
        sweep_sizes,
        args=("rstu", paper_data.RSTU_SIZES),
        kwargs={"workloads": loops, "baseline": baseline},
        rounds=1, iterations=1,
    )
    text = format_sweep_table(
        sweep, paper_data.TABLE2_RSTU,
        "Table 2: RSTU, one dispatch path (paper columns right)",
    )
    emit(results_dir, "table2_rstu", text)

    curve = sweep.speedups()
    paper = {s: v[0] for s, v in paper_data.TABLE2_RSTU.items()}
    assert monotonic_fraction(curve, tolerance=0.02) == 1.0
    assert saturation_size(curve, threshold=0.95) <= 20
    assert spearman(curve, paper) > 0.95
    assert curve[25] > 1.5
