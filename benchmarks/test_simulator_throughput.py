"""Simulator-speed benchmarks (host performance, not model results).

Unlike the table benches (one deterministic simulation, measured once),
these use pytest-benchmark properly -- several rounds -- to track the
*simulator's* throughput in simulated instructions per host second.
Useful for catching performance regressions in the engines themselves.
"""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import CRAY1_LIKE, MachineConfig
from repro.workloads import lll3

ENGINES = ["simple", "tomasulo", "rstu", "ruu-bypass", "spec-ruu"]


@pytest.fixture(scope="module")
def workload():
    return lll3(n=150)


@pytest.mark.parametrize("engine_name", ENGINES)
def test_engine_throughput(benchmark, engine_name, workload):
    config = (
        CRAY1_LIKE if engine_name == "simple"
        else MachineConfig(window_size=12)
    )
    builder = ENGINE_FACTORIES[engine_name]

    def run_once():
        engine = builder(workload.program, config, workload.make_memory())
        return engine.run()

    result = benchmark(run_once)
    instructions = result.instructions
    benchmark.extra_info["simulated_instructions"] = instructions
    benchmark.extra_info["simulated_cycles"] = result.cycles
    # the engines' own host-perf telemetry (one-shot, unlike the
    # multi-round pytest-benchmark numbers above)
    benchmark.extra_info["host_inst_per_sec"] = \
        result.extra["host_inst_per_sec"]
    assert instructions > 0
    assert result.extra["host_seconds"] > 0
