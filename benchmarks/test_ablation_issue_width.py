"""Ablation A7 (extension): revisiting the reservoir argument.

The paper explains Table 3's tiny gain from a second RSTU->FU data path
with a flow argument: decode fills the reservoir at one instruction per
cycle, so a wider drain is rarely usable.  The corollary -- untestable
on the paper's machine -- is that widening the *fill* should make the
second drain path pay.  This ablation widens decode to two instructions
per cycle and crosses it with the dispatch-path count.
"""

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig

from conftest import emit

POINTS = [(1, 1), (1, 2), (2, 1), (2, 2)]


def test_issue_width_vs_dispatch_paths(benchmark, loops, baseline,
                                       results_dir):
    def sweep():
        rows = {}
        for width, paths in POINTS:
            config = MachineConfig(
                window_size=25, issue_width=width, dispatch_paths=paths
            )
            for engine in ("rstu", "ruu-bypass"):
                result = run_suite(ENGINE_FACTORIES[engine], loops, config)
                rows[(engine, width, paths)] = result
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A7: issue width x dispatch paths (25 entries)",
        f"{'Engine':>12s} {'Width':>6s} {'Paths':>6s} {'Speedup':>9s} "
        f"{'Issue Rate':>11s}",
    ]
    for (engine, width, paths), result in sorted(rows.items()):
        lines.append(
            f"{engine:>12s} {width:6d} {paths:6d} "
            f"{baseline.cycles / result.cycles:9.3f} "
            f"{result.issue_rate:11.3f}"
        )
    emit(results_dir, "ablation_issue_width", "\n".join(lines))

    for engine in ("rstu", "ruu-bypass"):
        narrow = rows[(engine, 1, 1)].cycles
        wide_drain = rows[(engine, 1, 2)].cycles
        wide_fill = rows[(engine, 2, 1)].cycles
        wide_both = rows[(engine, 2, 2)].cycles
        # Table 3's result: second drain barely helps at 1-wide fill...
        gain_at_1 = narrow / wide_drain
        assert gain_at_1 < 1.10, engine
        # ...but the reservoir argument's corollary holds: at 2-wide
        # fill, the second drain path is worth strictly more.
        gain_at_2 = wide_fill / wide_both
        assert gain_at_2 > gain_at_1, engine
        # and widening helps overall
        assert wide_both <= narrow, engine
