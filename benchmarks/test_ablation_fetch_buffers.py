"""Ablation A6: checking the paper's instruction-buffer assumption.

The paper assumes all instruction references hit the buffers (§2.2),
arguing the assumption "does not affect the execution time
considerably."  We model the CRAY-1's 4x64-parcel buffers with real
1/2-parcel instruction sizes and measure the assumption's actual cost
across geometries.
"""

from repro.analysis import ENGINE_FACTORIES
from repro.machine import MachineConfig, aggregate
from repro.machine.fetch import InstructionBuffers

from conftest import emit

GEOMETRIES = [
    ("always-hit (paper)", None, None),
    ("CRAY-1: 4 x 64", 4, 64),
    ("2 x 64", 2, 64),
    ("1 x 64", 1, 64),
    ("1 x 16 (starved)", 1, 16),
]


def _run(loops, config, n_buffers, parcels):
    results = []
    total_misses = 0
    for workload in loops:
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program, config, workload.make_memory()
        )
        if n_buffers is not None:
            engine.fetch_unit = InstructionBuffers(
                workload.program, n_buffers=n_buffers,
                parcels_per_buffer=parcels,
            )
        results.append(engine.run())
        if engine.fetch_unit is not None:
            total_misses += engine.fetch_unit.misses
    return aggregate(results), total_misses


def test_instruction_buffer_sensitivity(benchmark, loops, baseline,
                                        results_dir):
    config = MachineConfig(window_size=12)

    def sweep():
        return [
            (label, *_run(loops, config, n, p))
            for label, n, p in GEOMETRIES
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A6: instruction-buffer geometry (RUU-bypass, 12 entries)",
        f"{'Geometry':>20s} {'Cycles':>8s} {'Rate':>7s} {'Fills':>6s}",
    ]
    cycles = {}
    for label, result, misses in rows:
        cycles[label] = result.cycles
        lines.append(
            f"{label:>20s} {result.cycles:8d} {result.issue_rate:7.3f} "
            f"{misses:6d}"
        )
    emit(results_dir, "ablation_fetch_buffers", "\n".join(lines))

    # The paper's assumption is justified: CRAY-1 geometry is within
    # 0.5% of the always-hit model (cold fills only).
    assert cycles["CRAY-1: 4 x 64"] <= cycles["always-hit (paper)"] * 1.005
    # A single 64-parcel buffer still holds most loop bodies (LLL8's
    # 179-parcel body straddles blocks and re-fills occasionally).
    assert cycles["1 x 64"] <= cycles["always-hit (paper)"] * 1.05
    # A starved buffer finally hurts (LLL8's 179-parcel body thrashes).
    assert cycles["1 x 16 (starved)"] > cycles["CRAY-1: 4 x 64"]
