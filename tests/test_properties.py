"""Property-based tests (hypothesis) for the core invariants.

The headline property: on any type-safe random program, every engine
finishes with exactly the golden model's architectural state.  The
precision property: whenever the RUU takes an interrupt, the visible
state is exactly the sequential prefix state.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import BypassMode, RUUEngine, SpeculativeRUUEngine
from repro.isa import ArithmeticFault, assemble, wrap_a, wrap_s_int
from repro.isa.semantics import wrap_signed
from repro.issue import RSTUEngine, SimpleEngine, TomasuloEngine
from repro.machine import MachineConfig, Memory
from repro.trace import FunctionalExecutor, prefix_state

from tests.strategies import (
    FLOAT_REGION,
    INT_REGION,
    REGION_SIZE,
    initial_data,
    program_text,
)

CONFIG = MachineConfig(window_size=6)

ENGINE_CLASSES = [SimpleEngine, TomasuloEngine, RSTUEngine]

PROGRAM_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build_memory(data):
    floats, ints = data
    memory = Memory()
    memory.write_array(FLOAT_REGION, floats)
    memory.write_array(INT_REGION, ints)
    return memory


def _golden(program, memory):
    """Run the ISS; returns None if the program arithmetic-faults."""
    executor = FunctionalExecutor(program, memory.copy())
    try:
        executor.run(max_instructions=100_000)
    except ArithmeticFault:
        return None
    return executor


class TestArchitecturalEquivalence:
    @PROGRAM_SETTINGS
    @given(source=program_text(), data=initial_data())
    def test_fixed_engines_match_golden(self, source, data):
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        for cls in ENGINE_CLASSES:
            run_memory = memory.copy()
            engine = cls(program, CONFIG, memory=run_memory)
            result = engine.run()
            assert engine.interrupt_record is None
            assert engine.regs.diff(golden.regs) == {}, cls.name
            assert run_memory.diff(golden.memory) == {}, cls.name
            assert result.instructions == golden.executed, cls.name

    @PROGRAM_SETTINGS
    @given(
        source=program_text(),
        data=initial_data(),
        bypass=st.sampled_from(list(BypassMode)),
        window=st.integers(3, 12),
    )
    def test_ruu_matches_golden(self, source, data, bypass, window):
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        run_memory = memory.copy()
        engine = RUUEngine(
            program, MachineConfig(window_size=window),
            memory=run_memory, bypass=bypass,
        )
        result = engine.run()
        assert engine.regs.diff(golden.regs) == {}
        assert run_memory.diff(golden.memory) == {}
        assert result.instructions == golden.executed
        assert engine._ni == {}

    @PROGRAM_SETTINGS
    @given(source=program_text(), data=initial_data())
    def test_speculative_ruu_matches_golden(self, source, data):
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        run_memory = memory.copy()
        engine = SpeculativeRUUEngine(program, CONFIG, memory=run_memory)
        result = engine.run()
        assert engine.regs.diff(golden.regs) == {}
        assert run_memory.diff(golden.memory) == {}
        assert result.instructions == golden.executed
        assert not engine._pending_branches

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(source=program_text(), data=initial_data())
    def test_internal_invariants_on_random_programs(self, source, data):
        """Attach the per-cycle invariant checker to the RUU on random
        programs: the NI/LI counters, queue order, and waiter liveness
        must hold on every cycle, not just at the end."""
        from repro.machine.invariants import run_checked
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        engine = RUUEngine(program, CONFIG, memory=memory.copy())
        result, checker = run_checked(engine)
        assert checker.cycles_checked == result.cycles

    @PROGRAM_SETTINGS
    @given(source=program_text(), data=initial_data())
    def test_determinism(self, source, data):
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        results = [
            RUUEngine(program, CONFIG, memory=memory.copy()).run().cycles
            for _ in range(2)
        ]
        assert results[0] == results[1]


class TestConfigFuzz:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        window=st.integers(2, 30),
        counter_bits=st.integers(1, 4),
        load_regs=st.integers(1, 8),
        dispatch=st.integers(1, 2),
        commit=st.integers(1, 2),
        width=st.integers(1, 2),
        taken_penalty=st.integers(0, 5),
    )
    def test_any_config_preserves_architecture(
        self, window, counter_bits, load_regs, dispatch, commit, width,
        taken_penalty,
    ):
        """Sizing and bandwidth knobs change timing, never results."""
        from repro.workloads import lll5, memory_alias_kernel

        config = MachineConfig(
            window_size=window,
            counter_bits=counter_bits,
            n_load_registers=load_regs,
            dispatch_paths=dispatch,
            commit_paths=commit,
            issue_width=width,
            branch_taken_penalty=taken_penalty,
        )
        for workload in (lll5(n=20), memory_alias_kernel(iterations=8)):
            golden = FunctionalExecutor(
                workload.program, workload.make_memory()
            )
            golden.run()
            memory = workload.make_memory()
            engine = RUUEngine(workload.program, config, memory=memory)
            result = engine.run()
            assert engine.regs.diff(golden.regs) == {}
            assert memory.diff(golden.memory) == {}
            assert result.instructions == golden.executed


class TestPrecisionProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        source=program_text(),
        data=initial_data(),
        fault_offset=st.integers(0, REGION_SIZE - 1),
        region=st.sampled_from([FLOAT_REGION, INT_REGION]),
    )
    def test_ruu_interrupts_are_precise(self, source, data, fault_offset,
                                        region):
        """Inject a page fault at a random data address: if the RUU
        traps, its state must equal the golden prefix; if it does not,
        the final state must be the golden final state."""
        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        run_memory = memory.copy()
        run_memory.inject_fault(region + fault_offset)
        engine = RUUEngine(program, CONFIG, memory=run_memory)
        engine.run()
        record = engine.interrupt_record
        if record is None:
            assert engine.regs.diff(golden.regs) == {}
        else:
            assert record.claims_precise
            prefix = prefix_state(program, record.seq, memory=memory)
            assert prefix.regs.diff(engine.regs) == {}
            assert prefix.memory.diff(engine.memory) == {}
            # ...and servicing the fault resumes to the golden end state.
            run_memory.service_fault(region + fault_offset)
            while engine.interrupt_record is not None:
                engine.continue_run()
            assert engine.regs.diff(golden.regs) == {}
            assert run_memory.diff(golden.memory) == {}


class TestCheckpointProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        source=program_text(),
        data=initial_data(),
        fault_offset=st.integers(0, REGION_SIZE - 1),
        region=st.sampled_from([FLOAT_REGION, INT_REGION]),
        target=st.sampled_from([
            "ruu-bypass", "spec-ruu", "reorder-buffer", "history-buffer",
            "future-file",
        ]),
    )
    def test_checkpoint_restore_resume_equals_uninterrupted(
        self, source, data, fault_offset, region, target,
    ):
        """On a random program with a random injected page fault:
        trap -> checkpoint -> serialize -> restore into a random precise
        engine -> resume must reach exactly the state an uninterrupted
        run reaches.  (If the program never touches the faulting
        address, the drained engine must checkpoint/restore too.)"""
        import json as json_module

        from repro.analysis import ENGINE_FACTORIES
        from repro.machine import Checkpoint

        program = assemble(source)
        memory = _build_memory(data)
        golden = _golden(program, memory)
        assume(golden is not None)
        run_memory = memory.copy()
        run_memory.inject_fault(region + fault_offset)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            program, CONFIG, run_memory
        )
        engine.run()
        record = engine.interrupt_record
        if record is not None:
            assert record.claims_precise
        # Serialize through JSON text: the restore must work from the
        # document alone, not from live object references.
        document = json_module.loads(
            json_module.dumps(Checkpoint.capture(engine).to_json())
        )
        del engine, run_memory
        machine = Checkpoint.from_json(document).restore(engine=target)
        if record is not None:
            prefix = prefix_state(program, record.seq, memory=memory)
            assert prefix.regs.diff(machine.regs) == {}
            machine.memory.service_fault(region + fault_offset)
            machine.continue_run()
        assert machine.regs.diff(golden.regs) == {}
        assert machine.memory.diff(golden.memory) == {}
        assert machine.retired == golden.executed


class TestSemanticsProperties:
    @given(st.integers(-(1 << 40), 1 << 40))
    def test_wrap_a_range(self, value):
        wrapped = wrap_a(value)
        assert -(1 << 23) <= wrapped < (1 << 23)
        assert (wrapped - value) % (1 << 24) == 0

    @given(st.integers(-(1 << 80), 1 << 80))
    def test_wrap_s_range(self, value):
        wrapped = wrap_s_int(value)
        assert -(1 << 63) <= wrapped < (1 << 63)

    @given(st.integers(-1000, 1000), st.integers(2, 30))
    def test_wrap_signed_identity_in_range(self, value, bits):
        assume(-(1 << (bits - 1)) <= value < (1 << (bits - 1)))
        assert wrap_signed(value, bits) == value

    @given(st.integers(), st.integers(2, 64))
    def test_wrap_signed_idempotent(self, value, bits):
        once = wrap_signed(value, bits)
        assert wrap_signed(once, bits) == once


class TestMemoryProperties:
    @given(st.dictionaries(st.integers(0, 1000),
                           st.integers(-100, 100), max_size=20))
    def test_roundtrip(self, contents):
        memory = Memory()
        for address, value in contents.items():
            memory.poke(address, value)
        for address, value in contents.items():
            assert memory.peek(address) == value

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 9),
                           max_size=10),
           st.dictionaries(st.integers(0, 50), st.integers(1, 9),
                           max_size=10))
    def test_diff_empty_iff_equal(self, a_contents, b_contents):
        a, b = Memory(), Memory()
        for address, value in a_contents.items():
            a.poke(address, value)
        for address, value in b_contents.items():
            b.poke(address, value)
        assert (a.diff(b) == {}) == (a == b)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=16))
    def test_array_roundtrip(self, values):
        memory = Memory()
        memory.write_array(77, values)
        assert memory.read_array(77, len(values)) == values
