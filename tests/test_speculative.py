"""Tests for the speculative RUU (branch prediction + conditional
execution, paper section 7)."""

import pytest

from repro.core import (
    AlwaysTakenPredictor,
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
    TwoBitPredictor,
)
from repro.isa import A, S, assemble
from repro.machine import MachineConfig
from repro.trace import reference_state
from repro.workloads import branch_heavy, lll3, lll5

CONFIG = MachineConfig(window_size=16)

PREDICTORS = [TwoBitPredictor, StaticBTFNPredictor, AlwaysTakenPredictor]


def run_spec(source_or_program, predictor_cls=TwoBitPredictor,
             config=None, memory=None, bypass=BypassMode.FULL):
    program = (
        assemble(source_or_program)
        if isinstance(source_or_program, str) else source_or_program
    )
    engine = SpeculativeRUUEngine(
        program, config or CONFIG, memory=memory, bypass=bypass,
        predictor=predictor_cls(),
    )
    result = engine.run()
    return engine, result


LOOP = """
    A_IMM A1, 100
    A_IMM A0, 8
loop:
    LOAD_S S1, A1[0]
    F_ADD S2, S2, S1
    A_ADDI A1, A1, 1
    A_ADDI A0, A0, -1
    BR_NONZERO A0, loop
    HALT
"""


class TestCorrectness:
    @pytest.mark.parametrize("predictor_cls", PREDICTORS)
    def test_loop_result_correct(self, predictor_cls):
        program = assemble(LOOP)
        golden = reference_state(program)
        engine, result = run_spec(program, predictor_cls)
        assert engine.regs == golden.regs
        assert result.instructions == golden.executed

    @pytest.mark.parametrize("predictor_cls", PREDICTORS)
    @pytest.mark.parametrize("bypass", list(BypassMode))
    def test_branchy_workload_correct(self, predictor_cls, bypass):
        wl = branch_heavy()
        golden = reference_state(wl.program, wl.initial_memory)
        memory = wl.make_memory()
        engine, result = run_spec(
            wl.program, predictor_cls, memory=memory, bypass=bypass
        )
        assert engine.regs == golden.regs
        assert memory == golden.memory
        assert result.instructions == golden.executed

    def test_counters_clean_after_recoveries(self):
        wl = branch_heavy()
        engine, result = run_spec(wl.program, AlwaysTakenPredictor,
                                  memory=wl.make_memory())
        assert result.mispredictions > 0
        assert engine._ni == {}
        assert not engine._pending_branches

    def test_wrong_path_stores_never_reach_memory(self):
        # Mispredict into a store, then recover: memory must be clean.
        source = """
            A_IMM A1, 100
            A_IMM A2, 3
            A_MUL A0, A2, A2     ; slow condition (nonzero -> taken)
            BR_NONZERO A0, good
            S_IMM S1, 666.0
            STORE_S A1[0], S1    ; wrong path if predicted not-taken
        good:
            HALT
        """
        program = assemble(source)

        class NotTaken(TwoBitPredictor):
            def predict(self, inst):
                return False

        engine, result = run_spec(program, NotTaken)
        assert result.mispredictions == 1
        assert engine.memory.peek(100) == 0


class TestSpeculationMechanics:
    def test_speculation_happens(self):
        engine, result = run_spec(LOOP)
        assert engine.predictions > 0

    def test_speculative_beats_blocking_when_condition_is_slow(self):
        # Condition computed by a slow multiply each iteration forces the
        # non-speculative RUU to stall at every branch.
        source = """
            A_IMM A1, 100
            A_IMM A2, 1
            A_IMM A3, 6
        loop:
            LOAD_S S1, A1[0]
            F_ADD S2, S2, S1
            A_ADDI A1, A1, 1
            A_SUB A3, A3, A2
            A_MUL A0, A3, A2     ; slow branch condition
            BR_NONZERO A0, loop
            HALT
        """
        program = assemble(source)
        golden = reference_state(program)
        plain = RUUEngine(program, CONFIG)
        plain_result = plain.run()
        engine, spec_result = run_spec(program, StaticBTFNPredictor)
        assert engine.regs == golden.regs
        assert spec_result.cycles < plain_result.cycles

    def test_max_branches_limits_speculation(self):
        config = CONFIG.with_(spec_max_branches=1)
        wl = branch_heavy(length=40)
        golden = reference_state(wl.program, wl.initial_memory)
        memory = wl.make_memory()
        engine, result = run_spec(wl.program, TwoBitPredictor,
                                  config=config, memory=memory)
        assert engine.regs == golden.regs

    def test_prediction_accuracy_reported(self):
        engine, result = run_spec(LOOP, StaticBTFNPredictor)
        if result.extra.get("predictions"):
            assert 0.0 <= result.extra["prediction_accuracy"] <= 1.0

    def test_nested_speculation(self):
        # Two unresolved branches at once: inner loop over outer loop,
        # both with slow conditions.
        source = """
            A_IMM A5, 3
        outer:
            A_IMM A6, 3
        inner:
            A_ADDI A6, A6, -1
            MOV A0, A6
            BR_NONZERO A0, inner
            A_ADDI A5, A5, -1
            MOV A0, A5
            BR_NONZERO A0, outer
            HALT
        """
        program = assemble(source)
        golden = reference_state(program)
        engine, result = run_spec(program, StaticBTFNPredictor)
        assert engine.regs == golden.regs
        assert result.instructions == golden.executed


class TestPredictors:
    def test_two_bit_learns_a_loop(self):
        from repro.isa import Instruction, Opcode
        pred = TwoBitPredictor()
        branch = Instruction(
            Opcode.BR_NONZERO, srcs=(A(0),), target=0,
        )
        for _ in range(3):
            pred.update(branch, True)
        assert pred.predict(branch)
        pred.update(branch, False)
        assert pred.predict(branch)  # hysteresis: one miss does not flip

    def test_two_bit_saturation_bounds(self):
        from repro.isa import Instruction, Opcode
        pred = TwoBitPredictor(initial=3)
        branch = Instruction(Opcode.BR_ZERO, srcs=(A(0),), target=0)
        for _ in range(10):
            pred.update(branch, False)
        assert not pred.predict(branch)
        pred.update(branch, True)
        pred.update(branch, True)
        assert pred.predict(branch)

    def test_two_bit_initial_validation(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(initial=4)

    def test_btfn(self):
        from repro.isa import Instruction, Opcode
        backward = Instruction(Opcode.BR_ZERO, srcs=(A(0),), target=0)
        object.__setattr__(backward, "pc", 5)
        forward = Instruction(Opcode.BR_ZERO, srcs=(A(0),), target=9)
        object.__setattr__(forward, "pc", 5)
        pred = StaticBTFNPredictor()
        assert pred.predict(backward)
        assert not pred.predict(forward)

    def test_reset(self):
        from repro.isa import Instruction, Opcode
        pred = TwoBitPredictor()
        branch = Instruction(Opcode.BR_ZERO, srcs=(A(0),), target=0)
        pred.update(branch, True)
        pred.update(branch, True)
        pred.reset()
        assert not pred.predict(branch)


class TestOnLoops:
    @pytest.mark.parametrize("factory", [lll3, lll5])
    def test_livermore_subset_correct(self, factory):
        wl = factory()
        golden = reference_state(wl.program, wl.initial_memory)
        memory = wl.make_memory()
        engine, result = run_spec(wl.program, memory=memory)
        assert engine.regs == golden.regs
        assert memory == golden.memory
        assert result.instructions == golden.executed
