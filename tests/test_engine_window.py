"""Behavioural tests for the windowed out-of-order engines
(Tomasulo, Tag Unit, RS Pool, RSTU)."""

import pytest

from repro.isa import A, S, assemble
from repro.issue import (
    RSPoolEngine,
    RSTUEngine,
    SimpleEngine,
    TagUnitEngine,
    TomasuloEngine,
)
from repro.machine import MachineConfig, Memory, StallReason
from repro.trace import reference_state

WINDOW_ENGINES = [TomasuloEngine, TagUnitEngine, RSPoolEngine, RSTUEngine]


def run_engine(cls, source, config=None, memory=None):
    program = assemble(source)
    engine = cls(program, config or MachineConfig(window_size=8),
                 memory=memory)
    result = engine.run()
    return engine, result


OOO_DEMO = """
    S_IMM S1, 1.0
    S_IMM S2, 2.0
    F_RECIP S3, S1       ; long latency (14)
    F_ADD  S4, S3, S3    ; depends on the reciprocal -- stalls in-order
    A_IMM  A1, 5         ; a long run of independent work that an
    A_IMM  A2, 6         ; out-of-order machine overlaps with the chain
    A_ADD  A3, A1, A2
    A_ADD  A4, A1, A2
    A_ADD  A5, A3, A4
    A_IMM  A6, 9
    A_ADD  A7, A5, A6
    S_IMM  S5, 3.0
    F_MUL  S6, S5, S5
    S_IMM  S7, 4.0
    MOV    B1, A1
    MOV    B2, A2
    MOV    T1, S5
    HALT
"""


class TestOutOfOrderIssue:
    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_independent_work_bypasses_stalled_instruction(self, cls):
        _, simple = run_engine(SimpleEngine, OOO_DEMO)
        _, ooo = run_engine(cls, OOO_DEMO)
        assert ooo.cycles < simple.cycles

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_architectural_result_correct(self, cls):
        program = assemble(OOO_DEMO)
        golden = reference_state(program)
        engine, result = run_engine(cls, OOO_DEMO)
        assert engine.regs == golden.regs
        assert result.instructions == golden.executed

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_self_dependent_update_uses_old_tag(self, cls):
        engine, _ = run_engine(cls, """
            A_IMM A1, 10
            A_ADDI A1, A1, 1
            A_ADDI A1, A1, 1
            HALT
        """)
        assert engine.regs.read(A(1)) == 12


class TestWAWandWAR:
    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_waw_latest_value_wins(self, cls):
        # S2 written by a slow op then a fast op: the fast (younger)
        # result must survive in the register file.
        engine, _ = run_engine(cls, """
            S_IMM S1, 4.0
            F_RECIP S2, S1       ; latency 14, writes S2 = 0.25
            S_IMM  S2, 9.0       ; latency 1, younger write of S2
            HALT
        """)
        assert engine.regs.read(S(2)) == 9.0

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_war_reader_gets_old_value(self, cls):
        # F_ADD reads S2 (old value) while a younger S_IMM overwrites it.
        engine, _ = run_engine(cls, """
            S_IMM S2, 1.0
            S_IMM S3, 0.0
            F_ADD S4, S2, S3     ; reads S2 == 1.0
            S_IMM S2, 50.0
            HALT
        """)
        assert engine.regs.read(S(4)) == 1.0
        assert engine.regs.read(S(2)) == 50.0


class TestStructuralStalls:
    def test_tomasulo_station_full(self):
        # window_size=1 => one station per FU; chained float adds pile up.
        config = MachineConfig(window_size=1)
        engine, result = run_engine(TomasuloEngine, """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S2, S2
            F_ADD S4, S3, S3
            HALT
        """, config)
        assert result.stalls[StallReason.WINDOW_FULL] >= 1

    def test_tagunit_exhaustion_blocks_issue(self):
        config = MachineConfig(window_size=8, n_tags=2)
        engine, result = run_engine(TagUnitEngine, """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S1, S1
            F_ADD S4, S1, S1
            F_ADD S5, S1, S1
            HALT
        """, config)
        assert result.stalls[StallReason.NO_TAG] >= 1
        assert engine.regs.read(S(5)) == 2.0

    def test_rstu_window_full(self):
        config = MachineConfig(window_size=2)
        engine, result = run_engine(RSTUEngine, """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S1, S1
            F_ADD S4, S1, S1
            HALT
        """, config)
        assert result.stalls[StallReason.WINDOW_FULL] >= 1

    def test_load_register_exhaustion(self):
        config = MachineConfig(window_size=16, n_load_registers=1)
        engine, result = run_engine(RSTUEngine, """
            A_IMM A1, 100
            LOAD_S S1, A1[0]
            LOAD_S S2, A1[1]
            LOAD_S S3, A1[2]
            HALT
        """, config)
        assert result.stalls[StallReason.NO_LOAD_REGISTER] >= 1


class TestMemoryDisambiguation:
    STORE_LOAD = """
        A_IMM A1, 100
        S_IMM S1, 7.5
        STORE_S A1[0], S1
        LOAD_S S2, A1[0]     ; must see 7.5 (forward or ordered access)
        LOAD_S S3, A1[1]     ; independent address
        HALT
    """

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_store_to_load_value(self, cls):
        engine, result = run_engine(cls, self.STORE_LOAD)
        assert engine.regs.read(S(2)) == 7.5
        assert engine.regs.read(S(3)) == 0

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_forward_counted(self, cls):
        engine, _ = run_engine(cls, self.STORE_LOAD)
        assert engine.mdu.forwards >= 1

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_store_store_load_ordering(self, cls):
        engine, _ = run_engine(cls, """
            A_IMM A1, 100
            S_IMM S1, 1.0
            S_IMM S2, 2.0
            STORE_S A1[0], S1
            STORE_S A1[0], S2
            LOAD_S S3, A1[0]
        """)
        assert engine.regs.read(S(3)) == 2.0
        assert engine.memory.peek(100) == 2.0

    @pytest.mark.parametrize("cls", WINDOW_ENGINES)
    def test_unknown_address_blocks_younger_memory_ops(self, cls):
        # The first store's address comes from a slow A_MUL; the later
        # load to a *different* address must still wait for resolution.
        source = """
            A_IMM A1, 10
            A_IMM A2, 20
            S_IMM S1, 5.0
            A_MUL A3, A1, A2     ; address = 200, ready late
            STORE_S A3[0], S1
            LOAD_S S2, A2[0]     ; address 20, independent
            HALT
        """
        engine, result = run_engine(cls, source)
        assert engine.memory.peek(200) == 5.0
        assert engine.regs.read(S(2)) == 0


class TestDispatchPaths:
    def test_two_paths_never_slower(self):
        source = OOO_DEMO
        cfg1 = MachineConfig(window_size=8, dispatch_paths=1)
        cfg2 = MachineConfig(window_size=8, dispatch_paths=2)
        _, r1 = run_engine(RSTUEngine, source, cfg1)
        _, r2 = run_engine(RSTUEngine, source, cfg2)
        assert r2.cycles <= r1.cycles

    def test_rstu_entry_held_until_completion(self):
        """An RSTU entry is 'wasted' while its instruction executes: with
        one entry, back-to-back independent float adds serialize on the
        station even though the unit is pipelined."""
        source = """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S1, S1
            HALT
        """
        _, pool = run_engine(RSPoolEngine, source, MachineConfig(window_size=1))
        _, rstu = run_engine(RSTUEngine, source, MachineConfig(window_size=1))
        # RS pool frees the station at dispatch; the RSTU only at
        # completion, so the RSTU run is strictly longer.
        assert rstu.cycles > pool.cycles
