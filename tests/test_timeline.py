"""Tests for the pipeline timeline recorder and viewer."""

import pytest

from repro.core import BypassMode, RUUEngine
from repro.interrupts import ReorderBufferEngine
from repro.isa import assemble
from repro.issue import RSTUEngine, SimpleEngine
from repro.machine import MachineConfig
from repro.machine.timeline import Timeline

SOURCE = """
    S_IMM S1, 1.0
    F_ADD S2, S1, S1
    F_MUL S3, S2, S2
    A_IMM A1, 5
    HALT
"""


def run_with_timeline(cls, source=SOURCE, **kwargs):
    engine = cls(assemble(source), MachineConfig(window_size=8), **kwargs)
    engine.timeline = Timeline()
    engine.run()
    return engine, engine.timeline


class TestRecording:
    def test_every_instruction_decoded(self):
        engine, timeline = run_with_timeline(RUUEngine)
        # 4 real instructions plus the HALT (which only decodes).
        assert timeline.sequences() == [0, 1, 2, 3, 4]
        for seq in timeline.sequences():
            assert "decode" in timeline.events_for(seq)

    def test_stage_order_is_causal(self):
        engine, timeline = run_with_timeline(RUUEngine)
        for seq in range(4):
            events = timeline.events_for(seq)
            assert events["decode"] <= events["issue"]
            assert events["issue"] <= events["dispatch"]
            assert events["dispatch"] < events["complete"]
            assert events["complete"] < events["commit"]

    def test_commit_order_is_program_order_on_ruu(self):
        engine, timeline = run_with_timeline(RUUEngine)
        commits = [
            timeline.events_for(seq)["commit"] for seq in range(4)
        ]
        assert commits == sorted(commits)

    def test_completion_out_of_order_on_ruu(self):
        # A1's transmit (seq 3) completes before the float chain.
        engine, timeline = run_with_timeline(RUUEngine)
        assert (
            timeline.events_for(3)["complete"]
            < timeline.events_for(2)["complete"]
        )

    def test_simple_engine_has_no_commit_stage(self):
        engine, timeline = run_with_timeline(SimpleEngine)
        assert "commit" not in timeline.events_for(1)
        assert "complete" in timeline.events_for(1)

    def test_dispatch_latency_reflects_dependencies(self):
        engine, timeline = run_with_timeline(RUUEngine)
        # F_MUL (seq 2) waits for F_ADD: dispatch at least 6 cycles
        # after issue.
        assert timeline.stage_delay(2, "issue", "dispatch") >= 5

    def test_delay_none_for_missing_stage(self):
        engine, timeline = run_with_timeline(SimpleEngine)
        assert timeline.stage_delay(0, "issue", "commit") is None

    def test_average_delay(self):
        engine, timeline = run_with_timeline(RUUEngine)
        assert timeline.average_delay("dispatch", "complete") >= 1.0
        assert timeline.average_delay("nope", "also-nope") == 0.0

    def test_rob_waits_visible(self):
        """The plain reorder buffer's dependency aggravation shows up
        as a larger issue->dispatch... issue==dispatch there, but
        complete->commit drain is visible instead."""
        engine, timeline = run_with_timeline(ReorderBufferEngine)
        assert timeline.average_delay("complete", "commit") >= 1.0


class TestRendering:
    def test_gantt_renders(self):
        engine, timeline = run_with_timeline(RUUEngine)
        chart = timeline.gantt(first=0, last=3)
        assert "cycles" in chart
        assert "#0" in chart and "#3" in chart
        assert "D" in chart and "R" in chart

    def test_gantt_empty_range(self):
        engine, timeline = run_with_timeline(RUUEngine)
        assert "(no events" in timeline.gantt(first=100, last=200)

    def test_gantt_compresses_long_runs(self):
        from repro.workloads import lll3
        workload = lll3()
        engine = RSTUEngine(workload.program, MachineConfig(window_size=8),
                            memory=workload.make_memory())
        engine.timeline = Timeline()
        engine.run()
        chart = engine.timeline.gantt(first=0, last=60, width=40)
        assert "each column" in chart

    def test_summary_renders(self):
        engine, timeline = run_with_timeline(RUUEngine)
        text = timeline.summary()
        assert "decode" in text and "commit" in text


class TestOverhead:
    def test_no_timeline_attached_is_fine(self):
        engine = RUUEngine(assemble(SOURCE), MachineConfig(window_size=8))
        result = engine.run()
        assert result.instructions == 4

    def test_timeline_does_not_change_timing(self):
        plain = RUUEngine(assemble(SOURCE), MachineConfig(window_size=8))
        plain_result = plain.run()
        engine, _ = run_with_timeline(RUUEngine)
        assert engine.cycle == plain_result.cycles


class TestJsonRoundTrip:
    def test_round_trip_preserves_every_event(self):
        engine, timeline = run_with_timeline(RUUEngine)
        rebuilt = Timeline.from_json(timeline.to_json())
        assert rebuilt.sequences() == timeline.sequences()
        for seq in timeline.sequences():
            assert rebuilt.events_for(seq) == timeline.events_for(seq)

    def test_json_keys_are_strings(self):
        _, timeline = run_with_timeline(RUUEngine)
        payload = timeline.to_json()
        assert payload["schema"] == 1
        assert all(isinstance(k, str) for k in payload["events"])

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            Timeline.from_json({"schema": 99, "events": {}})
