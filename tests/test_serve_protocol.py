"""Protocol layer of the simulation service: validation and wire form.

Two contracts matter here.  Every malformed request must be rejected
*before* it touches an engine, with a stable machine-readable reason
slug (clients and the service tests key on those slugs).  And the wire
form of a result must be deterministic: serializing the same simulation
twice -- or once over the network and once in-process -- yields
byte-identical canonical JSON.
"""

import dataclasses

import pytest

from repro.analysis.parallel import run_point
from repro.machine.config import CRAY1_LIKE, MachineConfig
from repro.serve.protocol import (
    LIMITS,
    OVERRIDABLE_CONFIG_FIELDS,
    ProtocolError,
    build_workload_registry,
    canonical_result_bytes,
    parse_batch,
    parse_sim_request,
    result_to_wire,
    wire_to_result,
)

WORKLOADS = build_workload_registry()


def parse(payload):
    return parse_sim_request(payload, WORKLOADS)


def reason_of(payload):
    with pytest.raises(ProtocolError) as excinfo:
        parse(payload)
    return excinfo.value.reason


class TestRegistry:
    def test_livermore_and_synthetic_by_name(self):
        assert "LLL1" in WORKLOADS
        assert "LLL14" in WORKLOADS
        assert "chain" in WORKLOADS
        assert len(WORKLOADS) >= 18

    def test_names_match_workloads(self):
        for name, workload in WORKLOADS.items():
            assert workload.name == name


class TestValidRequests:
    def test_workload_request_defaults(self):
        request = parse({"workload": "LLL3"})
        assert request.point.engine == "ruu-bypass"
        assert request.point.workload.name == "LLL3"
        assert request.point.config == CRAY1_LIKE
        assert request.key

    def test_program_request_assembles(self):
        request = parse({"program": "A_IMM A0, 3\nHALT"})
        assert len(request.point.workload.program) == 2

    def test_config_overrides_apply(self):
        request = parse(
            {"workload": "LLL3", "config": {"window_size": 4}}
        )
        assert request.point.config.window_size == 4

    def test_identical_requests_share_a_key(self):
        a = parse({"workload": "LLL3", "config": {"window_size": 8}})
        b = parse({"workload": "LLL3", "config": {"window_size": 8}})
        c = parse({"workload": "LLL3", "config": {"window_size": 4}})
        assert a.key == b.key
        assert a.key != c.key

    def test_label_is_carried(self):
        assert parse({"workload": "LLL3", "label": "x"}).label == "x"


class TestRejections:
    def test_non_object_request(self):
        assert reason_of([1, 2]) == "bad_request"

    def test_missing_source(self):
        assert reason_of({}) == "missing_source"

    def test_ambiguous_source(self):
        assert reason_of(
            {"workload": "LLL3", "program": "HALT"}
        ) == "ambiguous_source"

    def test_unknown_workload_lists_available(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse({"workload": "LLL99"})
        assert excinfo.value.reason == "unknown_workload"
        assert "LLL3" in excinfo.value.detail["available"]

    def test_unknown_engine(self):
        assert reason_of(
            {"workload": "LLL3", "engine": "magic"}
        ) == "unknown_engine"

    def test_chaos_engines_not_serveable(self):
        """Even when chaos engines are installed in the registry, the
        service refuses them -- they exist to kill workers."""
        assert reason_of(
            {"workload": "LLL3", "engine": "chaos-crash-once"}
        ) == "unknown_engine"

    def test_bad_program_reports_assembly_error(self):
        assert reason_of({"program": "NOT_AN_OPCODE X9"}) \
            == "bad_program"

    def test_program_too_long(self):
        src = "A" * (LIMITS["max_program_chars"] + 1)
        with pytest.raises(ProtocolError) as excinfo:
            parse({"program": src})
        assert excinfo.value.reason == "program_too_long"
        assert excinfo.value.detail["limit"] \
            == LIMITS["max_program_chars"]

    def test_unknown_config_field(self):
        assert reason_of(
            {"workload": "LLL3", "config": {"warp_factor": 9}}
        ) == "unknown_config_field"

    def test_latencies_not_overridable(self):
        assert "latencies" not in OVERRIDABLE_CONFIG_FIELDS
        assert reason_of(
            {"workload": "LLL3", "config": {"latencies": {}}}
        ) == "unknown_config_field"

    def test_non_integer_config_value(self):
        assert reason_of(
            {"workload": "LLL3", "config": {"window_size": "big"}}
        ) == "bad_config_value"

    def test_bool_is_not_an_integer(self):
        assert reason_of(
            {"workload": "LLL3", "config": {"window_size": True}}
        ) == "bad_config_value"

    def test_negative_config_value(self):
        assert reason_of(
            {"workload": "LLL3", "config": {"window_size": -1}}
        ) == "bad_config_value"

    def test_max_cycles_limit_pinned(self):
        too_big = LIMITS["max_max_cycles"] + 1
        with pytest.raises(ProtocolError) as excinfo:
            parse({"workload": "LLL3",
                   "config": {"max_cycles": too_big}})
        assert excinfo.value.reason == "max_cycles_too_large"
        assert excinfo.value.detail["got"] == too_big

    def test_error_payload_is_machine_readable(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse({"workload": "LLL99"})
        payload = excinfo.value.to_json()
        assert payload["reason"] == "unknown_workload"
        assert isinstance(payload["message"], str)


class TestBatchEnvelope:
    def test_items_pass_through(self):
        items = parse_batch({"requests": [{"workload": "LLL1"}, {}]})
        assert len(items) == 2

    def test_not_an_envelope(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch({"workload": "LLL3"})
        assert excinfo.value.reason == "bad_request"

    def test_empty_batch(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch({"requests": []})
        assert excinfo.value.reason == "empty_batch"

    def test_batch_size_limit_pinned(self):
        requests = [{"workload": "LLL1"}] * (LIMITS["max_batch_size"] + 1)
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch({"requests": requests})
        assert excinfo.value.reason == "batch_too_large"
        assert excinfo.value.detail["limit"] == LIMITS["max_batch_size"]


class TestWireForm:
    @pytest.fixture(scope="class")
    def result(self):
        request = parse(
            {"workload": "LLL3", "config": {"window_size": 8}}
        )
        return run_point(request.point)

    def test_roundtrip_preserves_everything(self, result):
        rebuilt = wire_to_result(result_to_wire(result))
        assert canonical_result_bytes(rebuilt) \
            == canonical_result_bytes(result)
        assert rebuilt.cycles == result.cycles
        assert rebuilt.instructions == result.instructions

    def test_volatile_extras_stripped(self, result):
        wire = result_to_wire(result)
        assert "host_seconds" not in wire.get("extra", {})
        assert "schema" not in wire

    def test_rerun_is_byte_identical(self, result):
        request = parse(
            {"workload": "LLL3", "config": {"window_size": 8}}
        )
        again = run_point(request.point)
        assert canonical_result_bytes(again) \
            == canonical_result_bytes(result)

    def test_different_points_differ(self, result):
        other = run_point(
            parse({"workload": "LLL3",
                   "config": {"window_size": 4}}).point
        )
        assert canonical_result_bytes(other) \
            != canonical_result_bytes(result)


class TestOverridableFields:
    def test_every_machineconfig_field_except_latencies(self):
        names = {f.name for f in dataclasses.fields(MachineConfig)}
        assert OVERRIDABLE_CONFIG_FIELDS == names - {"latencies"}


class TestTraceRequests:
    def test_trace_defaults_off(self):
        request = parse({"workload": "LLL3"})
        assert request.point.trace is False
        assert not request.key.endswith(":trace")

    def test_traced_key_never_coalesces_with_untraced(self):
        # Same explicit budget so the configs (and thus the content
        # hashes) match; only the ":trace" suffix may separate them.
        config = {"max_cycles": 100_000}
        plain = parse({"workload": "LLL3", "config": config})
        traced = parse({"workload": "LLL3", "config": config,
                        "trace": True})
        assert traced.point.trace is True
        assert traced.key == plain.key + ":trace"

    def test_trace_must_be_boolean(self):
        assert reason_of({"workload": "LLL3", "trace": "yes"}) \
            == "bad_request"

    def test_explicit_oversized_budget_refused(self):
        payload = {
            "workload": "LLL3", "trace": True,
            "config": {"max_cycles": LIMITS["max_trace_cycles"] + 1},
        }
        with pytest.raises(ProtocolError) as excinfo:
            parse(payload)
        assert excinfo.value.reason == "trace_too_large"
        assert excinfo.value.detail["limit"] == LIMITS["max_trace_cycles"]

    def test_implicit_budget_clamped_to_trace_ceiling(self):
        request = parse({"workload": "LLL3", "trace": True})
        assert request.point.config.max_cycles \
            == LIMITS["max_trace_cycles"]

    def test_explicit_budget_within_ceiling_survives(self):
        request = parse({
            "workload": "LLL3", "trace": True,
            "config": {"max_cycles": 100_000},
        })
        assert request.point.config.max_cycles == 100_000

    def test_traced_run_serves_attribution(self):
        result = run_point(
            parse({"workload": "LLL1", "trace": True,
                   "config": {"window_size": 8}}).point
        )
        attribution = result.extra["attribution"]
        assert sum(attribution["buckets"].values()) == result.cycles
        # The attribution summary must survive the wire form.
        assert wire_to_result(result_to_wire(result)) \
            .extra["attribution"] == attribution
