"""Tests for the workload suites and the size-stability claim."""

import pytest

from repro.analysis import ENGINE_FACTORIES, run_suite
from repro.machine import MachineConfig, speedup
from repro.trace import FunctionalExecutor
from repro.workloads.suites import SIZE_PRESETS, SUITES, livermore_suite


class TestSuites:
    def test_all_suites_instantiate(self):
        for name, factory in SUITES.items():
            workloads = factory()
            assert workloads, name
            assert all(w.program for w in workloads)

    @pytest.mark.parametrize("preset", sorted(SIZE_PRESETS))
    def test_presets_validate(self, preset):
        for workload in livermore_suite(preset):
            memory = workload.make_memory()
            FunctionalExecutor(workload.program, memory).run()
            failures = workload.validate(memory)
            assert not failures, failures

    def test_preset_sizes_ordered(self):
        def total(preset):
            count = 0
            for workload in livermore_suite(preset):
                executor = FunctionalExecutor(
                    workload.program, workload.make_memory()
                )
                executor.run()
                count += executor.executed
            return count

        quick, default, paper = (
            total("quick"), total("default"), total("paper")
        )
        assert quick < default < paper
        # the paper suite lands near the paper's ~118k instructions
        assert 60_000 < paper < 200_000

    def test_paper_preset_per_loop_band(self):
        for workload in livermore_suite("paper"):
            executor = FunctionalExecutor(
                workload.program, workload.make_memory()
            )
            executor.run()
            assert 2_000 < executor.executed < 25_000, (
                workload.name, executor.executed
            )


class TestSizeStability:
    def test_speedups_stable_across_presets(self):
        """The justification for benchmarking at small sizes: relative
        speedups barely move between the quick and default presets."""
        config = MachineConfig(window_size=15)

        def measure(preset):
            workloads = livermore_suite(preset)
            base = run_suite(ENGINE_FACTORIES["simple"], workloads)
            ruu = run_suite(ENGINE_FACTORIES["ruu-bypass"], workloads,
                            config)
            return base.cycles / ruu.cycles

        quick = measure("quick")
        default = measure("default")
        assert quick == pytest.approx(default, rel=0.15)
