"""Hypothesis strategies: random, type-safe programs of the model ISA.

The generator keeps a strict type discipline so that fault-free programs
stay fault-free on every engine (arithmetic faults are tested
separately):

* ``A1..A4`` and ``S4..S6`` always hold integers; ``S1..S3`` hold
  floats (float magnitudes are bounded so chains cannot overflow);
* ``A5``/``A6`` are memory base registers and are never written by ALU
  ops; the float region is ``[100, 116)``, the int region ``[200, 216)``;
* ``B0..B7`` shadow A values, ``T0..T7`` int S values, ``T8..T15``
  float S values;
* ``A0`` is the branch-condition register, ``A7`` the loop counter.

Programs are emitted as assembly text (exercising the assembler on every
example) with an optional counted loop and optional data-dependent
forward branches.
"""

from __future__ import annotations

from hypothesis import strategies as st

FLOAT_REGION = 100
INT_REGION = 200
REGION_SIZE = 16

A_REGS = ["A1", "A2", "A3", "A4"]
FS_REGS = ["S1", "S2", "S3"]
IS_REGS = ["S4", "S5", "S6"]

_a_reg = st.sampled_from(A_REGS)
_fs_reg = st.sampled_from(FS_REGS)
_is_reg = st.sampled_from(IS_REGS)
_offset = st.integers(0, REGION_SIZE - 1)
_small_int = st.integers(-20, 20)
_b_index = st.integers(0, 7)


@st.composite
def _a_alu(draw):
    op = draw(st.sampled_from(["A_ADD", "A_SUB", "A_MUL"]))
    return f"{op} {draw(_a_reg)}, {draw(_a_reg)}, {draw(_a_reg)}"


@st.composite
def _a_addi(draw):
    return f"A_ADDI {draw(_a_reg)}, {draw(_a_reg)}, {draw(_small_int)}"


@st.composite
def _a_imm(draw):
    return f"A_IMM {draw(_a_reg)}, {draw(_small_int)}"


@st.composite
def _f_alu(draw):
    op = draw(st.sampled_from(["F_ADD", "F_SUB", "F_MUL"]))
    return f"{op} {draw(_fs_reg)}, {draw(_fs_reg)}, {draw(_fs_reg)}"


@st.composite
def _s_int_alu(draw):
    op = draw(st.sampled_from(["S_ADD", "S_SUB", "S_AND", "S_OR", "S_XOR"]))
    return f"{op} {draw(_is_reg)}, {draw(_is_reg)}, {draw(_is_reg)}"


@st.composite
def _s_shift(draw):
    op = draw(st.sampled_from(["S_SHL", "S_SHR"]))
    return f"{op} {draw(_is_reg)}, {draw(_is_reg)}, {draw(st.integers(0, 8))}"


@st.composite
def _mov(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return f"MOV {draw(_a_reg)}, {draw(_a_reg)}"
    if kind == 1:
        return f"MOV B{draw(_b_index)}, {draw(_a_reg)}"
    if kind == 2:
        return f"MOV {draw(_a_reg)}, B{draw(_b_index)}"
    if kind == 3:
        return f"MOV T{draw(_b_index)}, {draw(_is_reg)}"
    if kind == 4:
        return f"MOV {draw(_is_reg)}, T{draw(_b_index)}"
    return f"MOV T{8 + draw(_b_index)}, {draw(_fs_reg)}"


@st.composite
def _mov_t_float(draw):
    return f"MOV {draw(_fs_reg)}, T{8 + draw(_b_index)}"


@st.composite
def _float_mem(draw):
    if draw(st.booleans()):
        return f"LOAD_S {draw(_fs_reg)}, A6[{draw(_offset)}]"
    return f"STORE_S A6[{draw(_offset)}], {draw(_fs_reg)}"


@st.composite
def _int_mem(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return f"LOAD_A {draw(_a_reg)}, A5[{draw(_offset)}]"
    if kind == 1:
        return f"STORE_A A5[{draw(_offset)}], {draw(_a_reg)}"
    if kind == 2:
        return f"LOAD_S {draw(_is_reg)}, A5[{draw(_offset)}]"
    if kind == 3:
        return f"STORE_S A5[{draw(_offset)}], {draw(_is_reg)}"
    # the backup files load/store directly too (B holds ints; keep T's
    # memory traffic in the int region for type discipline)
    if kind == 4:
        b = draw(_b_index)
        if draw(st.booleans()):
            return f"LOAD_B B{b}, A5[{draw(_offset)}]"
        return f"STORE_B A5[{draw(_offset)}], B{b}"
    t = draw(_b_index)
    if draw(st.booleans()):
        return f"LOAD_T T{t}, A5[{draw(_offset)}]"
    return f"STORE_T A5[{draw(_offset)}], T{t}"


_op_line = st.one_of(
    _a_alu(), _a_addi(), _a_imm(), _f_alu(), _s_int_alu(), _s_shift(),
    _mov(), _mov_t_float(), _float_mem(), _int_mem(),
)


@st.composite
def _branch_block(draw, block_id):
    """A data-dependent forward branch over a small sub-block."""
    cond = draw(st.sampled_from(
        ["BR_ZERO", "BR_NONZERO", "BR_PLUS", "BR_MINUS"]
    ))
    tested = draw(_a_reg)
    inner = draw(st.lists(_op_line, min_size=1, max_size=4))
    label = f"skip{block_id}"
    lines = [f"MOV A0, {tested}", f"{cond} A0, {label}"]
    lines.extend(inner)
    lines.append(f"{label}:")
    return lines


@st.composite
def program_text(draw):
    """A full random program (assembly source) plus its data summary."""
    a_inits = [draw(_small_int) for _ in range(4)]
    f_inits = [
        draw(st.floats(-2.0, 2.0, allow_nan=False, width=32))
        for _ in range(3)
    ]
    i_inits = [draw(_small_int) for _ in range(3)]

    lines = [
        f"A_IMM A5, {INT_REGION}",
        f"A_IMM A6, {FLOAT_REGION}",
    ]
    lines += [f"A_IMM {reg}, {val}" for reg, val in zip(A_REGS, a_inits)]
    lines += [f"S_IMM {reg}, {val!r}" for reg, val in zip(FS_REGS, f_inits)]
    lines += [f"S_IMM {reg}, {val}" for reg, val in zip(IS_REGS, i_inits)]

    body: list = []
    n_segments = draw(st.integers(1, 4))
    block_id = 0
    for _ in range(n_segments):
        body.extend(draw(st.lists(_op_line, min_size=1, max_size=8)))
        if draw(st.booleans()):
            body.extend(draw(_branch_block(block_id)))
            block_id += 1

    trip = draw(st.integers(0, 3))
    if trip:
        lines.append(f"A_IMM A7, {trip}")
        lines.append("loop:")
        lines.extend(body)
        lines.append("A_ADDI A7, A7, -1")
        lines.append("MOV A0, A7")
        lines.append("BR_NONZERO A0, loop")
    else:
        lines.extend(body)
    lines.append("HALT")
    return "\n".join(lines)


@st.composite
def initial_data(draw):
    """Memory contents for the float and int regions."""
    floats = [
        draw(st.floats(-4.0, 4.0, allow_nan=False, width=32))
        for _ in range(REGION_SIZE)
    ]
    ints = [draw(_small_int) for _ in range(REGION_SIZE)]
    return floats, ints
