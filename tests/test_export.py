"""Tests for CSV/JSON export and ASCII charts."""

import csv
import io
import json

import pytest

from repro.analysis import (
    ascii_chart,
    result_to_dict,
    results_to_json,
    sweep_to_csv,
    sweep_to_rows,
    sweep_sizes,
)
from repro.machine import SimResult
from repro.workloads import dependency_chain


@pytest.fixture(scope="module")
def sweep():
    return sweep_sizes(
        "ruu-bypass", [3, 8], workloads=[dependency_chain(60)]
    )


class TestSweepExport:
    def test_rows(self, sweep):
        rows = sweep_to_rows(sweep)
        assert [row["size"] for row in rows] == [3, 8]
        assert all(row["engine"] == "ruu-bypass" for row in rows)
        assert all(row["baseline_cycles"] > 0 for row in rows)

    def test_csv_parses_back(self, sweep):
        text = sweep_to_csv(sweep)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[0]["speedup"]) == pytest.approx(
            sweep.rows[0].speedup
        )


class TestResultExport:
    def test_dict_roundtrip(self):
        result = SimResult("ruu", "LLL1", cycles=100, instructions=40)
        result.stalls["window_full"] = 7
        result.extra["bypass_mode"] = "bypass"
        data = result_to_dict(result)
        assert data["issue_rate"] == 0.4
        assert data["stalls"]["window_full"] == 7
        assert data["extra"]["bypass_mode"] == "bypass"

    def test_non_json_extras_dropped(self):
        result = SimResult("ruu", "w", 1, 1)
        result.extra["interrupt"] = object()
        data = result_to_dict(result)
        assert "interrupt" not in data["extra"]

    def test_json_document(self):
        results = [
            SimResult("a", "w1", 10, 5),
            SimResult("a", "w2", 20, 8),
        ]
        doc = json.loads(results_to_json(results))
        assert len(doc) == 2
        assert doc[1]["cycles"] == 20


class TestAsciiChart:
    CURVES = {
        "rstu": {3: 1.1, 10: 2.2, 30: 2.4},
        "ruu": {3: 1.0, 10: 1.8, 30: 2.1},
    }

    def test_renders_axes_and_legend(self):
        chart = ascii_chart(self.CURVES, title="speedups")
        assert "speedups" in chart
        assert "*=rstu" in chart or "*=ruu" in chart
        assert "+--" in chart or "+-" in chart

    def test_empty(self):
        assert ascii_chart({}) == "(no curves)"

    def test_peak_on_top_row(self):
        chart = ascii_chart({"one": {1: 4.0, 2: 2.0}}, height=8)
        top_row = chart.splitlines()[0]
        assert "4.00" in top_row

    def test_single_point(self):
        chart = ascii_chart({"p": {5: 1.0}})
        assert "p" in chart

    def test_distinct_glyphs(self):
        chart = ascii_chart(self.CURVES)
        body = "\n".join(chart.splitlines()[:-2])
        assert "*" in body and "o" in body
