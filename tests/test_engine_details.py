"""Deeper engine-internal tests: bus exclusivity, commit-bus timing,
backup-file memory traffic, occupancy accounting, TU slot hygiene."""

import pytest

from repro.core import BypassMode, RUUEngine
from repro.isa import A, B, S, T, assemble
from repro.issue import RSTUEngine, TagUnitEngine, TomasuloEngine
from repro.machine import MachineConfig, Memory
from repro.machine.result_bus import ResultBus
from repro.trace import reference_state


class _StrictBus(ResultBus):
    """A result bus that fails the test on any double booking."""

    def reserve(self, cycle):
        assert self.is_free(cycle), f"result bus double-booked at {cycle}"
        return super().reserve(cycle)


@pytest.mark.parametrize("cls", [TomasuloEngine, RSTUEngine, RUUEngine])
def test_result_bus_never_double_booked(cls):
    from repro.workloads import lll1
    workload = lll1(n=30)
    engine = cls(workload.program, MachineConfig(window_size=10),
                 memory=workload.make_memory())
    engine.result_bus = _StrictBus()
    engine.run()


class TestBackupFileMemoryTraffic:
    SOURCE = """
        A_IMM A1, 300
        A_IMM A2, 7
        MOV   B9, A2
        STORE_B A1[0], B9
        LOAD_B  B10, A1[0]
        MOV   A3, B10
        S_IMM S1, 9
        MOV   T5, S1
        STORE_T A1[1], T5
        LOAD_T  T6, A1[1]
        MOV   S2, T6
        HALT
    """

    @pytest.mark.parametrize("cls", [TomasuloEngine, RSTUEngine, RUUEngine])
    def test_b_and_t_loads_stores(self, cls):
        program = assemble(self.SOURCE)
        golden = reference_state(program)
        engine = cls(program, MachineConfig(window_size=10))
        engine.run()
        assert engine.regs == golden.regs
        assert engine.regs.read(A(3)) == 7
        assert engine.regs.read(S(2)) == 9
        assert engine.memory.peek(300) == 7


class TestCommitBusTiming:
    def test_nobypass_consumer_waits_for_commit(self):
        """The §6.2 scenario: a slow instruction at the head of the RUU
        keeps the producer executed-but-uncommitted while the consumer
        issues.  With bypass the consumer reads the RUU; without it the
        value only arrives on the commit bus."""
        source = """
            S_IMM S1, 1.0        ; seq 0
            S_IMM S4, 2.0        ; seq 1
            F_RECIP S5, S4       ; seq 2: 14-cycle head-of-queue blocker
            F_ADD S2, S1, S1     ; seq 3: producer, completes early
            A_IMM A1, 1          ; seqs 4..11: issue-slot fillers
            A_IMM A2, 1
            A_IMM A3, 1
            A_IMM A4, 1
            A_IMM A5, 1
            A_IMM A6, 1
            A_IMM A7, 1
            A_IMM A1, 2
            F_MUL S3, S2, S2     ; seq 12: consumer
            HALT
        """
        program = assemble(source)
        from repro.machine import Timeline
        runs = {}
        for mode in (BypassMode.FULL, BypassMode.NONE):
            engine = RUUEngine(program, MachineConfig(window_size=16),
                               bypass=mode)
            engine.timeline = Timeline()
            engine.run()
            runs[mode] = engine.timeline
        seq_producer, seq_consumer = 3, 12
        for mode, timeline in runs.items():
            # the scenario is real: producer executed before the
            # consumer issued, but committed after
            assert timeline.events_for(seq_producer)["complete"] \
                < timeline.events_for(seq_consumer)["issue"]
            assert timeline.events_for(seq_producer)["commit"] \
                > timeline.events_for(seq_consumer)["issue"]
        full_dispatch = runs[BypassMode.FULL].events_for(
            seq_consumer)["dispatch"]
        none_dispatch = runs[BypassMode.NONE].events_for(
            seq_consumer)["dispatch"]
        assert none_dispatch > full_dispatch
        # the no-bypass wait ends at the producer's commit broadcast
        producer_commit = runs[BypassMode.NONE].events_for(
            seq_producer)["commit"]
        assert none_dispatch >= producer_commit

    def test_full_bypass_reads_executed_result_at_issue(self):
        source = """
            S_IMM S1, 3.0
            F_MUL S2, S1, S1
            NOP
            NOP
            NOP
            NOP
            NOP
            NOP
            NOP
            NOP
            F_ADD S3, S2, S1
            HALT
        """
        engine = RUUEngine(assemble(source), MachineConfig(window_size=16),
                           bypass=BypassMode.FULL)
        engine.run()
        assert engine.regs.read(S(3)) == 12.0


class TestTagUnitHygiene:
    def test_all_tags_freed_at_the_end(self):
        from repro.workloads import lll3
        workload = lll3(n=40)
        engine = TagUnitEngine(workload.program,
                               MachineConfig(window_size=4, n_tags=8),
                               memory=workload.make_memory())
        engine.run()
        assert engine.tags_in_use() == 0
        for entry in engine._tag_unit:
            assert entry.free and entry.register is None

    def test_superseded_tag_does_not_write_register(self):
        # WAW: slow write then fast write to S2; when the slow result
        # arrives its tag is stale and must not touch the register.
        source = """
            S_IMM S1, 4.0
            F_RECIP S2, S1       ; 0.25, arrives late
            S_IMM  S2, 9.0       ; supersedes
            HALT
        """
        engine = TagUnitEngine(assemble(source),
                               MachineConfig(window_size=4))
        engine.run()
        assert engine.regs.read(S(2)) == 9.0


class TestOccupancyStats:
    def test_avg_occupancy_reported(self):
        from repro.workloads import lll5
        workload = lll5(n=40)
        engine = RUUEngine(workload.program, MachineConfig(window_size=10),
                           memory=workload.make_memory())
        result = engine.run()
        occupancy = result.extra["avg_window_occupancy"]
        assert 0.0 < occupancy <= 10.0

    def test_occupancy_grows_with_window(self):
        from repro.workloads import lll7
        values = []
        for size in (4, 16):
            workload = lll7(n=40)
            engine = RUUEngine(workload.program,
                               MachineConfig(window_size=size),
                               memory=workload.make_memory())
            result = engine.run()
            values.append(result.extra["avg_window_occupancy"])
        assert values[1] > values[0]


class TestMemoryForwardingCorners:
    @pytest.mark.parametrize("cls", [RSTUEngine, RUUEngine])
    def test_load_load_merge_value(self, cls):
        source = """
            A_IMM A1, 500
            LOAD_S S1, A1[0]
            LOAD_S S2, A1[0]     ; merges with the pending load
            F_ADD S3, S1, S2
            HALT
        """
        memory = Memory()
        memory.poke(500, 2.5)
        engine = cls(assemble(source), MachineConfig(window_size=8),
                     memory=memory)
        engine.run()
        assert engine.regs.read(S(3)) == 5.0
        assert engine.mdu.forwards >= 1

    @pytest.mark.parametrize("cls", [RSTUEngine, RUUEngine])
    def test_store_forward_chain(self, cls):
        # store -> load -> store -> load on one address
        source = """
            A_IMM A1, 500
            S_IMM S1, 1.0
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            F_ADD S3, S2, S2
            STORE_S A1[0], S3
            LOAD_S S4, A1[0]
            HALT
        """
        engine = cls(assemble(source), MachineConfig(window_size=10))
        engine.run()
        assert engine.regs.read(S(4)) == 2.0
        assert engine.memory.peek(500) == 2.0
