"""Reproduction-shape tests: the paper's qualitative claims must hold.

These run the actual Tables 1-6 machinery (on the default-size loops, a
reduced size grid) and assert the properties the paper's evaluation
rests on.  EXPERIMENTS.md records the full-grid numbers.
"""

import pytest

from repro.analysis import (
    ENGINE_FACTORIES,
    monotonic_fraction,
    ordering_holds,
    paper_data,
    run_suite,
    saturation_size,
    spearman,
    sweep_sizes,
)
from repro.machine import MachineConfig

SIZES = [3, 6, 10, 20, 50]
RSTU_SIZES = [3, 6, 10, 20, 30]


@pytest.fixture(scope="module")
def baseline(livermore_loops):
    return run_suite(ENGINE_FACTORIES["simple"], livermore_loops)


@pytest.fixture(scope="module")
def curves(livermore_loops, baseline):
    out = {}
    for name, sizes in [
        ("rstu", RSTU_SIZES),
        ("ruu-bypass", SIZES),
        ("ruu-nobypass", SIZES),
        ("ruu-limited", SIZES),
    ]:
        sweep = sweep_sizes(name, sizes, workloads=livermore_loops,
                            baseline=baseline)
        out[name] = sweep.speedups()
    out["rstu-2path"] = sweep_sizes(
        "rstu", RSTU_SIZES, workloads=livermore_loops, baseline=baseline,
        dispatch_paths=2,
    ).speedups()
    return out


class TestBaseline:
    def test_issue_rate_well_below_one(self, baseline):
        """Table 1's point: dependencies keep the simple machine far
        from the theoretical limit of 1 instruction/cycle."""
        assert 0.15 < baseline.issue_rate < 0.6

    def test_dominant_stall_is_data_dependencies(self, baseline):
        from repro.machine import StallReason
        stalls = baseline.stalls
        assert stalls[StallReason.SOURCE_BUSY] > stalls[
            StallReason.BRANCH_DEAD
        ]


class TestTable2Shape:
    def test_monotone(self, curves):
        assert monotonic_fraction(curves["rstu"], tolerance=0.02) == 1.0

    def test_saturates(self, curves):
        # The paper's RSTU is within 5% of its peak by 15 entries on a
        # 3..30 grid; ours must saturate in the same region.
        assert saturation_size(curves["rstu"], threshold=0.9) <= 15

    def test_meaningful_speedup(self, curves):
        assert curves["rstu"][20] > 1.5

    def test_small_window_near_baseline(self, curves):
        # Paper: RSTU with 3 entries is ~0.97 (slightly *below* 1).
        assert curves["rstu"][3] < 1.35

    def test_rank_correlation_with_paper(self, curves):
        paper = {s: v[0] for s, v in paper_data.TABLE2_RSTU.items()}
        assert spearman(curves["rstu"], paper) > 0.95


class TestTable3Shape:
    def test_second_dispatch_path_helps_little(self, curves):
        """The paper's reservoir argument: issue fills at 1/cycle, so a
        second drain path gains only a few percent."""
        for size in RSTU_SIZES:
            one = curves["rstu"][size]
            two = curves["rstu-2path"][size]
            assert two >= one - 0.02
            assert two <= one * 1.10


class TestTables456Shape:
    @pytest.mark.parametrize("name", ["ruu-bypass", "ruu-nobypass",
                                      "ruu-limited"])
    def test_monotone(self, curves, name):
        assert monotonic_fraction(curves[name], tolerance=0.02) == 1.0

    def test_bypass_ordering_at_large_size(self, curves):
        """Paper ordering at size 50: full > limited > none."""
        assert ordering_holds(
            curves,
            ["ruu-bypass", "ruu-limited", "ruu-nobypass"],
            at_size=50,
        )

    def test_nobypass_clearly_worse(self, curves):
        assert curves["ruu-nobypass"][50] < 0.9 * curves["ruu-bypass"][50]

    def test_limited_recovers_much_of_the_gap(self, curves):
        full = curves["ruu-bypass"][50]
        none = curves["ruu-nobypass"][50]
        limited = curves["ruu-limited"][50]
        assert limited > none + 0.3 * (full - none)

    def test_ruu_approaches_rstu(self, curves):
        """Paper: RUU-with-bypass at 50 reaches ~98% of the RSTU's
        saturated speedup while also giving precise interrupts."""
        assert curves["ruu-bypass"][50] >= 0.80 * curves["rstu"][30]

    def test_ruu_below_rstu_at_small_sizes(self, curves):
        """Entries held until commit make small RUUs weaker than small
        RSTUs (paper: 0.853 vs 0.965 at 3 entries)."""
        assert curves["ruu-bypass"][3] <= curves["rstu"][3] + 0.02

    @pytest.mark.parametrize("name", ["ruu-bypass", "ruu-nobypass",
                                      "ruu-limited"])
    def test_rank_correlation_with_paper(self, curves, name):
        table = {
            "ruu-bypass": paper_data.TABLE4_RUU_BYPASS,
            "ruu-nobypass": paper_data.TABLE5_RUU_NOBYPASS,
            "ruu-limited": paper_data.TABLE6_RUU_LIMITED,
        }[name]
        paper = {s: v[0] for s, v in table.items() if s in curves[name]}
        assert spearman(curves[name], paper) > 0.95


class TestSpeculationExtension:
    def test_speculative_ruu_at_least_as_fast(self, livermore_loops,
                                              baseline):
        config = MachineConfig(window_size=20)
        plain = run_suite(ENGINE_FACTORIES["ruu-bypass"], livermore_loops,
                          config)
        spec = run_suite(ENGINE_FACTORIES["spec-ruu"], livermore_loops,
                         config)
        assert spec.cycles <= plain.cycles * 1.02
