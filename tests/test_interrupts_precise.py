"""Precise-interrupt tests: the paper's central correctness claim.

The RUU (and the Smith & Pleszkun machines) must expose exactly the
sequential prefix state at any trap and be restartable; the baseline
and RSTU machines are shown imprecise on a crafted scenario.
"""

import pytest

from repro.core import (
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    check_precision,
    demonstrate_restartability,
    run_with_page_fault,
    run_with_recovery,
)
from repro.interrupts import (
    FutureFileEngine,
    HistoryBufferEngine,
    ReorderBufferBypassEngine,
    ReorderBufferEngine,
)
from repro.issue import RSTUEngine, SimpleEngine
from repro.machine import MachineConfig, Memory
from repro.trace import reference_state
from repro.workloads import fault_probe, lll1, lll5

CONFIG = MachineConfig(window_size=10)

PRECISE_FACTORIES = {
    "ruu-bypass": lambda p, m: RUUEngine(p, CONFIG, memory=m,
                                         bypass=BypassMode.FULL),
    "ruu-nobypass": lambda p, m: RUUEngine(p, CONFIG, memory=m,
                                           bypass=BypassMode.NONE),
    "ruu-limited": lambda p, m: RUUEngine(p, CONFIG, memory=m,
                                          bypass=BypassMode.LIMITED),
    "spec-ruu": lambda p, m: SpeculativeRUUEngine(p, CONFIG, memory=m),
    "reorder-buffer": lambda p, m: ReorderBufferEngine(p, CONFIG, memory=m),
    "rob-bypass": lambda p, m: ReorderBufferBypassEngine(p, CONFIG, memory=m),
    "history-buffer": lambda p, m: HistoryBufferEngine(p, CONFIG, memory=m),
    "future-file": lambda p, m: FutureFileEngine(p, CONFIG, memory=m),
}


@pytest.fixture(scope="module")
def probe():
    return fault_probe()


class TestPageFaultPrecision:
    @pytest.mark.parametrize("name", sorted(PRECISE_FACTORIES))
    def test_precise_on_fault_probe(self, name, probe):
        factory = PRECISE_FACTORIES[name]
        engine, record = run_with_page_fault(
            factory, probe.program, probe.initial_memory,
            probe.fault_address,
        )
        assert record is not None
        assert record.claims_precise
        report = check_precision(engine, probe.program, probe.initial_memory)
        assert report.precise, report.describe()

    @pytest.mark.parametrize("name", sorted(PRECISE_FACTORIES))
    def test_restartable(self, name, probe):
        factory = PRECISE_FACTORIES[name]
        assert demonstrate_restartability(
            factory, probe.program, probe.initial_memory,
            probe.fault_address,
        )

    @pytest.mark.parametrize("fault_index", [0, 5, 13, 19])
    def test_fault_at_any_load(self, fault_index):
        probe = fault_probe(fault_index=fault_index)
        factory = PRECISE_FACTORIES["ruu-bypass"]
        engine, record = run_with_page_fault(
            factory, probe.program, probe.initial_memory,
            probe.fault_address,
        )
        report = check_precision(engine, probe.program, probe.initial_memory)
        assert report.precise, report.describe()

    def test_interrupt_pc_is_faulting_instruction(self, probe):
        factory = PRECISE_FACTORIES["ruu-bypass"]
        engine, record = run_with_page_fault(
            factory, probe.program, probe.initial_memory,
            probe.fault_address,
        )
        # The probe's only load is the first instruction of the loop body.
        assert probe.program[record.pc].is_load

    def test_recovery_yields_fault_free_state(self, probe):
        factory = PRECISE_FACTORIES["ruu-nobypass"]
        engine, records = run_with_recovery(
            factory, probe.program, probe.initial_memory,
            probe.fault_address,
        )
        assert len(records) == 1
        clean = reference_state(probe.program, probe.initial_memory)
        assert engine.regs == clean.regs
        assert engine.memory == clean.memory
        assert engine.retired == clean.executed


class TestStoreFaults:
    def test_store_page_fault_is_precise(self):
        wl = lll1()
        # LLL1 stores to x at base 1000; fault the 5th store target.
        factory = PRECISE_FACTORIES["ruu-bypass"]
        engine, record = run_with_page_fault(
            factory, wl.program, wl.initial_memory, 1004
        )
        assert record is not None and record.claims_precise
        report = check_precision(engine, wl.program, wl.initial_memory)
        assert report.precise, report.describe()

    def test_store_fault_restartable(self):
        wl = lll5()
        factory = PRECISE_FACTORIES["ruu-limited"]
        assert demonstrate_restartability(
            factory, wl.program, wl.initial_memory, 1010
        )


class TestArithmeticFaults:
    SOURCE_MEMORY = None

    def test_recip_zero_precise_on_ruu(self):
        from repro.isa import assemble
        program = assemble("""
            A_IMM A1, 1
            A_IMM A2, 2
            S_IMM S1, 0.0
            F_RECIP S2, S1
            A_IMM A3, 3
            HALT
        """)
        engine = RUUEngine(program, CONFIG)
        engine.run()
        record = engine.interrupt_record
        assert record is not None and record.claims_precise
        report = check_precision(engine, program, Memory())
        assert report.precise, report.describe()
        # A3 (younger than the trap) must NOT be visible.
        from repro.isa import A
        assert engine.regs.read(A(3)) == 0


class TestImpreciseMachines:
    IMPRECISE_SOURCE = """
        A_IMM A1, 100
        S_IMM S1, 0.0
        F_RECIP S2, S1      ; traps at completion (14 cycles away)
        A_IMM A3, 42        ; younger; completes first on these machines
        A_IMM A4, 43
        HALT
    """

    @pytest.mark.parametrize("cls", [SimpleEngine, RSTUEngine])
    def test_state_is_not_the_prefix(self, cls):
        from repro.isa import assemble
        program = assemble(self.IMPRECISE_SOURCE)
        engine = cls(program, CONFIG)
        engine.run()
        record = engine.interrupt_record
        assert record is not None
        assert not record.claims_precise
        report = check_precision(engine, program, Memory())
        assert not report.precise
        assert report.register_diff  # younger writes leaked

    @pytest.mark.parametrize("cls", [SimpleEngine, RSTUEngine])
    def test_imprecise_cannot_resume(self, cls):
        from repro.isa import assemble
        from repro.machine import SimulationError
        program = assemble(self.IMPRECISE_SOURCE)
        engine = cls(program, CONFIG)
        engine.run()
        with pytest.raises(SimulationError):
            engine.continue_run()


class TestRepeatedFaults:
    def test_two_distinct_faults_serviced_in_turn(self):
        wl = fault_probe()
        memory = wl.initial_memory.copy()
        memory.inject_fault(wl.fault_address)
        memory.inject_fault(wl.fault_address + 3)
        engine = RUUEngine(wl.program, CONFIG, memory=memory)
        engine.run()
        records = []
        while engine.interrupt_record is not None:
            records.append(engine.interrupt_record)
            memory.service_fault(engine.interrupt_record.cause.address)
            engine.continue_run()
        assert len(records) == 2
        clean = reference_state(wl.program, wl.initial_memory)
        assert engine.regs == clean.regs
        assert engine.memory == clean.memory
