"""Tests for the static program verifier (`repro.lint`).

One test class per rule, a sweep asserting every bundled workload and
example program lints without errors, and the oracle tests: the static
critical-path lower bound must never exceed the dynamic dataflow limit
nor any engine's simulated cycle count.
"""

import pathlib
import runpy

import pytest

from repro.analysis import ENGINE_FACTORIES, dataflow_limit
from repro.isa import Instruction, Opcode, Program, assemble
from repro.isa.opcodes import FUClass
from repro.lint import (
    Severity,
    StaticCFG,
    lint_program,
    static_critical_path,
)
from repro.machine import CRAY1_LIKE, MachineConfig
from repro.trace import FunctionalExecutor

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def rules_of(report):
    return {d.rule for d in report.diagnostics}


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

class TestStaticCFG:
    def test_blocks_and_edges_of_a_loop(self):
        program = assemble("""
            A_IMM A0, 3
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        cfg = StaticCFG(program)
        assert [block.start for block in cfg.blocks] == [0, 1, 3]
        body = cfg.blocks[1]
        assert sorted(body.successors) == [1, 2]  # back edge + fall-through
        assert cfg.blocks[2].is_exit

    def test_branch_targets_are_always_leaders(self):
        # A jump into the middle of a straight-line run must split it.
        program = assemble("""
            A_IMM A1, 1
            A_IMM A2, 2
            JMP mid
            NOP
        mid:
            A_IMM A3, 3
            HALT
        """)
        cfg = StaticCFG(program)
        starts = {block.start for block in cfg.blocks}
        assert program.labels["mid"] in starts

    def test_must_execute_includes_entry_and_postdominators(self):
        program = assemble("""
            A_IMM A0, 1
            BR_ZERO A0, skip
            S_IMM S1, 1.0
        skip:
            S_IMM S2, 2.0
            HALT
        """)
        cfg = StaticCFG(program)
        mandatory = {cfg.blocks[i].start for i in cfg.must_execute()}
        assert 0 in mandatory                       # entry
        assert program.labels["skip"] in mandatory  # joins both arms
        # The conditional arm is avoidable.
        assert 2 not in mandatory


# ----------------------------------------------------------------------
# one class per rule
# ----------------------------------------------------------------------

class TestUndefinedRead:
    def test_read_before_any_write_warns_with_source_line(self):
        program = assemble("""
            S_IMM S1, 2.0
            F_ADD S2, S1, S3
            HALT
        """)
        report = lint_program(program)
        findings = report.by_rule("undefined-read")
        assert len(findings) == 1
        diagnostic = findings[0]
        assert diagnostic.severity is Severity.WARNING
        assert "S3" in diagnostic.message
        assert diagnostic.pc == 1
        assert diagnostic.line == 3  # source line of the F_ADD

    def test_write_on_only_one_path_still_warns(self):
        program = assemble("""
            A_IMM A0, 1
            BR_ZERO A0, use
            S_IMM S1, 1.0
        use:
            F_ADD S2, S1, S1
            HALT
        """)
        report = lint_program(program)
        assert report.by_rule("undefined-read")

    def test_fully_initialized_program_is_clean(self):
        program = assemble("""
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            HALT
        """)
        assert not lint_program(program).by_rule("undefined-read")


class TestDeadWrite:
    def test_overwritten_before_read_warns(self):
        program = assemble("""
            A_IMM A1, 5
            A_IMM A1, 6
            STORE_A A1[100], A1
            HALT
        """)
        report = lint_program(program)
        findings = report.by_rule("dead-write")
        assert len(findings) == 1
        assert findings[0].pc == 0
        assert findings[0].line == 2

    def test_value_surviving_to_halt_is_not_dead(self):
        # Never read, but architecturally observable final state.
        program = assemble("""
            A_IMM A1, 5
            HALT
        """)
        assert not lint_program(program).by_rule("dead-write")

    def test_read_on_loop_back_edge_is_not_dead(self):
        program = assemble("""
            A_IMM A0, 3
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        assert not lint_program(program).by_rule("dead-write")


class TestUnreachableCode:
    def test_code_after_jump_warns(self):
        program = assemble("""
            S_IMM S1, 1.0
            JMP end
            F_ADD S2, S1, S1
        end:
            HALT
        """)
        report = lint_program(program)
        findings = report.by_rule("unreachable-code")
        assert len(findings) == 1
        assert findings[0].pc == 2
        assert findings[0].severity is Severity.WARNING


class TestNoExitPath:
    def test_inescapable_loop_is_an_error(self):
        program = assemble("""
            A_IMM A0, 1
        spin:
            JMP spin
            HALT
        """)
        report = lint_program(program)
        findings = report.by_rule("no-exit-path")
        assert findings and findings[0].severity is Severity.ERROR
        assert not report.ok

    def test_loop_with_exit_branch_is_clean(self):
        program = assemble("""
            A_IMM A0, 3
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        assert not lint_program(program).by_rule("no-exit-path")


class TestBadBranchTarget:
    def test_out_of_range_target_is_an_error(self):
        # build_program() would reject this, so forge a Program directly
        # the way a buggy tool (or deserializer) could.
        program = Program(
            (
                Instruction(Opcode.JMP, target=99, pc=0),
                Instruction(Opcode.HALT, pc=1),
            ),
            {},
            "forged",
        )
        report = lint_program(program)
        findings = report.by_rule("bad-branch-target")
        assert findings and findings[0].severity is Severity.ERROR

    def test_unresolved_label_is_an_error(self):
        program = Program(
            (
                Instruction(Opcode.JMP, target="nowhere", pc=0),
                Instruction(Opcode.HALT, pc=1),
            ),
            {},
            "forged",
        )
        assert lint_program(program).by_rule("unresolved-target")


class TestMissingHalt:
    def test_falling_off_the_end_is_an_error(self):
        program = Program(
            (Instruction(Opcode.NOP, pc=0),), {}, "no-halt"
        )
        report = lint_program(program)
        assert report.by_rule("missing-halt")
        assert not report.ok

    def test_empty_program_is_an_error(self):
        assert lint_program(Program((), {}, "empty")).by_rule(
            "missing-halt"
        )


class TestAddressBounds:
    def test_statically_negative_address_warns(self):
        program = assemble("""
            A_IMM A1, 2
            LOAD_S S1, A1[-5]
            HALT
        """)
        findings = lint_program(program).by_rule("address-bounds")
        assert len(findings) == 1
        assert "-3" in findings[0].message

    def test_unknown_base_is_not_flagged(self):
        program = assemble("""
            LOAD_A A1, A0[100]
            LOAD_S S1, A1[-5]
            HALT
        """)
        assert not lint_program(program).by_rule("address-bounds")


class TestConfigChecks:
    def test_missing_latency_for_used_unit(self):
        program = assemble("""
            S_IMM S1, 1.0
            F_MUL S2, S1, S1
            HALT
        """)
        latencies = dict(CRAY1_LIKE.latencies)
        del latencies[FUClass.FLOAT_MUL]
        config = CRAY1_LIKE.with_(latencies=latencies)
        report = lint_program(program, config)
        assert report.by_rule("config-missing-latency")
        assert not report.ok

    def test_nonpositive_latency(self):
        program = assemble("S_IMM S1, 1.0\nHALT")
        config = CRAY1_LIKE.with_latency(FUClass.TRANSMIT, 0)
        assert lint_program(program, config).by_rule("config-bad-latency")

    def test_counter_width_cannot_cover_window(self):
        # One destination register, 1-bit counters: one live instance.
        program = assemble("""
            A_IMM A0, 5
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        config = MachineConfig(window_size=16, counter_bits=1)
        findings = lint_program(program, config).by_rule(
            "config-counter-window"
        )
        assert findings and findings[0].severity is Severity.WARNING

    def test_bad_sizing_is_an_error(self):
        program = assemble("HALT")
        config = MachineConfig(issue_width=0)
        assert lint_program(program, config).by_rule("config-bad-sizing")

    def test_memory_program_needs_load_registers(self):
        program = assemble("""
            LOAD_S S1, A0[100]
            HALT
        """)
        config = MachineConfig(n_load_registers=0)
        assert lint_program(program, config).by_rule(
            "config-no-load-registers"
        )

    def test_default_config_is_clean_on_real_kernels(self, livermore_loops):
        for workload in livermore_loops[:3]:
            report = lint_program(workload.program, CRAY1_LIKE)
            assert not [
                d for d in report.diagnostics if d.rule.startswith("config-")
            ]


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------

class TestReport:
    def test_describe_and_json_are_consistent(self):
        program = assemble("""
            S_IMM S1, 2.0
            F_ADD S2, S1, S3
            HALT
        """, name="demo")
        report = lint_program(program)
        text = report.describe()
        assert "undefined-read" in text and "demo:3" in text
        payload = report.to_dict()
        assert payload["program"] == "demo"
        assert payload["ok"] is True
        assert payload["diagnostics"][0]["line"] == 3
        assert payload["critical_path"]["cycles"] >= 1

    def test_fatal_structure_skips_deeper_passes(self):
        program = Program(
            (
                Instruction(Opcode.JMP, target=99, pc=0),
                Instruction(Opcode.HALT, pc=1),
            ),
            {},
            "forged",
        )
        report = lint_program(program)
        assert report.critical_path is None


# ----------------------------------------------------------------------
# the sweep: everything bundled must lint without errors
# ----------------------------------------------------------------------

class TestSweep:
    def test_all_bundled_workloads_lint_clean(self, all_workloads):
        for workload in all_workloads:
            report = lint_program(workload.program)
            assert report.ok, (
                f"{workload.name} has lint errors:\n{report.describe()}"
            )

    def test_all_workloads_have_line_numbers(self, all_workloads):
        for workload in all_workloads:
            missing = [
                inst.pc for inst in workload.program
                if inst.line is None and not inst.is_halt
            ]
            assert not missing, (
                f"{workload.name}: instructions without source lines at "
                f"pcs {missing}"
            )

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in EXAMPLES.glob("*.py"))
    )
    def test_example_programs_lint_clean(self, name):
        """Assemble every module-level SOURCE string the examples define
        and lint it; examples needing unavailable plotting backends are
        skipped, not failed."""
        try:
            namespace = runpy.run_path(
                str(EXAMPLES / name), run_name="lint_sweep"
            )
        except ImportError as exc:  # pragma: no cover - optional deps
            pytest.skip(f"{name}: {exc}")
        sources = {
            key: value for key, value in namespace.items()
            if isinstance(value, str) and key.isupper()
            and "SOURCE" in key
        }
        programs = [
            value for value in namespace.values()
            if isinstance(value, Program)
        ]
        for key, source in sources.items():
            programs.append(assemble(source, name=f"{name}:{key}"))
        for program in programs:
            report = lint_program(program)
            assert report.ok, (
                f"{name}/{program.name}:\n{report.describe()}"
            )


# ----------------------------------------------------------------------
# the oracle: static bound <= dynamic dataflow limit <= engine cycles
# ----------------------------------------------------------------------

class TestCriticalPathOracle:
    def test_bound_is_positive_on_real_kernels(self, livermore_loops):
        for workload in livermore_loops:
            assert static_critical_path(workload.program).cycles >= 1

    def test_static_bound_below_dataflow_limit(self, all_workloads):
        for workload in all_workloads:
            static = static_critical_path(workload.program, CRAY1_LIKE)
            trace = FunctionalExecutor(
                workload.program, workload.make_memory()
            ).run()
            dynamic = dataflow_limit(trace, CRAY1_LIKE)
            assert static.cycles <= dynamic.critical_path_cycles, (
                f"{workload.name}: static bound {static.cycles} exceeds "
                f"dynamic dataflow limit {dynamic.critical_path_cycles}"
            )

    @pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
    def test_static_bound_below_every_engine(
        self, engine_name, all_workloads
    ):
        config = MachineConfig(window_size=10)
        builder = ENGINE_FACTORIES[engine_name]
        # Three structurally different kernels keep the matrix fast.
        picks = [all_workloads[0], all_workloads[8], all_workloads[14]]
        for workload in picks:
            static = static_critical_path(workload.program, config)
            result = builder(
                workload.program, config, workload.make_memory()
            ).run()
            assert static.cycles <= result.cycles, (
                f"{engine_name} finished {workload.name} in "
                f"{result.cycles} cycles, below the static lower bound "
                f"{static.cycles}: timing bug"
            )

    def test_fu_class_breakdown_sums_to_bound(self, livermore_loops):
        for workload in livermore_loops[:5]:
            static = static_critical_path(workload.program)
            assert sum(static.fu_cycles.values()) == static.cycles
