"""Self-healing parallel runner under injected worker failures.

The chaos engines (:mod:`repro.analysis.chaos`) misbehave only inside
pool workers, so every scenario here can check both halves of the
contract: the sweep still completes (retry, timeout-kill, or serial
fallback), and the :class:`~repro.analysis.parallel.FleetReport` says
exactly what it took.
"""

import pytest

from repro.analysis.chaos import (
    CHAOS_ENGINES,
    install_chaos_engines,
    remove_chaos_engines,
)
from repro.analysis.parallel import (
    FleetError,
    FleetReport,
    ParallelRunner,
    PointFailure,
    SimPoint,
)
from repro.machine import MachineConfig
from repro.workloads import dependency_chain, lll3

CONFIG = MachineConfig(window_size=8)


@pytest.fixture
def chaos(tmp_path):
    install_chaos_engines(str(tmp_path))
    yield
    remove_chaos_engines()


def healthy_points(n=3):
    return [SimPoint("simple", dependency_chain(10 + i), CONFIG)
            for i in range(n)]


def serial_results(points):
    return ParallelRunner(jobs=1).run_points(points)


class TestHealthyFleet:
    def test_clean_report(self):
        runner = ParallelRunner(jobs=2)
        points = healthy_points()
        runner.run_points(points)
        assert runner.last_fleet.clean
        assert runner.last_fleet.points == len(points)
        assert runner.last_fleet.submissions == len(points)
        assert runner.fleet.clean  # cumulative view agrees

    def test_fleet_accumulates_across_calls(self):
        runner = ParallelRunner(jobs=2)
        runner.run_points(healthy_points(2))
        runner.run_points(healthy_points(3))
        assert runner.fleet.points == 5
        assert runner.last_fleet.points == 3


class TestCrashRecovery:
    def test_transient_crash_retries_then_succeeds(self, chaos):
        runner = ParallelRunner(jobs=2, max_retries=2, backoff=0.01)
        points = [SimPoint("chaos-crash-once", lll3(n=20), CONFIG)] \
            + healthy_points(2)
        results = runner.run_points(points)
        assert [r.engine for r in results] == \
            ["chaos-crash-once", "simple", "simple", ]
        fleet = runner.last_fleet
        assert fleet.ok
        assert fleet.crashes >= 1
        assert fleet.retries >= 1
        assert fleet.pools >= 2          # the broken pool was rebuilt
        assert not fleet.degraded        # the retry, not the fallback, won

    def test_persistent_crash_falls_back_to_serial(self, chaos):
        runner = ParallelRunner(jobs=2, max_retries=1, backoff=0.01)
        points = [SimPoint("chaos-crash", lll3(n=20), CONFIG)] \
            + healthy_points(2)
        results = runner.run_points(points)
        assert len(results) == 3 and all(results)
        fleet = runner.last_fleet
        assert fleet.ok
        assert fleet.crashes >= 2        # both rounds died
        # The crasher itself can only ever finish in the fallback; a
        # healthy point may ride along if the pool died around it.
        assert "chaos-crash" in {entry["engine"]
                                 for entry in fleet.degraded}

    def test_crash_results_identical_to_pure_serial(self, chaos):
        """Healthy points that share a fleet with a crasher come back
        bit-identical to a pure-serial run, in submission order."""
        healthy = healthy_points(3)
        points = healthy[:1] \
            + [SimPoint("chaos-crash", lll3(n=20), CONFIG)] + healthy[1:]
        runner = ParallelRunner(jobs=2, max_retries=1, backoff=0.01)
        parallel = runner.run_points(points)
        serial = serial_results(healthy)
        survivors = [r for r in parallel if r.engine == "simple"]
        for got, expected in zip(survivors, serial):
            assert got.workload == expected.workload
            assert got.cycles == expected.cycles
            assert got.instructions == expected.instructions
            assert got.stalls == expected.stalls


class TestHangRecovery:
    def test_hung_worker_times_out_then_serial_fallback(self, chaos):
        runner = ParallelRunner(jobs=2, max_retries=1, backoff=0.01,
                                timeout=1.0)
        points = [SimPoint("chaos-hang", lll3(n=20), CONFIG)] \
            + healthy_points(1)
        results = runner.run_points(points)
        assert len(results) == 2 and all(results)
        fleet = runner.last_fleet
        assert fleet.ok
        assert fleet.timeouts >= 1
        assert len(fleet.degraded) == 1
        assert fleet.degraded[0]["engine"] == "chaos-hang"


class TestPermanentFailure:
    def test_fleet_error_names_every_failed_point(self, chaos):
        runner = ParallelRunner(jobs=2, max_retries=1, backoff=0.01)
        points = healthy_points(1) \
            + [SimPoint("chaos-error", lll3(n=20), CONFIG)]
        with pytest.raises(FleetError) as excinfo:
            runner.run_points(points)
        report = excinfo.value.report
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.engine == "chaos-error"
        assert failure.index == 1
        assert "chaos-error: injected failure" in failure.error
        assert failure.attempts >= 2     # retried before giving up
        assert failure.describe() in str(excinfo.value)

    def test_no_serial_fallback_means_failures(self, chaos):
        # Two points so the fleet actually fans out (a single point
        # clamps to jobs=1 and runs in-process, where chaos engines
        # deliberately behave).
        runner = ParallelRunner(jobs=2, max_retries=0, backoff=0.01,
                                serial_fallback=False)
        with pytest.raises(FleetError) as excinfo:
            runner.run_points(
                [SimPoint("chaos-crash", lll3(n=20), CONFIG)]
                + healthy_points(1)
            )
        failed = {f.engine for f in excinfo.value.report.failures}
        assert "chaos-crash" in failed

    def test_serial_jobs1_reports_engine_errors(self, chaos):
        runner = ParallelRunner(jobs=1)
        with pytest.raises(FleetError) as excinfo:
            runner.run_points(
                [SimPoint("chaos-error", lll3(n=20), CONFIG)]
            )
        assert excinfo.value.report.failures[0].engine == "chaos-error"

    def test_unknown_engine_still_raises_keyerror(self, chaos):
        runner = ParallelRunner(jobs=2)
        with pytest.raises(KeyError):
            runner.run_points(
                [SimPoint("no-such-engine", lll3(n=20), CONFIG)]
            )


class TestFleetReportType:
    def test_merge_and_json(self):
        a = FleetReport(jobs=2, points=3, submissions=4, retries=1,
                        crashes=1, pools=2)
        b = FleetReport(jobs=4, points=2, submissions=2, timeouts=1,
                        failures=[PointFailure(0, "e", "w", 3, "boom")])
        a.merge(b)
        assert a.jobs == 4 and a.points == 5 and a.submissions == 6
        assert a.retries == 1 and a.timeouts == 1 and a.crashes == 1
        assert not a.ok and not a.clean
        payload = a.to_json()
        assert payload["failures"][0]["error"] == "boom"
        assert "FAILED" in a.describe()

    def test_chaos_registry_cleanup(self, chaos):
        from repro.analysis import ENGINE_FACTORIES
        assert set(CHAOS_ENGINES) <= set(ENGINE_FACTORIES)
        remove_chaos_engines()
        assert not set(CHAOS_ENGINES) & set(ENGINE_FACTORIES)
