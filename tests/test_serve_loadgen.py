"""Load-generator machinery: stats, gates, report rendering.

The full acceptance sweep (``repro loadbench``) runs in CI's smoke-load
job; here we pin the pieces it is built from -- percentile math, the
thread-safe phase accounting, gate evaluation, the report format, and
the atomic JSON write -- plus one miniature live phase against a real
server to keep the wiring honest.
"""

import json

import pytest

from repro.serve.loadgen import (
    LoadGenerator,
    PhaseStats,
    _percentile,
    format_report,
    write_report_json,
)
from repro.serve.server import serve_in_background


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.99) == 7.0

    def test_order_does_not_matter(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert _percentile(samples, 0.5) == 3.0
        assert _percentile(samples, 0.0) == 1.0
        assert _percentile(samples, 1.0) == 5.0


class TestPhaseStats:
    def test_throughput(self):
        stats = PhaseStats(name="x", requests=10, seconds=2.0)
        assert stats.throughput == 5.0

    def test_zero_time_is_zero_throughput(self):
        assert PhaseStats(name="x", requests=10).throughput == 0.0

    def test_to_json_shape(self):
        stats = PhaseStats(name="x", requests=3, ok=2, errors=1,
                           seconds=1.0,
                           latencies=[0.010, 0.020, 0.030])
        payload = stats.to_json()
        assert payload["name"] == "x"
        assert payload["throughput_rps"] == 3.0
        assert payload["latency_p50_ms"] == 20.0
        # locks and raw latencies stay out of the JSON
        assert "lock" not in payload
        assert "latencies" not in payload


def _synthetic_report(passed=True):
    phase = PhaseStats(name="cold_sweep", requests=100, ok=100,
                       seconds=1.0, latencies=[0.01]).to_json()
    return {
        "schema": 1,
        "target": "127.0.0.1:1",
        "server": {"version": "1.0.0", "jobs": 2, "capacity": 16},
        "phases": [phase],
        "totals": {
            "requests": 100, "ok": 100, "errors": 0,
            "server_errors_5xx": 0, "backpressure_429": 3,
            "retries": 3, "cache_hits": 50,
            "warm_over_cold_throughput": 8.0,
        },
        "byte_identity": {"identical": passed},
        "gates": {"zero_5xx": True, "byte_identity": passed},
        "passed": passed,
    }


class TestReportRendering:
    def test_format_mentions_gates_and_result(self):
        text = format_report(_synthetic_report())
        assert "PASS  zero_5xx" in text
        assert "RESULT: PASS" in text
        assert "byte identity: OK" in text

    def test_failed_report_says_fail(self):
        text = format_report(_synthetic_report(passed=False))
        assert "FAIL  byte_identity" in text
        assert "RESULT: FAIL" in text
        assert "MISMATCH" in text

    def test_write_is_atomic_and_loadable(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_report_json(_synthetic_report(), str(path))
        assert not path.with_suffix(".json.tmp").exists()
        loaded = json.loads(path.read_text())
        assert loaded["passed"] is True


class TestLiveMiniPhase:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        handle = serve_in_background(
            jobs=2, queue_depth=16,
            cache_dir=str(tmp_path_factory.mktemp("loadgen-cache")),
        )
        yield handle
        handle.stop()

    def test_warmup_phase_records_requests(self, server):
        generator = LoadGenerator("127.0.0.1", server.port)
        generator._client().wait_ready()
        stats = generator.run_warmup()
        assert stats.requests == 4
        assert stats.ok == 4
        assert stats.server_errors == 0
        assert len(stats.latencies) == 4
        assert stats.throughput > 0

    def test_byte_identity_check_passes_live(self, server):
        generator = LoadGenerator("127.0.0.1", server.port)
        identity = generator.check_byte_identity()
        assert identity["identical"] is True

    def test_sweep_catalogue_is_unique_points(self, server):
        generator = LoadGenerator("127.0.0.1", server.port)
        requests = generator._sweep_requests()
        assert len(requests) == 18
        keys = {(r["workload"], r["config"]["window_size"])
                for r in requests}
        assert len(keys) == 18
