"""Deadlock watchdog and structured engine diagnostics."""

import json

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import (
    DeadlockError,
    MachineConfig,
    capture_diagnostic,
)
from repro.machine.faults import SimulationError
from repro.workloads import lll3

CONFIG = MachineConfig(window_size=10)


def frozen_engine(name="ruu-bypass", warmup=10):
    """An engine with real in-flight state whose pipeline then freezes.

    Ticking by hand fills the window; replacing ``tick`` with a no-op
    models a wedged pipeline (a scheduling bug, a lost wakeup): cycles
    keep counting but nothing completes or commits ever again.
    """
    workload = lll3(n=40)
    engine = ENGINE_FACTORIES[name](
        workload.program, CONFIG, workload.make_memory()
    )
    for _ in range(warmup):
        engine.tick()
        engine.cycle += 1
    assert not engine.done()
    engine.tick = lambda: None
    return engine


class TestWatchdog:
    def test_trips_well_before_cycle_budget(self):
        engine = frozen_engine()
        engine.config = engine.config.with_(
            watchdog_cycles=50, max_cycles=100_000
        )
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert engine.cycle < 100
        assert "watchdog" in str(excinfo.value)
        assert excinfo.value.diagnostic.cycles_since_commit >= 50

    def test_budget_still_guards_when_disabled(self):
        engine = frozen_engine()
        engine.config = engine.config.with_(
            watchdog_cycles=0, max_cycles=500
        )
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert "budget" in str(excinfo.value)
        assert engine.cycle >= 500

    def test_deadlock_is_a_simulation_error(self):
        engine = frozen_engine()
        engine.config = engine.config.with_(watchdog_cycles=50)
        with pytest.raises(SimulationError):
            engine.run()

    def test_healthy_run_never_trips(self):
        workload = lll3(n=40)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program,
            CONFIG.with_(watchdog_cycles=200),
            workload.make_memory(),
        )
        result = engine.run()
        assert result.instructions > 0

    @pytest.mark.parametrize("name", ["simple", "tomasulo", "rstu",
                                      "history-buffer", "spec-ruu"])
    def test_every_engine_zoo_member_is_coverable(self, name):
        """The duck-typed capture works across the whole zoo."""
        engine = frozen_engine(name)
        engine.config = engine.config.with_(watchdog_cycles=40)
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        diagnostic = excinfo.value.diagnostic
        assert diagnostic.engine == engine.name
        assert diagnostic.cycles_since_commit >= 40


class TestDiagnostic:
    def trapped(self):
        engine = frozen_engine()
        engine.config = engine.config.with_(watchdog_cycles=50)
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        return excinfo.value.diagnostic

    def test_names_waiting_instructions(self):
        diagnostic = self.trapped()
        assert diagnostic.waiting, "expected in-flight instructions"
        states = {entry.state for entry in diagnostic.waiting}
        assert states <= {"waiting", "dispatched", "done"}
        blocked = [entry for entry in diagnostic.waiting
                   if entry.waiting_on]
        assert blocked, "expected at least one blocked instruction"
        assert diagnostic.blocked_resources()

    def test_describe_is_actionable(self):
        diagnostic = self.trapped()
        text = diagnostic.describe()
        assert "no commit for" in text
        assert "in-flight instructions" in text
        assert "blocked resources" in text
        # every waiting instruction is printed with its disassembly
        for entry in diagnostic.waiting:
            assert entry.text in text

    def test_to_json_is_serializable(self):
        diagnostic = self.trapped()
        payload = json.loads(json.dumps(diagnostic.to_json()))
        assert payload["engine"] == "ruu-bypass"
        assert payload["cycles_since_commit"] >= 50
        assert payload["waiting"]
        assert payload["blocked_resources"]

    def test_capture_on_live_engine_is_readonly(self):
        workload = lll3(n=40)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program, CONFIG, workload.make_memory()
        )
        for _ in range(10):
            engine.tick()
            engine.cycle += 1
        before = engine.regs.snapshot()
        diagnostic = capture_diagnostic(engine)
        assert engine.regs.snapshot() == before
        assert diagnostic.cycle == engine.cycle
        engine.run()  # capture must not have perturbed the machine
