"""Timing-level unit tests for the simple (baseline) engine."""

import pytest

from repro.isa import FUClass, assemble
from repro.issue import SimpleEngine
from repro.machine import MachineConfig, Memory, StallReason


def run(source, config=None, memory=None):
    engine = SimpleEngine(
        assemble(source), config or MachineConfig(), memory=memory
    )
    result = engine.run()
    return engine, result


class TestIssueTiming:
    def test_independent_transmits_issue_one_per_cycle(self):
        # Five A_IMMs (transmit, latency 1) with no dependencies: issue
        # is the only limit, so cycles ~ instructions + drain.
        engine, result = run("""
            A_IMM A1, 1
            A_IMM A2, 2
            A_IMM A3, 3
            A_IMM A4, 4
            A_IMM A5, 5
            HALT
        """)
        assert result.instructions == 5
        assert result.cycles <= 8

    def test_dependent_chain_pays_full_latency(self):
        # Each F_ADD must wait for its predecessor's 6-cycle latency.
        engine, result = run("""
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S2, S2
            F_ADD S4, S3, S3
            HALT
        """)
        assert result.cycles >= 3 * 6
        assert result.stalls[StallReason.SOURCE_BUSY] >= 10

    def test_dest_busy_blocks_reissue(self):
        engine, result = run("""
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S2, S1, S1
            HALT
        """)
        assert result.stalls[StallReason.DEST_BUSY] >= 1

    def test_result_bus_conflict_stalls_issue(self):
        # Two float adds back to back would complete in the same cycle
        # only if issued in the same cycle -- impossible here; instead
        # craft a conflict: transmit (1) after float add (6) cannot be
        # timed to collide with in-order 1/cycle issue unless latencies
        # align.  MOV issued 5 cycles after F_ADD completes same cycle.
        source = """
            S_IMM S1, 1.0
            A_IMM A1, 1
            F_ADD S2, S1, S1
            NOP
            NOP
            NOP
            NOP
            MOV A2, A1
            HALT
        """
        engine, result = run(source)
        # F_ADD issues at t, completes t+6.  MOV would issue at t+5 and
        # complete t+6 -> bus conflict -> one RESULT_BUS stall.
        assert result.stalls[StallReason.RESULT_BUS] >= 1

    def test_branch_dead_cycles_charged(self):
        engine, result = run("""
            A_IMM A0, 3
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        assert result.branches == 3
        assert result.branches_taken == 2
        assert result.stalls[StallReason.BRANCH_DEAD] > 0

    def test_branch_waits_for_condition(self):
        engine, result = run("""
            A_IMM A1, 0
            A_MUL A0, A1, A1
            BR_ZERO A0, done
            NOP
        done:
            HALT
        """)
        # A_MUL has latency 6; the branch must wait for A0.
        assert result.stalls[StallReason.BRANCH_WAIT] >= 4

    def test_jmp_redirects(self):
        from repro.isa import A
        engine, result = run("""
            JMP over
            A_IMM A1, 99
        over:
            A_IMM A2, 7
            HALT
        """)
        assert engine.regs.read(A(1)) == 0
        assert engine.regs.read(A(2)) == 7
        assert result.instructions == 2  # JMP + A_IMM A2


class TestMemoryBehaviour:
    def test_store_then_load_same_address(self):
        from repro.isa import S
        engine, result = run("""
            A_IMM A1, 100
            S_IMM S1, 3.5
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            HALT
        """)
        assert engine.regs.read(S(2)) == 3.5

    def test_load_latency_is_memory_time(self):
        engine, result = run("""
            A_IMM A1, 100
            LOAD_S S1, A1[0]
            F_ADD S2, S1, S1
            HALT
        """)
        # F_ADD waits ~11 cycles for the load.
        assert result.cycles >= 11 + 6

    def test_memory_fu_utilization_counted(self):
        engine, result = run("""
            A_IMM A1, 100
            LOAD_S S1, A1[0]
            STORE_S A1[1], S1
            HALT
        """)
        assert result.extra["fu_utilization"]["memory"] == 2


class TestInterruptsAreImprecise:
    def test_arithmetic_fault_freezes_machine(self):
        engine, result = run("""
            S_IMM S1, 0.0
            F_RECIP S2, S1
            A_IMM A1, 5
            HALT
        """)
        assert engine.interrupt_record is not None
        assert not engine.interrupt_record.claims_precise
        assert result.interrupts == 1

    def test_page_fault_reported(self):
        memory = Memory()
        memory.inject_fault(100)
        engine, result = run("""
            A_IMM A1, 100
            LOAD_S S1, A1[0]
            HALT
        """, memory=memory)
        assert engine.interrupt_record is not None
        assert engine.interrupt_record.cause.address == 100

    def test_cannot_resume(self):
        from repro.machine import SimulationError
        engine, _ = run("""
            S_IMM S1, 0.0
            F_RECIP S2, S1
            HALT
        """)
        with pytest.raises(SimulationError):
            engine.continue_run()

    def test_imprecision_demonstrated(self):
        """A younger, faster instruction updates state before an older,
        slower one faults: the classic imprecise scenario."""
        from repro.isa import A
        engine, result = run("""
            S_IMM S1, 0.0
            F_RECIP S2, S1       ; faults after 14 cycles
            A_IMM A1, 7          ; younger, completes first
            HALT
        """)
        record = engine.interrupt_record
        assert record is not None
        # the younger A_IMM already updated A1 -- state is NOT the
        # sequential prefix state at the fault.
        assert engine.regs.read(A(1)) == 7


class TestDrainAndCounts:
    def test_retire_count_excludes_halt(self):
        engine, result = run("NOP\nNOP\nHALT")
        assert result.instructions == 2

    def test_retire_log_matches_count(self):
        engine, result = run("""
            A_IMM A1, 1
            A_IMM A2, 2
            NOP
            HALT
        """)
        assert len(engine.retire_log) == result.instructions

    def test_timeout_raises(self):
        from repro.machine import SimulationError
        program = assemble("""
        forever:
            JMP forever
        """)
        engine = SimpleEngine(program, MachineConfig())
        with pytest.raises(SimulationError):
            engine.run(max_cycles=100)
