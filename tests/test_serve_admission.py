"""Admission control primitives: bound, coalescer, handoff queue.

These are the service's concurrency kernel, so the tests hammer the
atomicity properties directly: all-or-nothing batch acquisition, the
lead-or-follow race, and the close-while-waiting handshake of the
dispatcher queue.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.serve.admission import (
    AdmissionController,
    Coalescer,
    HandoffQueue,
    Ticket,
)
from repro.serve.protocol import build_workload_registry, parse_sim_request

WORKLOADS = build_workload_registry()


def _request(window=8):
    return parse_sim_request(
        {"workload": "LLL1", "config": {"window_size": window}},
        WORKLOADS,
    )


class TestAdmissionController:
    def test_bound_is_enforced(self):
        admission = AdmissionController(capacity=3)
        assert admission.try_acquire(2)
        assert admission.try_acquire(1)
        assert not admission.try_acquire(1)
        admission.release(1)
        assert admission.try_acquire(1)

    def test_batch_acquisition_is_all_or_nothing(self):
        admission = AdmissionController(capacity=3)
        assert admission.try_acquire(2)
        assert not admission.try_acquire(2)  # 2+2 > 3: nothing taken
        assert admission.pending == 2
        assert admission.try_acquire(1)

    def test_counters(self):
        admission = AdmissionController(capacity=1)
        admission.try_acquire(1)
        admission.try_acquire(1)
        assert admission.admitted == 1
        assert admission.rejected == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_retry_after_grows_with_queue(self):
        admission = AdmissionController(capacity=100)
        quiet = admission.retry_after_seconds(jobs=2)
        admission.try_acquire(50)
        for _ in range(5):  # teach the EWMA a 2s service time
            admission.release(0, service_seconds=2.0)
        admission.try_acquire(0)
        busy = admission.retry_after_seconds(jobs=2)
        assert busy > quiet
        assert 1 <= busy <= 60

    def test_retry_after_is_clamped(self):
        admission = AdmissionController(capacity=1000)
        admission.try_acquire(1000)
        for _ in range(20):
            admission.release(0, service_seconds=100.0)
        admission.try_acquire(0)
        assert admission.retry_after_seconds(jobs=1) == 60

    def test_concurrent_acquire_never_oversubscribes(self):
        admission = AdmissionController(capacity=10)
        granted = []
        lock = threading.Lock()
        barrier = threading.Barrier(20)

        def claim():
            barrier.wait()
            if admission.try_acquire(1):
                with lock:
                    granted.append(1)

        threads = [threading.Thread(target=claim) for _ in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(granted) == 10
        assert admission.pending == 10


class TestCoalescer:
    def test_leader_then_followers(self):
        coalescer = Coalescer()
        key = _request().key
        leader_future = Future()
        assert coalescer.lead_or_follow(key, leader_future) is None
        follower = coalescer.lead_or_follow(key, Future())
        assert follower is leader_future
        assert coalescer.coalesced == 1
        assert coalescer.contains(key)
        assert len(coalescer) == 1

    def test_settle_frees_the_key(self):
        coalescer = Coalescer()
        key = _request().key
        coalescer.lead_or_follow(key, Future())
        coalescer.settle(key)
        assert not coalescer.contains(key)
        # the next arrival leads again
        assert coalescer.lead_or_follow(key, Future()) is None

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = Coalescer()
        a, b = _request(8), _request(4)
        assert a.key != b.key
        assert coalescer.lead_or_follow(a.key, Future()) is None
        assert coalescer.lead_or_follow(b.key, Future()) is None
        assert coalescer.coalesced == 0

    def test_exactly_one_leader_under_contention(self):
        coalescer = Coalescer()
        key = _request().key
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def race():
            barrier.wait()
            leader = coalescer.lead_or_follow(key, Future())
            with lock:
                outcomes.append(leader is None)

        threads = [threading.Thread(target=race) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(True) == 1
        assert coalescer.coalesced == 15


class TestHandoffQueue:
    def test_fifo_micro_batching(self):
        queue = HandoffQueue()
        tickets = [Ticket(_request(w)) for w in (4, 6, 8, 10)]
        queue.put(tickets[:2])
        queue.put(tickets[2:])
        batch = queue.get_batch(max_items=3)
        assert batch == tickets[:3]
        assert queue.get_batch(max_items=3) == tickets[3:]

    def test_close_wakes_waiting_dispatcher(self):
        queue = HandoffQueue()
        got = []

        def wait():
            got.append(queue.get_batch(max_items=4))

        thread = threading.Thread(target=wait)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [[]]

    def test_close_drains_remaining_items_first(self):
        queue = HandoffQueue()
        ticket = Ticket(_request())
        queue.put([ticket])
        queue.close()
        assert queue.get_batch(max_items=4) == [ticket]
        assert queue.get_batch(max_items=4) == []

    def test_put_after_close_raises(self):
        queue = HandoffQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put([Ticket(_request())])
