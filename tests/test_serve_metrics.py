"""The stdlib Prometheus registry: instruments and text exposition.

The exposition format is a wire contract (scraped by real Prometheus),
so the tests pin exact line shapes: HELP/TYPE headers, label
rendering and escaping, cumulative ``le`` buckets, ``_sum``/``_count``
series, and the duplicate-name guard.
"""

import threading

import pytest

from repro.serve.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("t_total", "things")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labels_partition_the_series(self, registry):
        counter = registry.counter("t_total", "things", ("code",))
        counter.inc(code="200")
        counter.inc(code="200")
        counter.inc(code="429")
        assert counter.value(code="200") == 2
        assert counter.value(code="429") == 1

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("t_total", "things")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("t_total", "things", ("code",))
        with pytest.raises(ValueError):
            counter.inc(status="200")

    def test_render_shape(self, registry):
        counter = registry.counter("t_total", "things", ("code",))
        counter.inc(code="200")
        lines = counter.render()
        assert "# HELP t_total things" in lines
        assert "# TYPE t_total counter" in lines
        assert 't_total{code="200"} 1' in lines

    def test_unlabelled_counter_renders_zero(self, registry):
        lines = registry.counter("t_total", "things").render()
        assert "t_total 0" in lines


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_render(self, registry):
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(3)
        assert "depth 3" in gauge.render()


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        lines = histogram.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1.0"} 3' in lines
        assert 'lat_seconds_bucket{le="10.0"} 4' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 5' in lines
        assert "lat_seconds_count 5" in lines
        assert any(line.startswith("lat_seconds_sum ")
                   for line in lines)
        assert histogram.count() == 5

    def test_boundary_lands_in_its_bucket(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(1.0, 2.0)
        )
        histogram.observe(1.0)  # le="1.0" is inclusive
        assert 'lat_seconds_bucket{le="1.0"} 1' in histogram.render()

    def test_labelled_histogram(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "latency", ("endpoint",), buckets=(1.0,)
        )
        histogram.observe(0.5, endpoint="/run")
        lines = histogram.render()
        assert any('endpoint="/run"' in line and 'le="1.0"' in line
                   for line in lines)


class TestRegistry:
    def test_duplicate_name_rejected(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x again")

    def test_render_concatenates_all(self, registry):
        registry.counter("a_total", "a").inc()
        registry.gauge("b", "b").set(2)
        text = registry.render()
        assert "a_total 1" in text
        assert "b 2" in text
        assert text.endswith("\n")

    def test_label_value_escaping(self, registry):
        counter = registry.counter("x_total", "x", ("v",))
        counter.inc(v='say "hi"\nthere')
        line = [ln for ln in counter.render()
                if ln.startswith("x_total{")][0]
        assert '\\"hi\\"' in line
        assert "\\n" in line

    def test_concurrent_increments_do_not_lose_counts(self, registry):
        counter = registry.counter("x_total", "x")
        n, per_thread = 8, 1000

        def spin():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == n * per_thread
