"""Tests for the golden-model functional executor and traces."""

import pytest

from repro.isa import A, S, assemble
from repro.machine import Memory, PageFault
from repro.trace import (
    ExecutionLimitExceeded,
    FunctionalExecutor,
    prefix_state,
    reference_state,
)

COUNTDOWN = """
    A_IMM A0, 3
loop:
    A_ADDI A0, A0, -1
    BR_NONZERO A0, loop
    HALT
"""


class TestExecution:
    def test_step_returns_entries_then_none(self):
        executor = FunctionalExecutor(assemble("NOP\nHALT"))
        entry = executor.step()
        assert entry.seq == 0 and entry.pc == 0
        assert executor.step() is None
        assert executor.halted

    def test_run_counts_dynamic_instructions(self):
        executor = FunctionalExecutor(assemble(COUNTDOWN))
        trace = executor.run()
        # A_IMM + 3 x (ADDI + BR) = 7
        assert len(trace) == 7
        assert executor.regs.read(A(0)) == 0

    def test_branch_outcomes_recorded(self):
        trace = FunctionalExecutor(assemble(COUNTDOWN)).run()
        outcomes = [e.taken for e in trace if e.taken is not None]
        assert outcomes == [True, True, False]

    def test_memory_addresses_recorded(self):
        source = """
            A_IMM A1, 100
            S_IMM S1, 1.5
            STORE_S A1[2], S1
            LOAD_S S2, A1[2]
            HALT
        """
        trace = FunctionalExecutor(assemble(source)).run()
        addresses = [e.address for e in trace if e.address is not None]
        assert addresses == [102, 102]

    def test_limit_exceeded(self):
        forever = assemble("x: JMP x")
        with pytest.raises(ExecutionLimitExceeded):
            FunctionalExecutor(forever).run(max_instructions=10)

    def test_trace_dump_renders(self):
        trace = FunctionalExecutor(assemble(COUNTDOWN)).run()
        dump = trace.dump()
        assert "A_IMM" in dump and "taken" in dump


class TestPrefixState:
    def test_prefix_zero_is_initial_state(self):
        program = assemble(COUNTDOWN)
        state = prefix_state(program, 0)
        assert state.regs.read(A(0)) == 0

    def test_prefix_mid_loop(self):
        program = assemble(COUNTDOWN)
        # after 3 instructions: A_IMM, ADDI, BR -> A0 == 2
        state = prefix_state(program, 3)
        assert state.regs.read(A(0)) == 2
        assert state.executed == 3

    def test_prefix_beyond_end_stops_at_halt(self):
        program = assemble(COUNTDOWN)
        state = prefix_state(program, 1000)
        assert state.executed == 7

    def test_input_memory_not_mutated(self):
        source = """
            A_IMM A1, 100
            S_IMM S1, 1.0
            STORE_S A1[0], S1
            HALT
        """
        memory = Memory()
        state = reference_state(assemble(source), memory)
        assert memory.peek(100) == 0
        assert state.memory.peek(100) == 1.0


class TestFaultChecks:
    def test_fault_checks_disabled_by_default(self):
        memory = Memory()
        memory.inject_fault(100)
        source = "A_IMM A1, 100\nLOAD_S S1, A1[0]\nHALT"
        executor = FunctionalExecutor(assemble(source), memory)
        executor.run()  # no exception: golden model peeks

    def test_fault_checks_enabled_raises(self):
        memory = Memory()
        memory.inject_fault(100)
        source = "A_IMM A1, 100\nLOAD_S S1, A1[0]\nHALT"
        executor = FunctionalExecutor(
            assemble(source), memory, fault_checks=True
        )
        with pytest.raises(PageFault):
            executor.run()

    def test_store_fault_checks(self):
        memory = Memory()
        memory.inject_fault(200)
        source = "A_IMM A1, 200\nS_IMM S1, 1.0\nSTORE_S A1[0], S1\nHALT"
        executor = FunctionalExecutor(
            assemble(source), memory, fault_checks=True
        )
        with pytest.raises(PageFault):
            executor.run()


class TestSemanticSpotChecks:
    def test_register_moves_between_banks(self):
        source = """
            A_IMM A1, 9
            MOV B5, A1
            MOV A2, B5
            S_IMM S1, 4.5
            MOV T9, S1
            MOV S2, T9
            HALT
        """
        executor = FunctionalExecutor(assemble(source))
        executor.run()
        assert executor.regs.read(A(2)) == 9
        assert executor.regs.read(S(2)) == 4.5

    def test_load_a_coerces_to_int_width(self):
        memory = Memory()
        memory.poke(50, 3)
        source = "A_IMM A1, 50\nLOAD_A A2, A1[0]\nHALT"
        executor = FunctionalExecutor(assemble(source), memory)
        executor.run()
        assert executor.regs.read(A(2)) == 3
