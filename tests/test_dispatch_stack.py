"""Tests for the dispatch-stack engine (OoO issue without renaming)."""

import pytest

from repro.issue import (
    DispatchStackEngine,
    RSTUEngine,
    SimpleEngine,
    TomasuloEngine,
)
from repro.isa import A, S, assemble
from repro.machine import MachineConfig
from repro.trace import reference_state
from repro.workloads import all_loops

CONFIG = MachineConfig(window_size=10)


def run(source, config=CONFIG):
    program = assemble(source)
    engine = DispatchStackEngine(program, config)
    result = engine.run()
    return engine, result


class TestCorrectness:
    def test_livermore_equivalence(self):
        for workload in all_loops():
            golden = reference_state(workload.program,
                                     workload.initial_memory)
            memory = workload.make_memory()
            engine = DispatchStackEngine(workload.program, CONFIG,
                                         memory=memory)
            result = engine.run()
            assert engine.regs == golden.regs, workload.name
            assert memory == golden.memory, workload.name
            assert result.instructions == golden.executed, workload.name

    def test_war_respected(self):
        # older reader of S2 must get the old value even though the
        # younger writer is latency-1
        engine, _ = run("""
            S_IMM S1, 1.0
            S_IMM S2, 5.0
            F_ADD S3, S2, S1     ; reads S2 == 5.0
            S_IMM S2, 100.0      ; younger fast write
            HALT
        """)
        assert engine.regs.read(S(3)) == 6.0
        assert engine.regs.read(S(2)) == 100.0

    def test_waw_respected(self):
        engine, _ = run("""
            S_IMM S1, 4.0
            F_RECIP S2, S1       ; slow write of S2
            S_IMM  S2, 9.0       ; younger write must land last
            HALT
        """)
        assert engine.regs.read(S(2)) == 9.0


class TestOrderingBehaviour:
    def test_out_of_order_issue_happens(self):
        # Independent work flows around a stalled dependent chain.
        source = """
            S_IMM S1, 1.0
            F_RECIP S2, S1
            F_ADD S3, S2, S2
            A_IMM A1, 1
            A_IMM A2, 2
            A_ADD A3, A1, A2
            A_IMM A4, 4
            A_IMM A5, 5
            A_ADD A6, A4, A5
            HALT
        """
        _, stack = run(source)
        simple = SimpleEngine(assemble(source), CONFIG).run()
        assert stack.cycles < simple.cycles

    def test_renaming_beats_no_renaming_under_waw_pressure(self):
        """The point of putting [18] in the ladder: recycle one
        register hard and the dispatch stack serializes where
        Tomasulo's tags rename."""
        lines = ["S_IMM S1, 1.0"]
        for _ in range(10):
            lines.append("F_ADD S2, S1, S1")   # same dest every time
            lines.append("F_MUL S3, S2, S1")   # reader between writes
        lines.append("HALT")
        source = "\n".join(lines)
        stack = DispatchStackEngine(assemble(source), CONFIG).run()
        tomasulo = TomasuloEngine(assemble(source), CONFIG).run()
        assert tomasulo.cycles < stack.cycles

    def test_ladder_position_on_loops(self):
        """simple <= dispatch-stack <= rstu in cycles (renaming wins)."""
        total = {"simple": 0, "stack": 0, "rstu": 0}
        for workload in all_loops()[:8]:
            total["simple"] += SimpleEngine(
                workload.program, CONFIG, memory=workload.make_memory()
            ).run().cycles
            total["stack"] += DispatchStackEngine(
                workload.program, CONFIG, memory=workload.make_memory()
            ).run().cycles
            total["rstu"] += RSTUEngine(
                workload.program, CONFIG, memory=workload.make_memory()
            ).run().cycles
        assert total["stack"] < total["simple"]
        assert total["rstu"] < total["stack"]

    def test_imprecise(self):
        engine, result = run("""
            S_IMM S1, 0.0
            F_RECIP S2, S1
            A_IMM A1, 3
            HALT
        """)
        assert engine.interrupt_record is not None
        assert not engine.interrupt_record.claims_precise

    def test_memory_forwarding_works(self):
        engine, _ = run("""
            A_IMM A1, 100
            S_IMM S1, 7.0
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            HALT
        """)
        assert engine.regs.read(S(2)) == 7.0
