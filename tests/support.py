"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from repro.analysis import ENGINE_FACTORIES
from repro.machine import CRAY1_LIKE


def run_and_check(builder, workload, golden_state, config=None):
    """Run an engine on a workload and assert architectural equivalence.

    Returns the SimResult for further assertions.
    """
    memory = workload.make_memory()
    engine = builder(workload.program, config or CRAY1_LIKE, memory)
    result = engine.run()
    assert engine.interrupt_record is None, (
        f"{engine.name} trapped unexpectedly on {workload.name}: "
        f"{engine.interrupt_record.describe()}"
    )
    reg_diff = engine.regs.diff(golden_state.regs)
    assert not reg_diff, (
        f"{engine.name} register mismatch on {workload.name}: {reg_diff}"
    )
    mem_diff = memory.diff(golden_state.memory)
    assert not mem_diff, (
        f"{engine.name} memory mismatch on {workload.name}: {mem_diff}"
    )
    assert result.instructions == golden_state.executed, (
        f"{engine.name} retired {result.instructions} instructions on "
        f"{workload.name}, golden executed {golden_state.executed}"
    )
    return result


def builder_for(name):
    return ENGINE_FACTORIES[name]
