"""Tests for the multi-issue decode extension (ablation A7 support)."""

import pytest

from repro.core import RUUEngine, SpeculativeRUUEngine
from repro.isa import A, assemble
from repro.issue import RSTUEngine, SimpleEngine
from repro.machine import MachineConfig
from repro.trace import reference_state
from repro.workloads import all_loops

WIDE = MachineConfig(window_size=16, issue_width=2)


class TestCorrectness:
    @pytest.mark.parametrize("cls", [SimpleEngine, RSTUEngine, RUUEngine,
                                     SpeculativeRUUEngine])
    def test_equivalence_on_loops(self, cls):
        for workload in all_loops()[:5]:
            golden = reference_state(workload.program,
                                     workload.initial_memory)
            memory = workload.make_memory()
            engine = cls(workload.program, WIDE, memory=memory)
            result = engine.run()
            assert engine.regs == golden.regs, (cls.name, workload.name)
            assert memory == golden.memory, (cls.name, workload.name)
            assert result.instructions == golden.executed

    def test_width_zero_rejected_by_behavior(self):
        # width must be >= 1 to make progress; a zero-width config
        # simply never issues and trips the cycle limit.
        from repro.machine import SimulationError
        engine = RUUEngine(
            assemble("A_IMM A1, 1\nHALT"),
            MachineConfig(window_size=4, issue_width=0),
        )
        with pytest.raises(SimulationError):
            engine.run(max_cycles=50)


class TestThroughput:
    def test_two_wide_front_end_speeds_real_code(self):
        # With one dispatch path and one result bus, pure issue width
        # cannot raise peak throughput; paired with a second dispatch
        # path it visibly does (ablation A7's point).
        config = MachineConfig(window_size=25, issue_width=2,
                               dispatch_paths=2)
        narrow_cfg = MachineConfig(window_size=25, issue_width=1,
                                   dispatch_paths=2)
        total_wide = 0
        total_narrow = 0
        for workload in all_loops()[:6]:
            total_wide += RSTUEngine(
                workload.program, config, memory=workload.make_memory()
            ).run().cycles
            total_narrow += RSTUEngine(
                workload.program, narrow_cfg,
                memory=workload.make_memory(),
            ).run().cycles
        assert total_wide < total_narrow

    def test_wider_never_slower(self):
        for workload in all_loops()[:4]:
            narrow = RSTUEngine(
                workload.program, MachineConfig(window_size=16),
                memory=workload.make_memory(),
            ).run()
            wide = RSTUEngine(
                workload.program, WIDE, memory=workload.make_memory()
            ).run()
            assert wide.cycles <= narrow.cycles * 1.01, workload.name

    def test_branch_ends_issue_group(self):
        # branch as second instruction of a group: resolved in the same
        # cycle, but nothing after it issues that cycle.
        source = """
            A_IMM A1, 1
            JMP over
            A_IMM A2, 99
        over:
            A_IMM A3, 3
            HALT
        """
        engine = RUUEngine(assemble(source), WIDE)
        engine.run()
        assert engine.regs.read(A(2)) == 0
        assert engine.regs.read(A(3)) == 3

    def test_second_dispatch_path_worth_more_when_two_wide(self):
        workloads = all_loops()[:6]

        def cycles(width, paths):
            total = 0
            config = MachineConfig(
                window_size=25, issue_width=width, dispatch_paths=paths
            )
            for workload in workloads:
                total += RSTUEngine(
                    workload.program, config, memory=workload.make_memory()
                ).run().cycles
            return total

        gain_narrow = cycles(1, 1) / cycles(1, 2)
        gain_wide = cycles(2, 1) / cycles(2, 2)
        assert gain_wide > gain_narrow
