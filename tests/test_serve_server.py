"""End-to-end tests of the simulation service over real HTTP.

Each test talks to an in-process server (``serve_in_background``) on an
ephemeral port through the blocking client -- the full stack: asyncio
front end, admission control, coalescer, dispatcher thread, reused
self-healing worker pool, shared result cache.

The acceptance properties pinned here:

* N simultaneous identical requests simulate **exactly once**
  (coalescer + cache);
* a mixed valid/invalid batch settles per item -- bad items cannot
  poison good ones;
* a deadlocking program returns 422 with the engine's
  ``EngineDiagnostic`` payload in the error body;
* over-capacity load yields 429 + Retry-After, and honoring the hint
  succeeds;
* a served result is byte-identical to the same point run serially
  in-process.
"""

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import Future

import pytest

from repro.analysis.parallel import run_point
from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.protocol import (
    LIMITS,
    build_workload_registry,
    canonical_result_bytes,
    parse_sim_request,
    wire_to_result,
)
from repro.serve.server import ServeApp, serve_in_background
from repro.serve.service import SimService

#: Spins long enough to keep a worker busy while a burst piles up, but
#: bounded so a wedged test still finishes.
SLOW_PROGRAM = (
    "A_IMM A0, 60000\n"
    "loop:\n"
    "A_ADDI A0, A0, -1\n"
    "BR_NONZERO A0, loop\n"
    "HALT\n"
)

#: Spins forever; only the max_cycles budget stops it (DeadlockError).
HANG_PROGRAM = (
    "A_IMM A0, 1\n"
    "loop:\n"
    "A_ADDI A0, A0, 0\n"
    "BR_NONZERO A0, loop\n"
    "HALT\n"
)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    handle = serve_in_background(
        jobs=2, queue_depth=16, cache_dir=cache_dir,
        point_timeout=60.0,
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    c = ServeClient("127.0.0.1", server.port, timeout=120.0)
    c.wait_ready()
    return c


class TestSingleRun:
    def test_workload_run_matches_serial(self, client):
        payload = {"workload": "LLL3", "config": {"window_size": 8}}
        served = client.run(payload, max_attempts=8)
        request = parse_sim_request(payload, build_workload_registry())
        serial = run_point(request.point)
        assert canonical_result_bytes(served) \
            == canonical_result_bytes(serial)

    def test_program_run(self, client):
        body = client.run_raw(
            {"program": "A_IMM A0, 7\nHALT"}, max_attempts=8
        )
        assert body["ok"] is True
        result = wire_to_result(body["result"])
        # HALT is not a retired instruction; only the A_IMM counts
        assert result.instructions == 1
        assert result.cycles > 0

    def test_repeat_is_cache_hit_and_identical(self, client):
        payload = {"workload": "LLL1", "config": {"window_size": 6}}
        first = client.run_raw(payload, max_attempts=8)
        second = client.run_raw(payload, max_attempts=8)
        assert second["cache_hit"] is True
        a = canonical_result_bytes(wire_to_result(first["result"]))
        b = canonical_result_bytes(wire_to_result(second["result"]))
        assert a == b

    def test_protocol_error_is_400_with_reason(self, client):
        status, _, body = client.request_json(
            "POST", "/run", {"workload": "LLL99"}
        )
        assert status == 400
        assert body["error"]["reason"] == "unknown_workload"

    def test_bad_json_is_400(self, client):
        status, _, data = client.request("POST", "/run", None)
        # empty body -> not valid JSON
        assert status == 400
        assert json.loads(data)["error"]["reason"] == "bad_json"


class TestCoalescing:
    def test_identical_concurrent_requests_simulate_once(self, server):
        """Many simultaneous identical requests cost one simulation:
        one cache miss total; everyone gets identical bytes."""
        payload = {
            "workload": "LLL7",
            # unique point so earlier tests cannot have cached it
            "config": {"window_size": 9, "max_cycles": 5_000_123},
        }
        misses_before = server.service.runner.misses
        n = 8
        outputs = [None] * n
        barrier = threading.Barrier(n)

        def fire(i):
            c = ServeClient("127.0.0.1", server.port, timeout=120.0)
            barrier.wait()
            outputs[i] = c.run_raw(payload, max_attempts=8)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(body["ok"] for body in outputs)
        blobs = {
            canonical_result_bytes(wire_to_result(body["result"]))
            for body in outputs
        }
        assert len(blobs) == 1
        assert server.service.runner.misses == misses_before + 1

    def test_duplicates_within_a_batch_coalesce(self, client, server):
        coalesced_before = server.service.coalescer.coalesced
        item = {
            "workload": "LLL9",
            "config": {"window_size": 7, "max_cycles": 5_000_321},
        }
        entries = client.run_batch([item, dict(item), dict(item)],
                                   max_attempts=8)
        assert [e["ok"] for e in entries] == [True, True, True]
        blobs = {
            canonical_result_bytes(wire_to_result(e["result"]))
            for e in entries
        }
        assert len(blobs) == 1
        assert server.service.coalescer.coalesced \
            == coalesced_before + 2


class TestBatch:
    def test_mixed_batch_settles_per_item(self, client):
        entries = client.run_batch(
            [
                {"workload": "LLL2", "config": {"window_size": 8}},
                {"workload": "LLL99"},
                {"program": "BOGUS ###"},
                {"program": "A_IMM A0, 1\nHALT"},
            ],
            max_attempts=8,
        )
        assert [e["ok"] for e in entries] == [True, False, False, True]
        assert entries[1]["error"]["reason"] == "unknown_workload"
        assert entries[2]["error"]["reason"] == "bad_program"
        # the good items really ran
        assert wire_to_result(entries[3]["result"]).instructions == 1

    def test_structural_batch_errors_are_400(self, client):
        status, _, body = client.request_json(
            "POST", "/batch", {"requests": []}
        )
        assert status == 400
        assert body["error"]["reason"] == "empty_batch"

    def test_batch_size_limit_enforced(self, client):
        requests = [{"workload": "LLL1"}] \
            * (LIMITS["max_batch_size"] + 1)
        status, _, body = client.request_json(
            "POST", "/batch", {"requests": requests}
        )
        assert status == 400
        assert body["error"]["reason"] == "batch_too_large"


class TestDeadlockDiagnostic:
    def test_hanging_program_returns_422_with_diagnostic(self, client):
        status, _, body = client.request_json(
            "POST", "/run",
            {"program": HANG_PROGRAM,
             "config": {"max_cycles": 2000}},
        )
        assert status == 422
        error = body["error"]
        assert error["reason"] == "simulation_failed"
        assert "DeadlockError" in error["message"]
        diagnostic = error["diagnostic"]
        assert diagnostic["cycle"] > 0
        assert "engine" in diagnostic

    def test_deadlock_in_batch_does_not_poison_others(self, client):
        entries = client.run_batch(
            [
                {"program": HANG_PROGRAM,
                 "config": {"max_cycles": 2000}},
                {"workload": "LLL4", "config": {"window_size": 8}},
            ],
            max_attempts=8,
        )
        assert entries[0]["ok"] is False
        assert "diagnostic" in entries[0]["error"]
        assert entries[1]["ok"] is True


class TestObservability:
    def test_healthz_reports_version_and_queue(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"]
        assert health["jobs"] == 2
        assert health["capacity"] == 16
        assert "LLL3" in health["workloads"]

    def test_metrics_exposition(self, client):
        client.run_raw({"workload": "LLL1"}, max_attempts=8)
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'endpoint="/run"' in text
        assert "# TYPE repro_serve_point_seconds histogram" in text
        assert "repro_serve_point_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_fleet_events" in text

    def test_unknown_path_is_404(self, client):
        status, _, body = client.request_json("GET", "/nope")
        assert status == 404
        assert body["error"]["reason"] == "not_found"

    def test_wrong_method_is_405(self, client):
        status, headers, _ = client.request_json("GET", "/run")
        assert status == 405
        assert headers["allow"] == "POST"

    def test_oversized_body_is_400(self, client):
        padding = "x" * (LIMITS["max_body_bytes"] + 10)
        status, _, body = client.request_json(
            "POST", "/run", {"pad": padding}
        )
        assert status == 400
        assert body["error"]["reason"] == "body_too_large"


class TestBackpressure:
    def test_429_with_retry_after_then_success(self, tmp_path):
        """A one-worker, depth-2 server under a unique-point salvo must
        refuse some requests with 429 + Retry-After; clients honoring
        the hint all finish."""
        handle = serve_in_background(
            jobs=1, queue_depth=2, cache_dir=str(tmp_path),
            point_timeout=60.0,
        )
        try:
            ServeClient("127.0.0.1", handle.port).wait_ready()
            n = 8
            rejected = []
            succeeded = []
            lock = threading.Lock()
            barrier = threading.Barrier(n)

            def fire(i):
                c = ServeClient("127.0.0.1", handle.port,
                                timeout=120.0)
                payload = {
                    "program": SLOW_PROGRAM,
                    # unique max_cycles -> unique cache key: the
                    # coalescer cannot absorb the salvo
                    "config": {"max_cycles": 1_000_000 + i},
                }
                barrier.wait()
                try:
                    c.run_raw(payload, max_attempts=1)
                except Backpressure as busy:
                    with lock:
                        rejected.append(busy.retry_after)
                    body = c.run_raw(payload, max_attempts=60,
                                     backoff_cap=1.0)
                    with lock:
                        succeeded.append(body["ok"])
                else:
                    with lock:
                        succeeded.append(True)

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert rejected, "no request saw backpressure"
            assert all(hint >= 1 for hint in rejected)
            assert succeeded.count(True) == n
            assert handle.service.admission.rejected >= len(rejected)
        finally:
            handle.stop()

    def test_drained_server_refuses_with_503(self, tmp_path):
        handle = serve_in_background(
            jobs=1, queue_depth=4, cache_dir=str(tmp_path),
        )
        client = ServeClient("127.0.0.1", handle.port)
        client.wait_ready()
        assert handle.service.drain(timeout=30.0)
        status, _, body = client.request_json(
            "POST", "/run", {"workload": "LLL1"}
        )
        assert status == 503
        assert body["error"]["reason"] == "draining"
        assert client.healthz()["status"] == "draining"
        handle.stop()


class TestAbandonedWaiters:
    """A waiter that times out or disappears must cost the service
    nothing: the dispatcher survives, capacity is released, and a
    coalesced leader future is never cancelled out from under the
    other followers (REVIEW: dispatcher death via InvalidStateError)."""

    def test_cancelled_future_does_not_kill_dispatcher(self, tmp_path):
        service = SimService(jobs=1, queue_depth=4,
                             cache_dir=str(tmp_path),
                             point_timeout=60.0)
        service.start()
        try:
            abandoned = parse_sim_request(
                {"program": "A_IMM A0, 11\nHALT"}, service.workloads
            )
            future, _ = service.submit(abandoned)
            # Simulate the waiter's deadline expiring: without the
            # shield in _await_outcome this is exactly what wait_for
            # did to the pending concurrent future.
            future.cancel()
            followup = parse_sim_request(
                {"program": "A_IMM A0, 12\nHALT"}, service.workloads
            )
            future2, _ = service.submit(followup)
            outcome = future2.result(timeout=120)
            assert outcome.ok
            # Capacity for both points drained back out: no leak.
            deadline = time.monotonic() + 60
            while service.admission.pending \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.admission.pending == 0
        finally:
            service.drain(timeout=60.0)

    def test_expired_deadline_leaves_shared_future_uncancelled(
            self, tmp_path):
        service = SimService(jobs=1, queue_depth=2,
                             cache_dir=str(tmp_path))
        app = ServeApp(service, request_timeout=0.05)
        future = Future()

        async def scenario():
            with pytest.raises(asyncio.TimeoutError):
                await app._await_outcome(future)

        asyncio.run(scenario())
        assert not future.cancelled()
        future.set_result("late settle must not raise")
        service.runner.close()


class TestIsolation:
    def test_jobs1_still_runs_in_worker_pool(self, tmp_path):
        """--jobs 1 must not execute inline on the dispatcher thread:
        the service always keeps a (1-worker) pool so isolation and
        timeout-kill hold."""
        service = SimService(jobs=1, queue_depth=4,
                             cache_dir=str(tmp_path),
                             point_timeout=60.0)
        assert service.runner.reuse_pool is True
        service.start()
        try:
            request = parse_sim_request(
                {"program": "A_IMM A0, 3\nHALT"}, service.workloads
            )
            future, _ = service.submit(request)
            outcome = future.result(timeout=120)
            assert outcome.ok
            # The pooled path built an executor; the inline path never
            # touches this counter.
            assert service.runner.fleet.pools >= 1
        finally:
            service.drain(timeout=60.0)


class TestRequestHeadLimits:
    def test_unbounded_headers_rejected(self, server):
        with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30) as sock:
            head = b"GET /healthz HTTP/1.1\r\n"
            # One header past the count cap, all of it sent before we
            # read, so the server has no unread bytes left (clean FIN,
            # no RST racing the response).
            head += b"".join(
                b"X-%d: a\r\n" % i for i in range(101)
            )
            sock.sendall(head)
            sock.settimeout(30)
            data = sock.recv(65536)
        assert b" 400 " in data.split(b"\r\n", 1)[0]
        assert b"headers_too_large" in data

    def test_stalled_header_client_disconnected(self, tmp_path):
        handle = serve_in_background(
            jobs=1, queue_depth=2, cache_dir=str(tmp_path),
            idle_timeout=0.5,
        )
        try:
            ServeClient("127.0.0.1", handle.port).wait_ready()
            with socket.create_connection(
                    ("127.0.0.1", handle.port), timeout=30) as sock:
                # Request line, then stall mid-headers (slowloris).
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")
                sock.settimeout(30)
                assert sock.recv(1024) == b""
        finally:
            handle.stop()


class TestBatchDeadline:
    def test_batch_shares_one_request_deadline(self, tmp_path):
        """A stalled batch settles in ~one request_timeout, not one
        per item."""
        handle = serve_in_background(
            jobs=1, queue_depth=8, cache_dir=str(tmp_path),
            point_timeout=120.0, request_timeout=1.0,
        )
        try:
            client = ServeClient("127.0.0.1", handle.port,
                                 timeout=60.0)
            client.wait_ready()
            # Occupy the single worker with a ~4s point so the batch
            # behind it cannot settle before its deadline.
            blocker = {
                "program": HANG_PROGRAM,
                "config": {"max_cycles": 600_000},
            }
            blocker_thread = threading.Thread(
                target=lambda: client.request_json(
                    "POST", "/run", blocker
                ),
            )
            blocker_thread.start()
            deadline = time.monotonic() + 30
            while handle.service.health()["in_flight"] == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            started = time.perf_counter()
            status, _, body = client.request_json(
                "POST", "/batch",
                {"requests": [
                    {"program": "A_IMM A0, 21\nHALT"},
                    {"program": "A_IMM A0, 22\nHALT"},
                    {"program": "A_IMM A0, 23\nHALT"},
                ]},
            )
            elapsed = time.perf_counter() - started
            assert status == 200
            reasons = [
                entry["error"]["reason"] for entry in body["results"]
            ]
            assert reasons == ["request_timeout"] * 3
            # Sequential per-item deadlines would take >= 3s here.
            assert elapsed < 2.5
            blocker_thread.join(timeout=60)
        finally:
            handle.stop()


class TestBatchOverCapacity:
    def test_batch_larger_than_capacity_is_413(self, tmp_path):
        handle = serve_in_background(
            jobs=1, queue_depth=2, cache_dir=str(tmp_path),
        )
        try:
            client = ServeClient("127.0.0.1", handle.port)
            client.wait_ready()
            requests = [
                {"program": f"A_IMM A0, {30 + i}\nHALT"}
                for i in range(4)
            ]
            status, _, body = client.request_json(
                "POST", "/batch", {"requests": requests}
            )
            assert status == 413
            error = body["error"]
            assert error["reason"] == "batch_exceeds_capacity"
            assert error["fresh_points"] == 4
            assert error["capacity"] == 2
            # A batch that fits (after coalescing duplicates) is fine.
            entries = client.run_batch(
                [requests[0], dict(requests[0])], max_attempts=8
            )
            assert [entry["ok"] for entry in entries] == [True, True]
        finally:
            handle.stop()


class TestClientErrors:
    def test_serve_error_carries_detail(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.run({"workload": "LLL99"})
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "unknown_workload"


class TestTraceOverTheWire:
    def test_traced_run_returns_attribution(self, client):
        body = client.run_raw(
            {"workload": "LLL1", "trace": True,
             "config": {"window_size": 8}},
            max_attempts=8,
        )
        assert body["ok"] is True
        result = wire_to_result(body["result"])
        attribution = result.extra["attribution"]
        assert sum(attribution["buckets"].values()) == result.cycles
        assert attribution["buckets"].get("unaccounted", 0) == 0
        assert attribution["stall_events"] == {
            reason: count for reason, count in result.stalls.items()
        }

    def test_untraced_run_has_no_attribution(self, client):
        result = client.run(
            {"workload": "LLL1", "config": {"window_size": 8}},
            max_attempts=8,
        )
        assert "attribution" not in result.extra

    def test_oversized_trace_budget_is_400(self, client):
        status, _, body = client.request_json(
            "POST", "/run",
            {"workload": "LLL1", "trace": True,
             "config": {"max_cycles": 5_000_000}},
        )
        assert status == 400
        assert body["error"]["reason"] == "trace_too_large"
