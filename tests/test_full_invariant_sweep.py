"""The heaviest internal-consistency sweep: per-cycle invariant
checking across all 14 Livermore loops, every RUU bypass mode, and the
speculative engine -- several hundred thousand checked cycles."""

import pytest

from repro.core import (
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
)
from repro.machine import MachineConfig
from repro.machine.invariants import run_checked
from repro.trace import reference_state


@pytest.mark.parametrize("bypass", list(BypassMode))
def test_all_loops_fully_checked(bypass, livermore_loops, golden):
    config = MachineConfig(window_size=12)
    total_cycles = 0
    for workload in livermore_loops:
        memory = workload.make_memory()
        engine = RUUEngine(workload.program, config, memory=memory,
                           bypass=bypass)
        result, checker = run_checked(engine)
        total_cycles += checker.cycles_checked
        reference = golden[workload.name]
        assert engine.regs == reference.regs, workload.name
        assert memory == reference.memory, workload.name
    assert total_cycles > 10_000


def test_all_loops_checked_speculatively(livermore_loops, golden):
    config = MachineConfig(window_size=12)
    for workload in livermore_loops:
        memory = workload.make_memory()
        engine = SpeculativeRUUEngine(
            workload.program, config, memory=memory,
            predictor=StaticBTFNPredictor(),
        )
        result, checker = run_checked(engine)
        reference = golden[workload.name]
        assert engine.regs == reference.regs, workload.name
        assert memory == reference.memory, workload.name
        assert checker.cycles_checked == result.cycles


def test_checked_under_extreme_pressure(livermore_loops):
    """Tiny everything: 2-entry window, 1-bit counters, 1 load register
    -- the invariants must hold even in full structural starvation."""
    config = MachineConfig(
        window_size=2, counter_bits=1, n_load_registers=1
    )
    for workload in livermore_loops[:5]:
        memory = workload.make_memory()
        engine = RUUEngine(workload.program, config, memory=memory)
        run_checked(engine)
        reference = reference_state(workload.program,
                                    workload.initial_memory)
        assert engine.regs == reference.regs, workload.name
