"""The heaviest internal-consistency sweep: per-cycle invariant
checking across all 14 Livermore loops, every RUU bypass mode, and the
speculative engine -- several hundred thousand checked cycles."""

import pytest

from repro.core import (
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
)
from repro.machine import MachineConfig
from repro.machine.invariants import run_checked
from repro.trace import reference_state


@pytest.mark.parametrize("bypass", list(BypassMode))
def test_all_loops_fully_checked(bypass, livermore_loops, golden):
    config = MachineConfig(window_size=12)
    total_cycles = 0
    for workload in livermore_loops:
        memory = workload.make_memory()
        engine = RUUEngine(workload.program, config, memory=memory,
                           bypass=bypass)
        result, checker = run_checked(engine)
        total_cycles += checker.cycles_checked
        reference = golden[workload.name]
        assert engine.regs == reference.regs, workload.name
        assert memory == reference.memory, workload.name
    assert total_cycles > 10_000


def test_all_loops_checked_speculatively(livermore_loops, golden):
    config = MachineConfig(window_size=12)
    for workload in livermore_loops:
        memory = workload.make_memory()
        engine = SpeculativeRUUEngine(
            workload.program, config, memory=memory,
            predictor=StaticBTFNPredictor(),
        )
        result, checker = run_checked(engine)
        reference = golden[workload.name]
        assert engine.regs == reference.regs, workload.name
        assert memory == reference.memory, workload.name
        assert checker.cycles_checked == result.cycles


def test_checked_under_extreme_pressure(livermore_loops):
    """Tiny everything: 2-entry window, 1-bit counters, 1 load register
    -- the invariants must hold even in full structural starvation."""
    config = MachineConfig(
        window_size=2, counter_bits=1, n_load_registers=1
    )
    for workload in livermore_loops[:5]:
        memory = workload.make_memory()
        engine = RUUEngine(workload.program, config, memory=memory)
        run_checked(engine)
        reference = reference_state(workload.program,
                                    workload.initial_memory)
        assert engine.regs == reference.regs, workload.name


class TestFullCycleAttribution:
    """The observability oracle: every engine on every Livermore loop
    must account for *every* cycle (no 'unaccounted' bucket) and the
    recorded stall events must reconcile exactly with
    ``SimResult.stalls``."""

    def test_every_engine_every_loop_fully_attributed(
            self, livermore_loops):
        from repro.analysis import ENGINE_FACTORIES
        from repro.obs import TraceRecorder, attribute_cycles
        from repro.obs.events import UNACCOUNTED

        config = MachineConfig(window_size=8)
        runs = 0
        engines = {
            name: builder
            for name, builder in ENGINE_FACTORIES.items()
            if not name.startswith("chaos-")
        }
        for name, builder in engines.items():
            for workload in livermore_loops:
                engine = builder(
                    workload.program, config, workload.make_memory()
                )
                recorder = TraceRecorder(detail=False)
                engine.recorder = recorder
                result = engine.run()
                # attribute_cycles asserts the buckets sum to
                # result.cycles and that stall events reconcile.
                attribution = attribute_cycles(result, recorder)
                assert sum(attribution.buckets.values()) \
                    == result.cycles, (name, workload.name)
                assert attribution.buckets.get(UNACCOUNTED, 0) == 0, (
                    name, workload.name, attribution.buckets,
                )
                assert attribution.stall_events == dict(result.stalls), (
                    name, workload.name,
                )
                runs += 1
        assert runs == len(engines) * len(livermore_loops)
        assert len(engines) >= 14

    def test_attribution_survives_structural_starvation(
            self, livermore_loops):
        """Tiny window + 1-bit counters: the stall mix shifts hard
        toward structural causes but every cycle stays classified."""
        from repro.core import RUUEngine
        from repro.obs import TraceRecorder, attribute_cycles

        config = MachineConfig(
            window_size=2, counter_bits=1, n_load_registers=1
        )
        for workload in livermore_loops[:3]:
            engine = RUUEngine(
                workload.program, config, memory=workload.make_memory()
            )
            recorder = TraceRecorder(detail=False)
            engine.recorder = recorder
            result = engine.run()
            attribution = attribute_cycles(result, recorder)
            assert attribution.unaccounted == 0, workload.name
