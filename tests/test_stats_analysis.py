"""Tests for SimResult arithmetic, sweeps, tables and shape metrics."""

import math

import pytest

from repro.analysis import (
    ENGINE_FACTORIES,
    format_comparison,
    format_sweep_table,
    format_table1,
    monotonic_fraction,
    normalized_curve,
    ordering_holds,
    paper_data,
    per_loop_baseline,
    run_suite,
    saturation_size,
    shape_report,
    spearman,
    sweep_sizes,
)
from repro.machine import MachineConfig, SimResult, aggregate, speedup
from repro.workloads import dependency_chain, independent_streams


class TestSimResult:
    def test_issue_rate(self):
        result = SimResult("e", "w", cycles=200, instructions=100)
        assert result.issue_rate == 0.5

    def test_issue_rate_zero_cycles(self):
        assert SimResult("e", "w", 0, 0).issue_rate == 0.0

    def test_describe(self):
        text = SimResult("ruu", "LLL1", 100, 50).describe()
        assert "ruu" in text and "0.500" in text

    def test_speedup(self):
        base = SimResult("simple", "w", cycles=300, instructions=100)
        fast = SimResult("ruu", "w", cycles=150, instructions=100)
        assert speedup(base, fast) == 2.0

    def test_speedup_rejects_mismatched_workloads(self):
        with pytest.raises(ValueError):
            speedup(SimResult("a", "w1", 1, 1), SimResult("b", "w2", 1, 1))

    def test_aggregate_totals_not_mean_of_rates(self):
        # Paper: total instructions / total cycles.
        a = SimResult("e", "w1", cycles=100, instructions=100)  # rate 1.0
        b = SimResult("e", "w2", cycles=300, instructions=30)   # rate 0.1
        agg = aggregate([a, b])
        assert agg.issue_rate == pytest.approx(130 / 400)

    def test_aggregate_rejects_mixed_engines(self):
        with pytest.raises(ValueError):
            aggregate([SimResult("a", "w", 1, 1), SimResult("b", "w", 1, 1)])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestShapeMetrics:
    def test_monotonic_fraction(self):
        assert monotonic_fraction({1: 1.0, 2: 2.0, 3: 3.0}) == 1.0
        assert monotonic_fraction({1: 3.0, 2: 2.0, 3: 1.0}) == 0.0
        assert monotonic_fraction({1: 1.0, 2: 0.995, 3: 2.0}) == 1.0

    def test_saturation_size(self):
        curve = {3: 1.0, 10: 1.72, 20: 1.79, 30: 1.8}
        assert saturation_size(curve, threshold=0.95) == 10
        assert saturation_size(curve, threshold=0.99) == 20

    def test_spearman_perfect(self):
        a = {1: 1.0, 2: 2.0, 3: 3.0}
        b = {1: 10.0, 2: 20.0, 3: 30.0}
        assert spearman(a, b) == pytest.approx(1.0)

    def test_spearman_inverted(self):
        a = {1: 1.0, 2: 2.0, 3: 3.0}
        b = {1: 3.0, 2: 2.0, 3: 1.0}
        assert spearman(a, b) == pytest.approx(-1.0)

    def test_spearman_needs_overlap(self):
        with pytest.raises(ValueError):
            spearman({1: 1.0}, {2: 2.0})

    def test_normalized_curve(self):
        curve = normalized_curve({1: 2.0, 2: 4.0})
        assert curve == {1: 0.5, 2: 1.0}

    def test_ordering_holds(self):
        curves = {
            "fast": {10: 2.0},
            "mid": {10: 1.5},
            "slow": {10: 1.0},
        }
        assert ordering_holds(curves, ["fast", "mid", "slow"], at_size=10)
        assert not ordering_holds(curves, ["slow", "fast", "mid"],
                                  at_size=10, tolerance=0.0)

    def test_shape_report_keys(self):
        report = shape_report({1: 1.0, 2: 2.0}, {1: 1.1, 2: 2.2}, "x")
        assert set(report) >= {
            "spearman", "monotonic_fraction", "saturation_measured",
        }


class TestPaperData:
    def test_table1_total_consistent(self):
        instructions = sum(v[0] for v in paper_data.TABLE1_BASELINE.values())
        cycles = sum(v[1] for v in paper_data.TABLE1_BASELINE.values())
        assert instructions == paper_data.TABLE1_TOTAL[0]
        assert cycles == paper_data.TABLE1_TOTAL[1]
        assert instructions / cycles == pytest.approx(
            paper_data.TABLE1_TOTAL[2], abs=5e-4
        )

    def test_speedup_and_rate_consistent_within_tables(self):
        # speedup / issue-rate should be a constant per table (both are
        # normalized by the same baseline cycles).
        for table in (
            paper_data.TABLE2_RSTU,
            paper_data.TABLE4_RUU_BYPASS,
            paper_data.TABLE5_RUU_NOBYPASS,
            paper_data.TABLE6_RUU_LIMITED,
        ):
            ratios = [spd / rate for spd, rate in table.values()]
            assert max(ratios) - min(ratios) < 0.02

    def test_paper_orderings(self):
        # At size 30, the paper's own ordering.
        assert (
            paper_data.TABLE3_RSTU_2PATH[30][0]
            > paper_data.TABLE2_RSTU[30][0]
        )
        assert (
            paper_data.TABLE4_RUU_BYPASS[30][0]
            > paper_data.TABLE6_RUU_LIMITED[30][0]
            > paper_data.TABLE5_RUU_NOBYPASS[30][0]
        )


class TestSweepHarness:
    @pytest.fixture(scope="class")
    def tiny_suite(self):
        return [dependency_chain(80), independent_streams(40)]

    def test_run_suite_aggregates(self, tiny_suite):
        result = run_suite(ENGINE_FACTORIES["simple"], tiny_suite)
        assert result.instructions > 0
        assert "+" in result.workload

    def test_sweep_produces_rows(self, tiny_suite):
        sweep = sweep_sizes("ruu-bypass", [3, 8], workloads=tiny_suite)
        assert [row.size for row in sweep.rows] == [3, 8]
        assert sweep.rows[1].speedup >= sweep.rows[0].speedup - 0.01

    def test_sweep_config_overrides(self, tiny_suite):
        one = sweep_sizes("rstu", [6], workloads=tiny_suite)
        two = sweep_sizes("rstu", [6], workloads=tiny_suite,
                          dispatch_paths=2)
        assert two.rows[0].cycles <= one.rows[0].cycles

    def test_shared_baseline_reused(self, tiny_suite):
        base = run_suite(ENGINE_FACTORIES["simple"], tiny_suite)
        sweep = sweep_sizes("rstu", [4], workloads=tiny_suite, baseline=base)
        assert sweep.baseline is base

    def test_per_loop_baseline(self, tiny_suite):
        results = per_loop_baseline(tiny_suite)
        assert [r.workload for r in results] == ["chain", "streams"]

    def test_every_factory_runs(self, tiny_suite):
        config = MachineConfig(window_size=6)
        for name, builder in ENGINE_FACTORIES.items():
            result = run_suite(builder, tiny_suite, config)
            assert result.instructions > 0, name


class TestTables:
    def test_format_table1(self, ):
        results = [
            SimResult("simple", "LLL1", cycles=100, instructions=42),
            SimResult("simple", "LLL2", cycles=200, instructions=84),
        ]
        text = format_table1(results, paper_data.TABLE1_BASELINE)
        assert "LLL1" in text and "Total" in text and "Paper" in text

    def test_format_sweep_table(self):
        from repro.analysis import Sweep, SweepRow
        sweep = Sweep(
            engine="rstu",
            baseline=SimResult("simple", "w", 100, 50),
            rows=[SweepRow(3, 1.0, 0.4, 100), SweepRow(10, 1.5, 0.6, 66)],
        )
        text = format_sweep_table(sweep, paper_data.TABLE2_RSTU, "Table 2")
        assert "Table 2" in text
        assert "0.965" in text  # paper column for size 3

    def test_format_comparison(self):
        text = format_comparison(
            {"a": {3: 1.0, 10: 2.0}, "b": {3: 0.9, 10: 1.8}},
            sizes=[3, 10],
        )
        assert "a" in text and "10" in text

    def test_format_table1_without_paper_columns(self):
        results = [SimResult("simple", "LLL1", cycles=100, instructions=42)]
        text = format_table1(results)
        assert "Paper" not in text
        assert "LLL1" in text and "Total" in text

    def test_format_sweep_table_without_paper(self):
        from repro.analysis import Sweep, SweepRow
        sweep = Sweep(
            engine="rstu",
            baseline=SimResult("simple", "w", 100, 50),
            rows=[SweepRow(3, 1.0, 0.4, 100)],
        )
        text = format_sweep_table(sweep)
        assert "Paper" not in text
        assert "1.000" in text

    def test_format_comparison_missing_size_is_nan(self):
        text = format_comparison(
            {"a": {3: 1.0}, "b": {10: 2.0}}, sizes=[3, 10]
        )
        assert "nan" in text
