"""Coverage for small public-surface pieces not exercised elsewhere."""

import pytest

from repro.isa import ArithmeticFault, assemble
from repro.machine import (
    CRAY1_LIKE,
    InterruptRecord,
    MachineConfig,
    PageFault,
    SimResult,
    config_for_window,
)
from repro.workloads import Workload, memory_from_arrays


class TestConfigHelpers:
    def test_config_for_window(self):
        config = config_for_window(25)
        assert config.window_size == 25
        assert config.latencies == CRAY1_LIKE.latencies

    def test_config_for_window_with_base_and_overrides(self):
        base = MachineConfig(n_load_registers=2)
        config = config_for_window(7, base, dispatch_paths=2)
        assert config.window_size == 7
        assert config.n_load_registers == 2
        assert config.dispatch_paths == 2

    def test_cray1_like_is_shared_default(self):
        assert CRAY1_LIKE.window_size == MachineConfig().window_size


class TestInterruptRecord:
    def test_describe_precise(self):
        record = InterruptRecord(
            cause=PageFault(100, is_store=False),
            seq=5, pc=2, cycle=40, claims_precise=True,
        )
        text = record.describe()
        assert "precise" in text and "100" in text and "#5" in text

    def test_describe_imprecise(self):
        record = InterruptRecord(
            cause=ArithmeticFault("reciprocal of zero"),
            seq=1, pc=0, cycle=7, claims_precise=False,
        )
        assert "IMPRECISE" in record.describe()


class TestWorkloadValidation:
    def test_validate_reports_location(self):
        import numpy as np
        program = assemble("HALT")
        workload = Workload(
            name="w",
            program=program,
            initial_memory=memory_from_arrays({10: [1.0, 2.0]}),
            expected_outputs={"out": (10, np.array([1.0, 5.0]))},
        )
        failures = workload.validate(workload.make_memory())
        assert len(failures) == 1
        assert "first at +1" in failures[0]

    def test_validate_passes_matching(self):
        import numpy as np
        program = assemble("HALT")
        workload = Workload(
            name="w",
            program=program,
            initial_memory=memory_from_arrays({10: [1.0, 2.0]}),
            expected_outputs={"out": (10, np.array([1.0, 2.0]))},
        )
        assert workload.validate(workload.make_memory()) == []

    def test_memory_from_arrays_handles_numpy_scalars(self):
        import numpy as np
        memory = memory_from_arrays(
            {0: np.array([1.5, 2.5]), 10: np.array([3, 4])}
        )
        assert memory.peek(0) == 1.5
        assert isinstance(memory.peek(10), int)


class TestSimResultDescribe:
    def test_describe_contains_fields(self):
        result = SimResult("rstu", "LLL9", cycles=1000, instructions=400)
        text = result.describe()
        assert "rstu" in text and "LLL9" in text and "0.400" in text


class TestEngineMisc:
    def test_continue_without_interrupt_raises(self):
        from repro.core import RUUEngine
        from repro.machine import SimulationError
        engine = RUUEngine(assemble("HALT"), MachineConfig())
        engine.run()
        with pytest.raises(SimulationError):
            engine.continue_run()

    def test_result_extra_has_fu_utilization(self):
        from repro.issue import SimpleEngine
        result = SimpleEngine(
            assemble("A_IMM A1, 1\nHALT"), MachineConfig()
        ).run()
        assert result.extra["fu_utilization"] == {"transmit": 1}

    def test_zero_instruction_program(self):
        from repro.core import RUUEngine
        result = RUUEngine(assemble(""), MachineConfig()).run()
        assert result.instructions == 0
        assert result.cycles <= 2

    def test_engine_done_state(self):
        from repro.issue import SimpleEngine
        engine = SimpleEngine(assemble("NOP\nHALT"), MachineConfig())
        assert not engine.done()
        engine.run()
        assert engine.done()
