"""Workload-level tests: kernels implement their mathematics, data is
deterministic, and the dynamic instruction mix is sensible."""

import pytest

from repro.isa import FUClass
from repro.trace import FunctionalExecutor
from repro.workloads import LIVERMORE_FACTORIES, all_loops
from repro.workloads.livermore import lll2, lll4
from repro.workloads.synthetic import ALL_SYNTHETIC


@pytest.mark.parametrize("number", sorted(LIVERMORE_FACTORIES))
def test_livermore_kernel_matches_reference(number):
    workload = LIVERMORE_FACTORIES[number]()
    memory = workload.make_memory()
    FunctionalExecutor(workload.program, memory).run()
    failures = workload.validate(memory)
    assert not failures, failures


@pytest.mark.parametrize("factory", ALL_SYNTHETIC)
def test_synthetic_kernel_matches_reference(factory):
    workload = factory()
    memory = workload.make_memory()
    FunctionalExecutor(workload.program, memory).run()
    failures = workload.validate(memory)
    assert not failures, failures


def test_validation_detects_corruption():
    workload = LIVERMORE_FACTORIES[1]()
    memory = workload.make_memory()
    FunctionalExecutor(workload.program, memory).run()
    base, expected = workload.expected_outputs["x"]
    memory.poke(base + 3, 123456.0)
    assert workload.validate(memory)


def test_data_is_deterministic():
    a = LIVERMORE_FACTORIES[7]()
    b = LIVERMORE_FACTORIES[7]()
    assert a.initial_memory == b.initial_memory


def test_make_memory_is_fresh():
    workload = LIVERMORE_FACTORIES[1]()
    m1 = workload.make_memory()
    m1.poke(0, 99)
    assert workload.make_memory().peek(0) == 0


def test_loops_have_distinct_names():
    names = [wl.name for wl in all_loops()]
    assert len(set(names)) == 14


def test_sizes_scale():
    small = lll2(n=32)
    large = lll2(n=64)
    small_count = FunctionalExecutor(
        small.program, small.make_memory()
    ).run()
    large_count = FunctionalExecutor(
        large.program, large.make_memory()
    ).run()
    assert len(large_count) > len(small_count)


def test_lll2_requires_power_of_two():
    with pytest.raises(ValueError):
        lll2(n=48)


class TestInstructionMix:
    @pytest.fixture(scope="class")
    def traces(self):
        traces = {}
        for workload in all_loops():
            executor = FunctionalExecutor(
                workload.program, workload.make_memory()
            )
            traces[workload.name] = executor.run()
        return traces

    def test_every_loop_has_memory_traffic(self, traces):
        for name, trace in traces.items():
            assert trace.memory_count() > 0, name

    def test_every_loop_has_branches(self, traces):
        for name, trace in traces.items():
            assert trace.branch_count() > 0, name

    def test_float_loops_use_float_units(self, traces):
        for name in ("LLL1", "LLL3", "LLL5", "LLL7"):
            mix = traces[name].fu_mix()
            assert (
                mix.get(FUClass.FLOAT_ADD, 0)
                + mix.get(FUClass.FLOAT_MUL, 0)
            ) > 0, name

    def test_lll13_uses_address_multiply(self, traces):
        assert traces["LLL13"].fu_mix().get(FUClass.ADDR_MUL, 0) > 0

    def test_branches_mostly_taken_in_loops(self, traces):
        trace = traces["LLL3"]
        assert trace.taken_count() > trace.branch_count() * 0.8

    def test_total_size_reasonable(self, traces):
        total = sum(len(trace) for trace in traces.values())
        assert 15_000 < total < 60_000

    def test_mix_report_renders(self, traces):
        report = traces["LLL1"].mix_report()
        assert "LLL1" in report and "memory" in report
