"""Per-loop structural and behavioural assertions for the Livermore
kernels -- the properties that make each loop a *meaningful* member of
the benchmark suite (serial vs parallel, B/T usage, aliasing, ...)."""

import pytest

from repro.analysis import ENGINE_FACTORIES, dataflow_limit
from repro.isa import FUClass, Opcode, RegBank
from repro.machine import MachineConfig
from repro.trace import FunctionalExecutor
from repro.workloads import LIVERMORE_FACTORIES


@pytest.fixture(scope="module")
def traces():
    out = {}
    for number, factory in LIVERMORE_FACTORIES.items():
        workload = factory()
        executor = FunctionalExecutor(workload.program,
                                      workload.make_memory())
        out[number] = (workload, executor.run())
    return out


def static_opcodes(workload):
    return {inst.opcode for inst in workload.program}


def static_banks(workload):
    banks = set()
    for inst in workload.program:
        for reg in inst.sources:
            banks.add(reg.bank)
        if inst.dest is not None:
            banks.add(inst.dest.bank)
    return banks


class TestStructure:
    def test_lll1_is_multiply_add(self, traces):
        workload, trace = traces[1]
        ops = static_opcodes(workload)
        assert Opcode.F_MUL in ops and Opcode.F_ADD in ops
        assert Opcode.MOV in ops  # T-file constant staging

    def test_lll2_has_nested_control(self, traces):
        workload, _ = traces[2]
        ops = static_opcodes(workload)
        assert Opcode.JMP in ops           # outer loop back-edge
        assert Opcode.S_SHR in ops         # the ii //= 2 halving

    def test_lll4_uses_b_registers(self, traces):
        workload, _ = traces[4]
        assert RegBank.B in static_banks(workload)

    def test_lll8_and_9_stage_constants_in_t(self, traces):
        for number in (8, 9):
            workload, _ = traces[number]
            assert RegBank.T in static_banks(workload), number

    def test_lll13_14_are_indirect(self, traces):
        for number in (13, 14):
            workload, _ = traces[number]
            assert Opcode.LOAD_A in static_opcodes(workload), number

    def test_lll13_has_address_multiply(self, traces):
        workload, _ = traces[13]
        assert Opcode.A_MUL in static_opcodes(workload)

    def test_store_traffic_where_expected(self, traces):
        # the pure reduction (LLL3) stores once; the banded solver
        # (LLL4) stores once per band row; all others store per element
        for number, (workload, trace) in traces.items():
            stores = sum(1 for e in trace if e.inst.is_store)
            if number == 3:
                assert stores == 1
            elif number == 4:
                assert 1 <= stores <= 5
            else:
                assert stores > 5, number


class TestParallelismProfile:
    """The ILP structure that drives the paper's results."""

    @pytest.fixture(scope="class")
    def ideal_ipcs(self, traces):
        return {
            number: dataflow_limit(trace).ideal_ipc
            for number, (_, trace) in traces.items()
        }

    def test_serial_kernels_have_low_ideal_ipc(self, ideal_ipcs):
        # first sum and inner product are accumulator chains
        assert ideal_ipcs[11] < 2.5
        assert ideal_ipcs[3] < 2.5

    def test_parallel_kernels_have_high_ideal_ipc(self, ideal_ipcs):
        # first difference and hydro are element-wise parallel
        assert ideal_ipcs[12] > 2 * ideal_ipcs[11]
        assert ideal_ipcs[1] > 2 * ideal_ipcs[11]

    def test_serial_loop_sits_closer_to_its_dataflow_limit(self, traces):
        """A 1-issue machine cannot exploit wide parallelism, so the
        serial prefix sum runs much closer to its (low) dataflow limit
        than the fully parallel first difference runs to its (high)
        one."""
        fractions = {}
        for number in (11, 12):
            workload, trace = traces[number]
            limit = dataflow_limit(trace)
            ruu = ENGINE_FACTORIES["ruu-bypass"](
                workload.program, MachineConfig(window_size=20),
                workload.make_memory(),
            ).run()
            fractions[number] = limit.critical_path_cycles / ruu.cycles
        assert fractions[11] > 2 * fractions[12]

    def test_lll14_correct_under_load_register_pressure(self, traces):
        """The 1-D PIC's dependent address chain (ir[k] -> rh[ix]) must
        stay correct even when the load registers are scarce."""
        workload, _ = traces[14]
        from repro.machine import StallReason
        from repro.trace import reference_state
        golden = reference_state(workload.program, workload.initial_memory)
        memory = workload.make_memory()
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program,
            MachineConfig(window_size=20, n_load_registers=2),
            memory,
        )
        result = engine.run()
        assert result.stalls[StallReason.NO_LOAD_REGISTER] > 0
        assert engine.regs == golden.regs
        assert memory == golden.memory
