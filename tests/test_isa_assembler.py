"""Unit tests for the text assembler and program finalization."""

import pytest

from repro.isa import (
    A,
    AssemblyError,
    Instruction,
    Opcode,
    ProgramError,
    S,
    assemble,
    build_program,
)


class TestBasicParsing:
    def test_empty_source_gets_a_halt(self):
        program = assemble("")
        assert len(program) == 1
        assert program[0].opcode is Opcode.HALT

    def test_halt_appended_when_missing(self):
        program = assemble("NOP")
        assert program[-1].opcode is Opcode.HALT
        assert len(program) == 2

    def test_halt_not_duplicated(self):
        program = assemble("NOP\nHALT")
        assert len(program) == 2

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; full-line comment
            NOP        ; trailing comment
            # hash comment too

            HALT
        """)
        assert len(program) == 2

    def test_alu_three_operand(self):
        inst = assemble("A_ADD A1, A2, A3")[0]
        assert inst.opcode is Opcode.A_ADD
        assert inst.dest == A(1)
        assert inst.srcs == (A(2), A(3))

    def test_immediate_forms(self):
        assert assemble("A_IMM A1, 42")[0].imm == 42
        assert assemble("A_IMM A1, -42")[0].imm == -42
        assert assemble("A_IMM A1, 0x10")[0].imm == 16
        assert assemble("S_IMM S1, 2.5")[0].imm == 2.5

    def test_shift_takes_amount(self):
        inst = assemble("S_SHL S1, S2, 3")[0]
        assert inst.srcs == (S(2),)
        assert inst.imm == 3

    def test_addi(self):
        inst = assemble("A_ADDI A1, A1, -1")[0]
        assert inst.dest == A(1)
        assert inst.srcs == (A(1),)
        assert inst.imm == -1


class TestMemoryOperands:
    def test_load_bracket_form(self):
        inst = assemble("LOAD_S S1, A2[10]")[0]
        assert inst.base == A(2)
        assert inst.imm == 10
        assert inst.dest == S(1)

    def test_load_negative_offset(self):
        assert assemble("LOAD_S S1, A2[-3]")[0].imm == -3

    def test_load_comma_form(self):
        inst = assemble("LOAD_S S1, A2, 5")[0]
        assert inst.base == A(2)
        assert inst.imm == 5

    def test_store_operand_order(self):
        inst = assemble("STORE_S A1[4], S2")[0]
        assert inst.base == A(1)
        assert inst.imm == 4
        assert inst.srcs == (S(2),)

    def test_store_a(self):
        inst = assemble("STORE_A A1[0], A3")[0]
        assert inst.srcs == (A(3),)

    def test_base_must_be_a_register(self):
        with pytest.raises(AssemblyError):
            assemble("LOAD_S S1, S2[0]")


class TestLabelsAndBranches:
    def test_backward_branch(self):
        program = assemble("""
        top:
            NOP
            BR_NONZERO A0, top
        """)
        assert program[1].target == 0

    def test_forward_branch(self):
        program = assemble("""
            BR_ZERO A0, skip
            NOP
        skip:
            HALT
        """)
        assert program[0].target == 2

    def test_jmp(self):
        program = assemble("""
            JMP end
            NOP
        end:
            HALT
        """)
        assert program[0].target == 2

    def test_label_on_own_line(self):
        program = assemble("""
        alone:
            NOP
        """)
        assert program.labels["alone"] == 0

    def test_multiple_labels_same_line(self):
        program = assemble("one: two: NOP")
        assert program.labels["one"] == 0
        assert program.labels["two"] == 0

    def test_undefined_label(self):
        with pytest.raises(ProgramError):
            assemble("JMP nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x: NOP\nx: NOP")

    def test_label_of(self):
        program = assemble("here: NOP")
        assert program.label_of(0) == "here"
        assert program.label_of(1) is None


class TestErrors:
    @pytest.mark.parametrize("line", [
        "FROB A1, A2",              # unknown opcode
        "A_ADD A1, A2",             # missing operand
        "A_ADD A1, A2, A3, A4",     # extra operand
        "A_IMM A1, banana",         # bad number
        "LOAD_S S1",                # missing memory operand
        "BR_ZERO A0",               # missing target
        "NOP A1",                   # operands on a nullary op
    ])
    def test_rejects(self, line):
        with pytest.raises(AssemblyError):
            assemble(line)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("NOP\nNOP\nBOGUS")
        assert "line 3" in str(excinfo.value)


class TestProgramFinalize:
    def test_pcs_assigned(self):
        program = assemble("NOP\nNOP\nHALT")
        assert [inst.pc for inst in program] == [0, 1, 2]

    def test_out_of_range_target_rejected(self):
        inst = Instruction(Opcode.JMP, target=99)
        with pytest.raises(ProgramError):
            build_program([inst])

    def test_listing_mentions_labels(self):
        program = assemble("loop: NOP\nJMP loop")
        listing = program.listing()
        assert "loop:" in listing
        assert "JMP" in listing

    def test_instruction_str_forms(self):
        program = assemble("""
            A_ADD A1, A2, A3
            LOAD_S S1, A2[3]
            STORE_S A2[3], S1
            BR_ZERO A0, end
        end:
            HALT
        """)
        texts = [str(inst) for inst in program]
        assert "A_ADD A1, A2, A3" in texts[0]
        assert "A2[3]" in texts[1]
        assert "S1" in texts[2]
        assert "-> 4" in texts[3]
