"""Tests for the dependence-graph and dataflow-limit analysis."""

import pytest

from repro.analysis.depgraph import (
    build_dependence_graph,
    dataflow_limit,
    dependence_distances,
    distance_summary,
)
from repro.isa import assemble
from repro.machine import MachineConfig
from repro.trace import FunctionalExecutor
from repro.workloads import all_loops, dependency_chain, independent_streams


def trace_of(source_or_workload):
    if isinstance(source_or_workload, str):
        executor = FunctionalExecutor(assemble(source_or_workload))
    else:
        executor = FunctionalExecutor(
            source_or_workload.program, source_or_workload.make_memory()
        )
    return executor.run()


class TestGraphConstruction:
    def test_raw_edge(self):
        trace = trace_of("""
            A_IMM A1, 1
            A_ADDI A2, A1, 1
            HALT
        """)
        graph = build_dependence_graph(trace)
        assert graph.has_edge(0, 1)
        assert graph.edges[0, 1]["kind"] == "reg"
        assert graph.edges[0, 1]["register"] == "A1"

    def test_no_war_or_waw_edges(self):
        trace = trace_of("""
            A_IMM A1, 1
            A_IMM A2, 2
            MOV A3, A1
            A_IMM A1, 9        ; WAR on A1 vs MOV, WAW vs first A_IMM
            HALT
        """)
        graph = build_dependence_graph(trace)
        assert list(graph.predecessors(3)) == []

    def test_memory_raw_edge(self):
        trace = trace_of("""
            A_IMM A1, 100
            S_IMM S1, 2.0
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            HALT
        """)
        graph = build_dependence_graph(trace)
        assert graph.has_edge(2, 3)
        assert graph.edges[2, 3]["kind"] == "mem"
        assert graph.edges[2, 3]["address"] == 100

    def test_latest_writer_wins(self):
        trace = trace_of("""
            A_IMM A1, 1
            A_IMM A1, 2
            MOV A2, A1
            HALT
        """)
        graph = build_dependence_graph(trace)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)

    def test_graph_is_a_dag(self):
        import networkx as nx
        for workload in all_loops()[:4]:
            graph = build_dependence_graph(trace_of(workload))
            assert nx.is_directed_acyclic_graph(graph)


class TestDistances:
    def test_adjacent_dependency_distance_one(self):
        distances = dependence_distances(trace_of("""
            A_IMM A1, 1
            A_ADDI A1, A1, 1
            HALT
        """))
        assert distances[1] == 1

    def test_distance_counts_positive(self):
        for workload in all_loops()[:3]:
            distances = dependence_distances(trace_of(workload))
            assert all(distance > 0 for distance in distances)

    def test_summary_renders(self):
        text = distance_summary(trace_of(dependency_chain(50)))
        assert "true dependencies" in text
        assert "%" in text

    def test_summary_empty_trace(self):
        assert distance_summary(trace_of("HALT")) == "no dependencies"


class TestDataflowLimit:
    def test_serial_chain_is_latency_bound(self):
        # chain kernel: each iteration adds F_ADD(6) + F_MUL(7) = 13
        # cycles to the critical path.
        n = 40
        limit = dataflow_limit(trace_of(dependency_chain(n)))
        assert limit.critical_path_cycles >= n * 13

    def test_parallel_streams_have_high_ideal_ipc(self):
        chain = dataflow_limit(trace_of(dependency_chain(60)))
        streams = dataflow_limit(trace_of(independent_streams(60)))
        assert streams.ideal_ipc > 2 * chain.ideal_ipc

    def test_limit_dominates_every_engine(self):
        """No engine may beat the dataflow bound."""
        from repro.analysis import ENGINE_FACTORIES
        workload = all_loops()[0]
        trace = trace_of(workload)
        limit = dataflow_limit(trace)
        config = MachineConfig(window_size=50)
        for name in ("simple", "rstu", "ruu-bypass", "spec-ruu"):
            engine = ENGINE_FACTORIES[name](
                workload.program, config, workload.make_memory()
            )
            result = engine.run()
            assert result.cycles >= limit.critical_path_cycles, name

    def test_critical_path_is_a_real_path(self):
        trace = trace_of(all_loops()[2])
        limit = dataflow_limit(trace)
        graph = build_dependence_graph(trace)
        for a, b in zip(limit.critical_path_nodes,
                        limit.critical_path_nodes[1:]):
            assert graph.has_edge(a, b)

    def test_empty_trace(self):
        limit = dataflow_limit(trace_of("HALT"))
        assert limit.critical_path_cycles == 0
        assert limit.ideal_ipc == 0.0

    def test_describe(self):
        text = dataflow_limit(trace_of(dependency_chain(10))).describe()
        assert "critical path" in text and "IPC" in text

    def test_respects_config_latencies(self):
        from repro.isa import FUClass
        trace = trace_of(dependency_chain(20))
        slow = dataflow_limit(
            trace, MachineConfig().with_latency(FUClass.FLOAT_ADD, 60)
        )
        fast = dataflow_limit(trace)
        assert slow.critical_path_cycles > fast.critical_path_cycles
