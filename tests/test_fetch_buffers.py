"""Tests for the instruction-buffer fetch model."""

import pytest

from repro.core import RUUEngine
from repro.isa import assemble
from repro.issue import SimpleEngine
from repro.machine import MachineConfig, StallReason
from repro.machine.fetch import InstructionBuffers
from repro.trace import reference_state
from repro.workloads import all_loops

LOOP = """
    A_IMM A0, 10
loop:
    A_ADDI A0, A0, -1
    BR_NONZERO A0, loop
    HALT
"""


class TestBufferModel:
    def test_parcel_layout(self):
        program = assemble("NOP\nA_IMM A1, 1\nNOP\nHALT")
        buffers = InstructionBuffers(program, parcels_per_buffer=4)
        # parcels: NOP=1, A_IMM=2, NOP=1, HALT=1 -> offsets 0,1,3,4
        assert buffers.block_of(0) == 0
        assert buffers.block_of(2) == 0
        assert buffers.block_of(3) == 1

    def test_cold_miss_then_hits(self):
        program = assemble(LOOP)
        buffers = InstructionBuffers(program)
        assert buffers.access(0, 0) == buffers.miss_penalty
        assert buffers.access(1, 20) == 0
        assert buffers.access(2, 21) == 0
        assert buffers.misses == 1

    def test_lru_replacement(self):
        program = assemble("\n".join(["NOP"] * 8) + "\nHALT")
        buffers = InstructionBuffers(
            program, n_buffers=2, parcels_per_buffer=2
        )
        buffers.access(0, 0)   # block 0
        buffers.access(2, 1)   # block 1
        buffers.access(4, 2)   # block 2 evicts block 0 (LRU)
        assert buffers.access(2, 3) == 0       # block 1 still resident
        assert buffers.access(0, 4) > 0        # block 0 was evicted

    def test_geometry_validation(self):
        program = assemble("HALT")
        with pytest.raises(ValueError):
            InstructionBuffers(program, n_buffers=0)

    def test_fits_entirely(self):
        small = assemble(LOOP)
        assert InstructionBuffers(small).fits_entirely()
        big = assemble("\n".join(["A_IMM A1, 1"] * 300) + "\nHALT")
        assert not InstructionBuffers(
            big, n_buffers=2, parcels_per_buffer=64
        ).fits_entirely()

    def test_hit_rate(self):
        program = assemble(LOOP)
        buffers = InstructionBuffers(program)
        for pc in (0, 1, 2, 1, 2, 1, 2):
            buffers.access(pc, 0)
        assert buffers.hit_rate == pytest.approx(6 / 7)


class TestEngineIntegration:
    def test_cold_miss_stalls_decode(self):
        program = assemble(LOOP)
        engine = SimpleEngine(program, MachineConfig())
        engine.fetch_unit = InstructionBuffers(program)
        result = engine.run()
        assert result.stalls[StallReason.FETCH_MISS] >= 1
        assert engine.fetch_unit.misses == 1  # loop fits one buffer

    def test_results_unchanged_with_buffers(self):
        program = assemble(LOOP)
        golden = reference_state(program)
        engine = RUUEngine(program, MachineConfig(window_size=8))
        engine.fetch_unit = InstructionBuffers(program)
        result = engine.run()
        assert engine.regs == golden.regs
        assert result.instructions == golden.executed

    def test_cost_is_just_the_cold_fills(self):
        program = assemble(LOOP)
        plain = SimpleEngine(program, MachineConfig()).run()
        engine = SimpleEngine(program, MachineConfig())
        engine.fetch_unit = InstructionBuffers(program)
        buffered = engine.run()
        fills = engine.fetch_unit.misses
        assert buffered.cycles == plain.cycles + \
            fills * engine.fetch_unit.miss_penalty

    def test_paper_assumption_holds_for_livermore(self):
        """Every Livermore loop's code fits the CRAY-1 buffers, so the
        always-hit assumption (§2.2) costs nothing but cold fills."""
        for workload in all_loops():
            buffers = InstructionBuffers(workload.program)
            engine = SimpleEngine(
                workload.program, MachineConfig(),
                memory=workload.make_memory(),
            )
            engine.fetch_unit = buffers
            engine.run()
            # only cold fills: the code is resident for the whole run
            assert buffers.misses <= 3, workload.name
            assert buffers.hit_rate > 0.995, workload.name

    def test_thrashing_program_pays(self):
        # A long straight-line body inside a loop, too big for tiny
        # buffers: every iteration re-fills.
        body = "\n".join(["A_ADDI A1, A1, 1"] * 40)
        source = f"""
            A_IMM A0, 5
        loop:
            {body}
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """
        program = assemble(source)
        engine = SimpleEngine(program, MachineConfig())
        engine.fetch_unit = InstructionBuffers(
            program, n_buffers=1, parcels_per_buffer=16
        )
        engine.run()
        assert engine.fetch_unit.misses > 10
