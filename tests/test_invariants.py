"""Run real workloads with per-cycle invariant checking enabled."""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.core import (
    AlwaysTakenPredictor,
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
)
from repro.machine import MachineConfig
from repro.machine.invariants import (
    InvariantChecker,
    InvariantViolation,
    run_checked,
)
from repro.workloads import all_loops, branch_heavy, fault_probe


class TestCheckedRuns:
    @pytest.mark.parametrize("bypass", list(BypassMode))
    def test_ruu_invariants_hold_on_loops(self, bypass):
        for workload in all_loops()[:6]:
            engine = RUUEngine(
                workload.program, MachineConfig(window_size=10),
                memory=workload.make_memory(), bypass=bypass,
            )
            result, checker = run_checked(engine)
            assert checker.cycles_checked == result.cycles

    def test_invariants_hold_under_speculation_and_recovery(self):
        workload = branch_heavy(length=100)
        engine = SpeculativeRUUEngine(
            workload.program, MachineConfig(window_size=12),
            memory=workload.make_memory(),
            predictor=AlwaysTakenPredictor(),
        )
        result, checker = run_checked(engine)
        assert result.mispredictions > 0  # recoveries really happened
        assert checker.cycles_checked > 0

    def test_invariants_hold_across_interrupt_and_resume(self):
        workload = fault_probe()
        memory = workload.make_memory()
        memory.inject_fault(workload.fault_address)
        engine = RUUEngine(workload.program, MachineConfig(window_size=10),
                           memory=memory)
        checker = InvariantChecker.attach(engine)
        engine.run()
        assert engine.interrupt_record is not None
        memory.service_fault(workload.fault_address)
        engine.continue_run()
        assert checker.cycles_checked > 0

    def test_tiny_window_and_narrow_counters(self):
        workload = all_loops()[8]  # LLL9: heavy register recycling
        engine = RUUEngine(
            workload.program,
            MachineConfig(window_size=3, counter_bits=1),
            memory=workload.make_memory(),
        )
        run_checked(engine)


class TestGenericChecks:
    """Every engine -- not just the RUU -- gets post-cycle assertions."""

    @pytest.mark.parametrize(
        "engine_name", ["simple", "tomasulo", "rstu"]
    )
    def test_generic_invariants_hold_on_real_kernels(self, engine_name):
        builder = ENGINE_FACTORIES[engine_name]
        for workload in all_loops()[:4]:
            engine = builder(
                workload.program, MachineConfig(window_size=10),
                workload.make_memory(),
            )
            result, checker = run_checked(engine)
            # Attaching was not a silent no-op: a real assertion ran
            # after every simulated cycle.
            assert checker.cycles_checked == result.cycles

    def test_detects_retired_counter_rollback(self):
        from repro.isa import assemble
        source = "A_IMM A1, 1\nA_IMM A2, 2\nA_IMM A3, 3\nHALT"
        builder = ENGINE_FACTORIES["simple"]
        engine = builder(assemble(source), MachineConfig(), None)
        InvariantChecker.attach(engine)

        original_tick = engine.tick
        sabotaged = []

        def corrupting_tick():
            original_tick()
            if engine.retired >= 2 and not sabotaged:
                # roll the counter back without any recovery event; the
                # next cycle's check observes the decrease
                sabotaged.append(True)
                engine.retired -= 2
                del engine.retire_log[-2:]

        engine.tick = corrupting_tick
        with pytest.raises(InvariantViolation,
                           match="retired count went backwards"):
            engine.run()

    def test_detects_retire_log_mismatch(self):
        from repro.isa import assemble
        builder = ENGINE_FACTORIES["tomasulo"]
        engine = builder(
            assemble("A_IMM A1, 1\nA_IMM A2, 2\nHALT"),
            MachineConfig(), None,
        )
        InvariantChecker.attach(engine)

        original_tick = engine.tick

        def corrupting_tick():
            original_tick()
            if engine.retired == 1:
                engine.retire_log.append(engine.retire_log[-1])

        engine.tick = corrupting_tick
        with pytest.raises(InvariantViolation, match="retire log"):
            engine.run()

    def test_recovery_rollback_is_not_flagged(self):
        # Interrupt recovery legitimately discards retired counts; the
        # generic check must not fire on it.
        workload = fault_probe()
        memory = workload.make_memory()
        memory.inject_fault(workload.fault_address)
        engine = RUUEngine(
            workload.program, MachineConfig(window_size=10), memory=memory
        )
        checker = InvariantChecker.attach(engine)
        engine.run()
        assert engine.interrupt_count > 0
        assert checker.cycles_checked > 0


class TestDetection:
    def test_detects_corrupted_ni(self):
        from repro.isa import S, assemble
        source = """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S2, S2
            HALT
        """
        engine = RUUEngine(assemble(source), MachineConfig(window_size=8))
        checker = InvariantChecker.attach(engine)

        # sabotage: inflate a counter mid-run
        original_try_issue = engine._try_issue

        def corrupted(inst, seq):
            ok = original_try_issue(inst, seq)
            if seq == 2:
                engine._ni[S(2)] = 5
            return ok

        engine._try_issue = corrupted
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_detects_window_disorder(self):
        from repro.isa import assemble
        source = "A_IMM A1, 1\nA_IMM A2, 2\nA_IMM A3, 3\nHALT"
        engine = RUUEngine(assemble(source), MachineConfig(window_size=8))
        checker = InvariantChecker.attach(engine)

        original = engine._try_issue

        def scrambling(inst, seq):
            ok = original(inst, seq)
            if seq == 2 and len(engine.window) >= 2:
                engine.window.rotate(1)
            return ok

        engine._try_issue = scrambling
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_detach_restores_tick(self):
        from repro.isa import assemble
        engine = RUUEngine(assemble("HALT"), MachineConfig())
        checker = InvariantChecker.attach(engine)
        checker.detach()
        engine.run()
        assert checker.cycles_checked == 0
