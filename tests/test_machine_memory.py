"""Unit tests for the memory model, result bus and functional units."""

import pytest

from repro.isa import FUClass
from repro.machine import (
    FUPool,
    MachineConfig,
    Memory,
    PageFault,
    ResultBus,
)
from repro.machine.result_bus import BroadcastBus


class TestMemory:
    def test_default_zero(self):
        assert Memory().peek(1234) == 0

    def test_poke_peek(self):
        mem = Memory()
        mem.poke(10, 3.5)
        assert mem.peek(10) == 3.5

    def test_poke_zero_clears(self):
        mem = Memory()
        mem.poke(10, 5)
        mem.poke(10, 0)
        assert mem.nonzero() == {}

    def test_write_array_and_read_array(self):
        mem = Memory()
        mem.write_array(100, [1, 2, 3])
        assert mem.read_array(100, 4) == [1, 2, 3, 0]

    def test_fault_injection_on_read(self):
        mem = Memory()
        mem.inject_fault(50)
        with pytest.raises(PageFault) as excinfo:
            mem.read(50)
        assert excinfo.value.address == 50
        assert not excinfo.value.is_store

    def test_fault_injection_on_write(self):
        mem = Memory()
        mem.inject_fault(50)
        with pytest.raises(PageFault) as excinfo:
            mem.write(50, 1)
        assert excinfo.value.is_store

    def test_probe(self):
        mem = Memory()
        mem.inject_fault(7)
        with pytest.raises(PageFault):
            mem.probe(7, is_store=False)
        mem.probe(8, is_store=False)  # no fault

    def test_service_fault(self):
        mem = Memory()
        mem.inject_fault(50)
        mem.service_fault(50)
        assert mem.read(50) == 0
        assert mem.fault_count == 0

    def test_fault_count_increments(self):
        mem = Memory()
        mem.inject_fault(50)
        for _ in range(3):
            with pytest.raises(PageFault):
                mem.read(50)
        assert mem.fault_count == 3

    def test_peek_ignores_faults(self):
        mem = Memory()
        mem.inject_fault(50)
        assert mem.peek(50) == 0

    def test_copy_is_deep(self):
        mem = Memory()
        mem.poke(1, 10)
        mem.inject_fault(2)
        clone = mem.copy()
        clone.poke(1, 20)
        clone.service_fault(2)
        assert mem.peek(1) == 10
        assert 2 in mem.faulting_addresses

    def test_equality_ignores_fault_markers(self):
        a, b = Memory(), Memory()
        a.inject_fault(9)
        assert a == b

    def test_diff(self):
        a, b = Memory(), Memory()
        a.poke(1, 5)
        b.poke(2, 7)
        assert a.diff(b) == {1: (5, 0), 2: (0, 7)}

    def test_int_float_equality(self):
        a, b = Memory(), Memory()
        a.poke(1, 2.0)
        b.poke(1, 2)
        assert a == b


class TestResultBus:
    def test_reserve_and_conflict(self):
        bus = ResultBus()
        assert bus.reserve(10)
        assert not bus.is_free(10)
        assert not bus.reserve(10)
        assert bus.conflicts == 1

    def test_release_past(self):
        bus = ResultBus()
        bus.reserve(5)
        bus.reserve(15)
        bus.release_past(10)
        assert bus.reserved_cycles() == [15]

    def test_independent_cycles(self):
        bus = ResultBus()
        bus.reserve(3)
        assert bus.is_free(4)


class TestBroadcastBus:
    def test_single_payload_per_cycle(self):
        bus = BroadcastBus()
        assert bus.drive(1, "tag", 42)
        assert not bus.drive(1, "tag2", 43)
        assert bus.observe(1) == ("tag", 42)
        assert bus.observe(2) is None

    def test_release_past(self):
        bus = BroadcastBus()
        bus.drive(1, "t", 1)
        bus.drive(5, "u", 2)
        bus.release_past(3)
        assert bus.observe(1) is None
        assert bus.observe(5) == ("u", 2)


class TestFunctionalUnits:
    def test_pipelined_one_per_cycle(self):
        pool = FUPool(MachineConfig())
        assert pool.can_accept(FUClass.FLOAT_ADD, 0)
        done = pool.accept(FUClass.FLOAT_ADD, 0)
        assert done == 6  # CRAY-1 float add time
        assert not pool.can_accept(FUClass.FLOAT_ADD, 0)
        assert pool.can_accept(FUClass.FLOAT_ADD, 1)

    def test_units_independent(self):
        pool = FUPool(MachineConfig())
        pool.accept(FUClass.FLOAT_ADD, 0)
        assert pool.can_accept(FUClass.FLOAT_MUL, 0)

    def test_latency_override(self):
        config = MachineConfig().with_latency(FUClass.MEMORY, 3)
        pool = FUPool(config)
        assert pool.accept(FUClass.MEMORY, 10) == 13

    def test_utilization_counts(self):
        pool = FUPool(MachineConfig())
        pool.accept(FUClass.TRANSMIT, 0)
        pool.accept(FUClass.TRANSMIT, 1)
        assert pool.utilization()[FUClass.TRANSMIT] == 2


class TestMachineConfig:
    def test_defaults(self):
        config = MachineConfig()
        assert config.n_load_registers == 6
        assert config.counter_bits == 3
        assert config.max_instances == 7
        assert config.dispatch_paths == 1

    def test_with_overrides(self):
        config = MachineConfig().with_(window_size=25, dispatch_paths=2)
        assert config.window_size == 25
        assert config.dispatch_paths == 2
        # original untouched (frozen dataclass semantics)
        assert MachineConfig().window_size != 25 or True

    def test_with_latency_does_not_mutate(self):
        base = MachineConfig()
        changed = base.with_latency(FUClass.RECIP, 2)
        assert base.latency(FUClass.RECIP) == 14
        assert changed.latency(FUClass.RECIP) == 2

    def test_max_instances_scales_with_bits(self):
        assert MachineConfig(counter_bits=1).max_instances == 1
        assert MachineConfig(counter_bits=4).max_instances == 15
