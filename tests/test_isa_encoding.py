"""Tests for the binary parcel encoding of the model ISA."""

import pytest
from hypothesis import given, settings

from repro.isa import A, B, Instruction, Opcode, S, T, assemble
from repro.isa.encoding import (
    EncodingError,
    decode_program,
    encode_program,
    parcel_count,
    program_parcel_size,
)
from repro.workloads import all_loops

from tests.strategies import initial_data, program_text


def roundtrip(program):
    return decode_program(encode_program(program), name=program.name)


def assert_programs_equal(a, b):
    assert len(a) == len(b)
    for inst_a, inst_b in zip(a, b):
        assert inst_a.opcode is inst_b.opcode, (inst_a, inst_b)
        assert inst_a.dest == inst_b.dest, (inst_a, inst_b)
        assert inst_a.srcs == inst_b.srcs, (inst_a, inst_b)
        assert inst_a.base == inst_b.base, (inst_a, inst_b)
        assert inst_a.imm == inst_b.imm, (inst_a, inst_b)
        assert inst_a.target == inst_b.target, (inst_a, inst_b)


class TestParcelCounts:
    def test_one_parcel_forms(self):
        one = assemble("A_ADD A1, A2, A3\nNOP\nF_MUL S1, S2, S3")
        assert parcel_count(one[0]) == 1
        assert parcel_count(one[1]) == 1
        assert parcel_count(one[2]) == 1

    def test_two_parcel_forms(self):
        src = """
            A_IMM A1, 5
            A_ADDI A1, A1, 1
            S_SHL S1, S1, 2
            LOAD_S S1, A1[0]
            STORE_S A1[0], S1
            BR_ZERO A0, end
            JMP end
            MOV B5, A1
        end:
            HALT
        """
        program = assemble(src)
        for inst in program[:-1]:
            assert parcel_count(inst) == 2, inst

    def test_program_parcel_size(self):
        program = assemble("NOP\nA_IMM A1, 1\nHALT")
        assert program_parcel_size(program) == 1 + 2 + 1

    def test_counts_match_actual_encoding(self):
        for workload in all_loops()[:4]:
            program = workload.program
            blob = encode_program(program)
            import struct
            n_parcels = struct.unpack_from("<I", blob, 4)[0]
            assert n_parcels == program_parcel_size(program)


class TestRoundtrip:
    @pytest.mark.parametrize("source", [
        "A_ADD A1, A2, A3",
        "A_MUL A7, A0, A7",
        "A_ADDI A3, A3, -17",
        "A_IMM A2, -30000",
        "S_IMM S1, 123",
        "S_IMM S1, 2.5",           # literal pool
        "S_IMM S1, 1000000000",    # too big for imm16 -> pool
        "S_AND S4, S5, S6",
        "S_SHR S7, S7, 8",
        "F_RECIP S2, S3",
        "MOV A1, A2",
        "MOV B63, A7",
        "MOV S1, T63",
        "MOV T17, S0",
        "LOAD_S S1, A2[100]",
        "LOAD_A A1, A2[-3]",
        "LOAD_B B33, A1[0]",
        "LOAD_T T60, A0[7]",
        "STORE_S A1[5], S7",
        "STORE_A A1[-5], A0",
        "STORE_T A7[1], T42",
        "BR_MINUS S0, end\nend: HALT",
        "BR_NONZERO A5, end\nend: HALT",
        "JMP end\nend: HALT",
        "NOP",
    ])
    def test_single_instruction(self, source):
        program = assemble(source)
        assert_programs_equal(program, roundtrip(program))

    @pytest.mark.parametrize("index", range(1, 15))
    def test_livermore_loops_roundtrip(self, index):
        from repro.workloads import LIVERMORE_FACTORIES
        program = LIVERMORE_FACTORIES[index]().program
        assert_programs_equal(program, roundtrip(program))

    def test_decoded_program_executes_identically(self):
        from repro.trace import reference_state
        from repro.workloads import lll3
        workload = lll3()
        decoded = roundtrip(workload.program)
        original = reference_state(workload.program, workload.initial_memory)
        redecoded = reference_state(decoded, workload.initial_memory)
        assert original.regs == redecoded.regs
        assert original.memory == redecoded.memory

    @settings(max_examples=40, deadline=None)
    @given(source=program_text())
    def test_random_programs_roundtrip(self, source):
        program = assemble(source)
        assert_programs_equal(program, roundtrip(program))


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(EncodingError):
            decode_program(b"XXXXrest")

    def test_offset_too_large(self):
        inst = Instruction(Opcode.LOAD_S, dest=S(1), base=A(1), imm=1 << 20)
        from repro.isa.program import build_program
        program = build_program([inst])
        with pytest.raises(EncodingError):
            encode_program(program)

    def test_literal_pool_deduplicates(self):
        program = assemble("""
            S_IMM S1, 3.25
            S_IMM S2, 3.25
            S_IMM S3, 4.5
            HALT
        """)
        blob = encode_program(program)
        import struct
        n_pool = struct.unpack_from("<I", blob, 8)[0]
        assert n_pool == 2
