"""Unit tests for the register model."""

import pytest

from repro.isa import (
    TOTAL_REGISTERS,
    A,
    B,
    RegBank,
    Register,
    RegisterFile,
    S,
    T,
    all_registers,
)


class TestRegister:
    def test_constructors(self):
        assert A(3).bank is RegBank.A
        assert S(7).index == 7
        assert B(63).name == "B63"
        assert T(0).name == "T0"

    @pytest.mark.parametrize("bank,size", [
        (RegBank.A, 8), (RegBank.S, 8), (RegBank.B, 64), (RegBank.T, 64),
    ])
    def test_bank_sizes(self, bank, size):
        assert bank.size == size

    def test_total_register_count(self):
        assert TOTAL_REGISTERS == 144
        assert len(list(all_registers())) == 144

    @pytest.mark.parametrize("bank,index", [
        (RegBank.A, 8), (RegBank.S, 9), (RegBank.B, 64), (RegBank.T, 100),
        (RegBank.A, -1),
    ])
    def test_out_of_range_index_rejected(self, bank, index):
        with pytest.raises(ValueError):
            Register(bank, index)

    def test_parse_roundtrip(self):
        for reg in all_registers():
            assert Register.parse(reg.name) == reg

    def test_parse_case_insensitive(self):
        assert Register.parse("a3") == A(3)
        assert Register.parse(" t12 ") == T(12)

    @pytest.mark.parametrize("text", ["X3", "A", "Ax", "", "3A", "AA1"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            Register.parse(text)

    def test_flat_index_is_a_bijection(self):
        indices = sorted(reg.flat_index for reg in all_registers())
        assert indices == list(range(144))

    def test_equality_and_hash(self):
        assert A(1) == A(1)
        assert A(1) != S(1)
        assert len({A(1), A(1), S(1)}) == 2

    def test_ordering_is_total(self):
        regs = sorted(all_registers())
        assert len(regs) == 144


class TestRegisterFile:
    def test_initially_zero(self):
        rf = RegisterFile()
        for reg in all_registers():
            assert rf.read(reg) == 0

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(S(2), 3.5)
        assert rf.read(S(2)) == 3.5
        assert rf.read(S(3)) == 0

    def test_copy_is_independent(self):
        rf = RegisterFile()
        rf.write(A(1), 7)
        clone = rf.copy()
        clone.write(A(1), 9)
        assert rf.read(A(1)) == 7
        assert clone.read(A(1)) == 9

    def test_equality(self):
        rf1, rf2 = RegisterFile(), RegisterFile()
        assert rf1 == rf2
        rf1.write(T(10), 1)
        assert rf1 != rf2

    def test_diff(self):
        rf1, rf2 = RegisterFile(), RegisterFile()
        rf1.write(A(0), 5)
        rf2.write(S(1), 2.0)
        diff = rf1.diff(rf2)
        assert diff == {"A0": (5, 0), "S1": (0, 2.0)}

    def test_nonzero(self):
        rf = RegisterFile()
        rf.write(B(10), 42)
        assert rf.nonzero() == {"B10": 42}

    def test_snapshot_has_all_registers(self):
        assert len(RegisterFile().snapshot()) == 144

    def test_eq_against_other_type(self):
        assert RegisterFile() != object()
