"""Smoke-run the fast examples so they cannot rot.

(The slow full-reproduction scripts -- reproduce_paper.py and
plot_curves.py -- run the same code paths as the benchmark suite and
are exercised there.)
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pipeline_viewer.py",
    "precise_interrupts.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), name


def test_dependence_analysis_with_args(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["dependence_analysis.py", "3"])
    runpy.run_path(
        str(EXAMPLES / "dependence_analysis.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "LLL3" in out and "dataflow limit" in out


def test_compare_example_subset(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["compare_issue_mechanisms.py", "12"])
    runpy.run_path(
        str(EXAMPLES / "compare_issue_mechanisms.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "ruu-bypass" in out and "dispatch-stack" in out


def test_all_examples_have_docstrings_and_mains():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert text.lstrip().startswith(('#!', '"""')), path.name
        assert '__main__' in text, path.name
