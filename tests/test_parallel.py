"""Tests for the parallel sweep runner and the bench harness.

The load-bearing property is *equivalence*: fanning a sweep over worker
processes must produce exactly the rows the serial harness produces
(the simulations are deterministic and aggregation order is fixed), so
the tables and ablations may switch freely between the two paths.

This host may have a single core; nothing here asserts wall-clock
speedup -- only correctness of the fan-out and of cache sharing.
"""

import threading

import pytest

from repro.analysis import (
    ENGINE_FACTORIES,
    ParallelRunner,
    SimPoint,
    per_loop_baseline,
    run_bench,
    run_suite,
    sweep_sizes,
)
from repro.analysis.parallel import run_point
from repro.machine import MachineConfig
from repro.workloads import SUITES, all_loops

JOBS = 4
CONFIG = MachineConfig(window_size=8)


@pytest.fixture(scope="module")
def loops():
    return all_loops()


@pytest.fixture(scope="module")
def quick_loops():
    return SUITES["quick"]()


class TestEquivalence:
    def test_sweep_rows_identical_to_serial(self, loops):
        """jobs=4 reproduces the serial Table 2-style sweep exactly on
        the Livermore suite."""
        serial = sweep_sizes("rstu", [4, 8], workloads=loops)
        runner = ParallelRunner(jobs=JOBS)
        parallel = sweep_sizes("rstu", [4, 8], workloads=loops,
                               runner=runner)
        assert parallel.rows == serial.rows
        assert parallel.baseline.cycles == serial.baseline.cycles
        assert parallel.baseline.instructions == \
            serial.baseline.instructions
        assert runner.points_run == len(loops) * 3  # baseline + 2 sizes

    def test_run_suite_identical_to_serial(self, quick_loops):
        builder = ENGINE_FACTORIES["ruu-bypass"]
        serial = run_suite(builder, quick_loops, CONFIG)
        parallel = run_suite(builder, quick_loops, CONFIG,
                             runner=ParallelRunner(jobs=JOBS))
        assert parallel.cycles == serial.cycles
        assert parallel.instructions == serial.instructions
        assert parallel.stalls == serial.stalls
        assert parallel.workload == serial.workload

    def test_per_loop_baseline_identical_to_serial(self, quick_loops):
        serial = per_loop_baseline(quick_loops, CONFIG)
        parallel = per_loop_baseline(quick_loops, CONFIG,
                                     runner=ParallelRunner(jobs=JOBS))
        assert [r.cycles for r in parallel] == [r.cycles for r in serial]
        assert [r.workload for r in parallel] == \
            [r.workload for r in serial]

    def test_results_return_in_submission_order(self, quick_loops):
        points = [SimPoint("simple", w, CONFIG) for w in quick_loops]
        points += [SimPoint("rstu", w, CONFIG) for w in quick_loops]
        results = ParallelRunner(jobs=JOBS).run_points(points)
        assert [(r.engine, r.workload) for r in results] == \
            [(ENGINE_FACTORIES[p.engine](
                p.workload.program, p.config,
                p.workload.make_memory()).name, p.workload.name)
             for p in points]

    def test_unknown_engine_raises(self, quick_loops):
        with pytest.raises(KeyError):
            ParallelRunner(jobs=1).run_points(
                [SimPoint("no-such-engine", quick_loops[0], CONFIG)]
            )


class TestCacheSharing:
    def test_second_runner_hits_first_runners_entries(self, quick_loops,
                                                      tmp_path):
        cache_dir = str(tmp_path / "cache")
        points = [SimPoint("rstu", w, CONFIG) for w in quick_loops[:6]]
        first = ParallelRunner(jobs=2, cache_dir=cache_dir)
        cold = first.run_points(points)
        assert first.misses == len(points) and first.hits == 0
        second = ParallelRunner(jobs=2, cache_dir=cache_dir)
        warm = second.run_points(points)
        assert second.hits == len(points) and second.misses == 0
        assert second.hit_rate == 1.0
        for a, b in zip(cold, warm):
            assert a.cycles == b.cycles
            assert a.stalls == b.stalls
            assert b.extra.get("from_cache")

    def test_two_concurrent_runners_one_cache_dir(self, quick_loops,
                                                  tmp_path):
        """Stress: two runners race on the same cache directory.  Atomic
        writes + corrupt-as-miss mean both must come back with results
        identical to an uncached serial run."""
        cache_dir = str(tmp_path / "cache")
        points = [SimPoint("rstu", w, CONFIG) for w in quick_loops[:6]]
        reference = [run_point(p) for p in points]
        outcomes = {}

        def race(tag):
            runner = ParallelRunner(jobs=2, cache_dir=cache_dir)
            outcomes[tag] = runner.run_points(points)

        threads = [threading.Thread(target=race, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tag in ("a", "b"):
            assert [r.cycles for r in outcomes[tag]] == \
                [r.cycles for r in reference]
            assert [r.instructions for r in outcomes[tag]] == \
                [r.instructions for r in reference]


class TestHostPerf:
    def test_engine_records_host_perf(self, quick_loops):
        workload = quick_loops[2]
        engine = ENGINE_FACTORIES["rstu"](
            workload.program, CONFIG, workload.make_memory()
        )
        result = engine.run()
        assert result.extra["host_seconds"] >= 0.0
        assert result.extra["host_inst_per_sec"] >= 0.0
        assert result.extra["host_cycles_per_sec"] >= 0.0
        if result.extra["host_seconds"] > 0:
            assert result.extra["host_inst_per_sec"] == pytest.approx(
                result.instructions / result.extra["host_seconds"]
            )

    def test_runner_aggregates_timings(self, quick_loops):
        runner = ParallelRunner(jobs=1)
        runner.run_points(
            [SimPoint("simple", w, CONFIG) for w in quick_loops[:3]]
        )
        assert runner.points_run == 3
        assert runner.wall_seconds > 0.0
        assert 0.0 <= runner.host_seconds <= runner.wall_seconds * 3


class TestBench:
    def test_bench_report_shape(self, quick_loops, tmp_path):
        report = run_bench(
            quick_loops[:4], jobs=2, cache_dir=str(tmp_path / "cache"),
            engines=["rstu"], sizes=[4, 8],
        )
        assert report["identical_to_serial"] is True
        assert report["grid"]["n_points"] == 8
        assert report["serial"]["wall_seconds"] > 0
        assert report["serial"]["points_per_sec"] > 0
        assert report["parallel_cold"]["wall_seconds"] > 0
        assert report["speedup_vs_serial"] > 0
        assert report["cache"]["cold_misses"] == 8
        assert report["cache"]["warm_hits"] == 8
        assert report["cache"]["hit_rate"] == 1.0
        assert report["simulated"]["instructions"] > 0
        assert report["simulated"]["inst_per_host_sec"] >= 0

    def test_bench_cli_writes_json(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        out_path = tmp_path / "BENCH_sweeps.json"
        code = main([
            "bench", "--jobs", "2", "--suite", "quick",
            "--engines", "rstu", "--sizes", "4",
            "--json", str(out_path),
        ])
        assert code == 0
        assert "identical to serial: True" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["identical_to_serial"] is True
        assert payload["cache"]["hit_rate"] == 1.0
        assert payload["jobs"] == 2


class TestSettledOutcomes:
    """run_points_settled: per-point verdicts instead of FleetError.

    The serving layer depends on these semantics -- a failing point in
    a micro-batch must settle its own future and leave the others'
    results intact.
    """

    @staticmethod
    def _hang_workload():
        from repro.isa import assemble
        from repro.machine import Memory
        from repro.workloads.base import Workload

        source = (
            "A_IMM A0, 1\n"
            "loop:\n"
            "A_ADDI A0, A0, 0\n"
            "BR_NONZERO A0, loop\n"
            "HALT\n"
        )
        return Workload(
            name="hang", program=assemble(source, "hang"),
            initial_memory=Memory(),
        )

    def test_mixed_batch_settles_per_point(self, quick_loops):
        config = MachineConfig(window_size=8, max_cycles=2000)
        points = [
            SimPoint("ruu-bypass", quick_loops[0], config),
            SimPoint("ruu-bypass", self._hang_workload(), config),
            SimPoint("ruu-bypass", quick_loops[1], config),
        ]
        runner = ParallelRunner(jobs=2, serial_fallback=False)
        outcomes = runner.run_points_settled(points)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].result.cycles > 0
        assert "DeadlockError" in outcomes[1].error
        assert outcomes[1].result is None

    def test_failed_point_carries_engine_diagnostic(self):
        config = MachineConfig(window_size=8, max_cycles=2000)
        runner = ParallelRunner(jobs=2, serial_fallback=False)
        outcomes = runner.run_points_settled(
            [SimPoint("ruu-bypass", self._hang_workload(), config)]
        )
        diagnostic = outcomes[0].diagnostic
        assert diagnostic is not None
        assert diagnostic["cycle"] > 0
        assert diagnostic["engine"]
        assert "workload" in diagnostic

    def test_settled_matches_run_points_on_success(self, quick_loops):
        points = [SimPoint("rstu", w, CONFIG) for w in quick_loops[:3]]
        settled = ParallelRunner(jobs=2).run_points_settled(points)
        raised = ParallelRunner(jobs=2).run_points(points)
        assert [o.result.cycles for o in settled] == \
            [r.cycles for r in raised]

    def test_run_points_still_raises_on_failure(self, quick_loops):
        from repro.analysis.parallel import FleetError

        config = MachineConfig(window_size=8, max_cycles=2000)
        runner = ParallelRunner(jobs=2, serial_fallback=False)
        with pytest.raises(FleetError):
            runner.run_points(
                [SimPoint("ruu-bypass", self._hang_workload(), config)]
            )

    def test_settled_reports_cache_hits(self, quick_loops, tmp_path):
        runner = ParallelRunner(jobs=2, cache_dir=str(tmp_path))
        points = [SimPoint("rstu", w, CONFIG) for w in quick_loops[:2]]
        cold = runner.run_points_settled(points)
        warm = runner.run_points_settled(points)
        assert not any(o.cache_hit for o in cold)
        assert all(o.cache_hit for o in warm)


class TestPoolReuse:
    """reuse_pool=True keeps one warm executor across calls."""

    def test_one_pool_across_many_calls(self, quick_loops):
        runner = ParallelRunner(jobs=2, reuse_pool=True)
        try:
            for _ in range(3):
                runner.run_points(
                    [SimPoint("rstu", w, CONFIG)
                     for w in quick_loops[:2]]
                )
            assert runner.fleet.pools == 1
            assert runner.points_run == 6
        finally:
            runner.close()

    def test_fresh_pool_per_round_without_reuse(self, quick_loops):
        runner = ParallelRunner(jobs=2)
        runner.run_points(
            [SimPoint("rstu", w, CONFIG) for w in quick_loops[:2]]
        )
        runner.run_points(
            [SimPoint("rstu", w, CONFIG) for w in quick_loops[:2]]
        )
        assert runner.fleet.pools == 2

    def test_reused_results_identical_to_serial(self, quick_loops):
        points = [SimPoint("ruu-bypass", w, CONFIG)
                  for w in quick_loops[:3]]
        serial = [run_point(p) for p in points]
        with ParallelRunner(jobs=2, reuse_pool=True) as runner:
            warm = runner.run_points(points)
        assert [r.cycles for r in warm] == [r.cycles for r in serial]

    def test_close_is_idempotent(self):
        runner = ParallelRunner(jobs=2, reuse_pool=True)
        runner.run_points(healthy_points_for_reuse())
        runner.close()
        runner.close()


def healthy_points_for_reuse():
    loops = SUITES["quick"]()
    return [SimPoint("simple", w, CONFIG) for w in loops[:2]]
