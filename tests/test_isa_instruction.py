"""Unit tests for Instruction construction rules and opcode metadata."""

import pytest

from repro.isa import A, FUClass, Instruction, OpKind, Opcode, S
from repro.isa.opcodes import DEFAULT_LATENCY


class TestInstructionValidation:
    def test_alu_needs_dest(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.A_ADD, srcs=(A(1), A(2)))

    def test_store_must_not_have_dest(self):
        with pytest.raises(ValueError):
            Instruction(
                Opcode.STORE_S, dest=S(1), srcs=(S(2),), base=A(1), imm=0
            )

    def test_wrong_source_count(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.A_ADD, dest=A(1), srcs=(A(2),))

    def test_memory_needs_base(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD_S, dest=S(1), imm=0)

    def test_memory_base_must_be_a_bank(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD_S, dest=S(1), base=S(2), imm=0)

    def test_branch_needs_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR_ZERO, srcs=(A(0),))

    def test_immediate_required(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.A_IMM, dest=A(0))

    def test_sources_includes_base(self):
        inst = Instruction(
            Opcode.STORE_S, srcs=(S(1),), base=A(2), imm=0
        )
        assert inst.sources == (S(1), A(2))

    def test_sources_without_base(self):
        inst = Instruction(Opcode.A_ADD, dest=A(0), srcs=(A(1), A(2)))
        assert inst.sources == (A(1), A(2))


class TestOpcodeMetadata:
    def test_every_opcode_has_latency(self):
        for op in Opcode:
            assert op.default_latency >= 1

    def test_latency_table_covers_all_fu_classes(self):
        assert set(DEFAULT_LATENCY) == set(FUClass)

    def test_cray_latency_spot_checks(self):
        assert Opcode.A_ADD.default_latency == 2
        assert Opcode.A_MUL.default_latency == 6
        assert Opcode.F_ADD.default_latency == 6
        assert Opcode.F_MUL.default_latency == 7
        assert Opcode.F_RECIP.default_latency == 14
        assert Opcode.LOAD_S.default_latency == 11
        assert Opcode.S_AND.default_latency == 1

    def test_predicates(self):
        assert Opcode.LOAD_A.is_load and Opcode.LOAD_A.is_memory
        assert Opcode.STORE_T.is_store and not Opcode.STORE_T.has_dest
        assert Opcode.BR_MINUS.is_branch and Opcode.BR_MINUS.is_control_flow
        assert Opcode.JMP.is_control_flow and not Opcode.JMP.is_branch
        assert Opcode.A_ADD.has_dest and not Opcode.A_ADD.is_memory
        assert not Opcode.NOP.has_dest

    def test_parse(self):
        assert Opcode.parse("f_mul") is Opcode.F_MUL
        with pytest.raises(ValueError):
            Opcode.parse("NOSUCH")

    def test_kind_partitions(self):
        kinds = {op: op.kind for op in Opcode}
        assert kinds[Opcode.LOAD_B] is OpKind.LOAD
        assert kinds[Opcode.STORE_B] is OpKind.STORE
        assert kinds[Opcode.HALT] is OpKind.HALT

    def test_fu_assignment(self):
        assert Opcode.A_MUL.fu is FUClass.ADDR_MUL
        assert Opcode.MOV.fu is FUClass.TRANSMIT
        assert Opcode.S_SHR.fu is FUClass.SCALAR_SHIFT
        assert Opcode.LOAD_T.fu is FUClass.MEMORY
