"""Tests for the parameterized workload generator."""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import MachineConfig
from repro.trace import FunctionalExecutor, reference_state
from repro.workloads.generator import (
    GeneratorSpec,
    generate_workload,
    ilp_sweep,
    memory_sweep,
)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"streams": 0},
        {"streams": 4},
        {"memory_fraction": -0.1},
        {"memory_fraction": 1.5},
        {"working_set": 0},
        {"iterations": 0},
        {"body_ops": 0},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorSpec(**kwargs)

    def test_name_encodes_knobs(self):
        spec = GeneratorSpec(streams=3, memory_fraction=0.5, seed=9)
        assert "s3" in spec.name and "m50" in spec.name and "x9" in spec.name


class TestGeneratedPrograms:
    def test_deterministic(self):
        a = generate_workload(GeneratorSpec(seed=5))
        b = generate_workload(GeneratorSpec(seed=5))
        assert a.program.listing() == b.program.listing()
        assert a.initial_memory == b.initial_memory

    def test_different_seeds_differ(self):
        a = generate_workload(GeneratorSpec(seed=1))
        b = generate_workload(GeneratorSpec(seed=2))
        assert a.program.listing() != b.program.listing()

    @pytest.mark.parametrize("spec", [
        GeneratorSpec(),
        GeneratorSpec(streams=1, memory_fraction=0.0),
        GeneratorSpec(streams=3, memory_fraction=0.9, working_set=2),
        GeneratorSpec(branch_every=4, iterations=10),
        GeneratorSpec(memory_fraction=1.0, working_set=1, seed=3),
    ])
    def test_fault_free_and_engine_equivalent(self, spec):
        workload = generate_workload(spec)
        golden = reference_state(workload.program, workload.initial_memory)
        config = MachineConfig(window_size=10)
        for name in ("simple", "rstu", "ruu-bypass", "ruu-nobypass",
                     "spec-ruu", "dispatch-stack"):
            memory = workload.make_memory()
            engine = ENGINE_FACTORIES[name](workload.program, config,
                                            memory)
            result = engine.run()
            assert engine.interrupt_record is None, (name, spec)
            assert engine.regs == golden.regs, (name, spec)
            assert memory == golden.memory, (name, spec)
            assert result.instructions == golden.executed

    def test_branches_emitted_when_requested(self):
        workload = generate_workload(GeneratorSpec(branch_every=3))
        executor = FunctionalExecutor(workload.program,
                                      workload.make_memory())
        trace = executor.run()
        # more branches than just the loop back-edge
        assert trace.branch_count() > GeneratorSpec().iterations

    def test_memory_fraction_controls_traffic(self):
        low = generate_workload(
            GeneratorSpec(memory_fraction=0.05, seed=1)
        )
        high = generate_workload(
            GeneratorSpec(memory_fraction=0.9, seed=1)
        )

        def memory_ops(workload):
            executor = FunctionalExecutor(workload.program,
                                          workload.make_memory())
            return executor.run().memory_count()

        assert memory_ops(high) > 2 * memory_ops(low)


class TestSweeps:
    def test_ilp_sweep_monotone_for_ruu(self):
        """More independent streams -> the RUU extracts more overlap."""
        config = MachineConfig(window_size=16)
        rates = []
        for workload in ilp_sweep(iterations=16, body_ops=18, seed=7,
                                  memory_fraction=0.0):
            engine = ENGINE_FACTORIES["ruu-bypass"](
                workload.program, config, workload.make_memory()
            )
            result = engine.run()
            rates.append(result.issue_rate)
        assert rates[1] > rates[0]

    def test_memory_sweep_builds_four(self):
        workloads = memory_sweep(iterations=4, body_ops=8)
        assert len(workloads) == 4
        assert len({w.name for w in workloads}) == 4
