"""The headline integration test: every engine, on every workload,
reaches exactly the golden model's architectural state.

This is the repository's strongest invariant -- all 13 machines are
*execution-driven* and compute real values, so any issue-logic bug
(wrong tag, missed broadcast, mis-ordered commit, bad squash) shows up
as a state divergence on at least one of the 20 workloads.
"""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import MachineConfig

from tests.support import run_and_check

ENGINES = sorted(ENGINE_FACTORIES)
CONFIG = MachineConfig(window_size=10)
SMALL = MachineConfig(window_size=3)


@pytest.mark.parametrize("engine_name", ENGINES)
def test_equivalence_on_all_workloads(engine_name, all_workloads, golden):
    builder = ENGINE_FACTORIES[engine_name]
    for workload in all_workloads:
        run_and_check(builder, workload, golden[workload.name], CONFIG)


@pytest.mark.parametrize("engine_name", ["rstu", "ruu-bypass",
                                         "ruu-nobypass", "spec-ruu"])
def test_equivalence_with_tiny_window(engine_name, livermore_loops, golden):
    """Resource starvation must never change results, only timing."""
    builder = ENGINE_FACTORIES[engine_name]
    for workload in livermore_loops[:6]:
        run_and_check(builder, workload, golden[workload.name], SMALL)


@pytest.mark.parametrize("engine_name", ["ruu-bypass", "rstu"])
def test_equivalence_with_one_load_register(engine_name, livermore_loops,
                                            golden):
    config = MachineConfig(window_size=10, n_load_registers=1)
    builder = ENGINE_FACTORIES[engine_name]
    for workload in livermore_loops[:4]:
        run_and_check(builder, workload, golden[workload.name], config)


@pytest.mark.parametrize("counter_bits", [1, 2, 4])
def test_equivalence_across_counter_widths(counter_bits, livermore_loops,
                                           golden):
    config = MachineConfig(window_size=10, counter_bits=counter_bits)
    builder = ENGINE_FACTORIES["ruu-bypass"]
    for workload in livermore_loops[:4]:
        run_and_check(builder, workload, golden[workload.name], config)


def test_equivalence_with_two_dispatch_paths(livermore_loops, golden):
    config = MachineConfig(window_size=10, dispatch_paths=2)
    for name in ("rstu", "ruu-bypass"):
        for workload in livermore_loops[:4]:
            run_and_check(
                ENGINE_FACTORIES[name], workload, golden[workload.name],
                config,
            )


def test_retirement_has_no_duplicates(livermore_loops):
    """Every dynamic instruction retires exactly once in the RUU."""
    from repro.core import RUUEngine
    workload = livermore_loops[0]
    engine = RUUEngine(workload.program, CONFIG,
                       memory=workload.make_memory())
    engine.run()
    assert len(set(engine.retire_log)) == len(engine.retire_log)
    assert sorted(engine.retire_log) == list(range(len(engine.retire_log)))
