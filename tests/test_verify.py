"""Tests for the self-verification module and its CLI command."""

import pytest

from repro.__main__ import main
from repro.analysis import verify_all, verify_engine
from repro.machine import MachineConfig
from repro.workloads import dependency_chain, livermore_suite


@pytest.fixture(scope="module")
def quick():
    return livermore_suite("quick")


class TestVerifyEngine:
    def test_good_engine_passes(self, quick):
        report = verify_engine("ruu-bypass", quick,
                               MachineConfig(window_size=8))
        assert report.passed
        assert report.workloads_checked == 14
        assert "OK" in report.describe()

    def test_all_engines_pass(self, quick):
        reports = verify_all(quick[:3], MachineConfig(window_size=8))
        assert len(reports) == 14  # all registered engines
        assert all(report.passed for report in reports)

    def test_subset_of_engines(self, quick):
        reports = verify_all(quick[:2], engines=["simple", "rstu"])
        assert [r.engine for r in reports] == ["simple", "rstu"]

    def test_unknown_engine_raises(self, quick):
        with pytest.raises(KeyError):
            verify_engine("nope", quick[:1])

    def test_failure_detected(self, quick, monkeypatch):
        """Sabotage an engine's result and check the report catches it."""
        from repro.analysis.sweeps import ENGINE_FACTORIES
        from repro.isa import A

        real = ENGINE_FACTORIES["simple"]

        def broken(program, config, memory):
            engine = real(program, config, memory)
            original_run = engine.run

            def run(*args, **kwargs):
                result = original_run(*args, **kwargs)
                engine.regs.write(A(6), 123456)  # corrupt a register
                return result

            engine.run = run
            return engine

        monkeypatch.setitem(ENGINE_FACTORIES, "simple", broken)
        report = verify_engine("simple", [dependency_chain(30)])
        assert not report.passed
        assert "register" in report.describe()


class TestVerifyCLI:
    def test_verify_ok(self, capsys):
        rc = main(["verify", "ruu-bypass", "--suite", "synthetic"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_unknown_engine(self, capsys):
        rc = main(["verify", "not-an-engine"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().out
