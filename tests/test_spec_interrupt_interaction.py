"""Interaction tests: speculation plus precise interrupts.

The §7 machine must keep the §5 guarantee: a trap older than pending
predicted branches squashes them along with everything else, the state
is the sequential prefix, and execution restarts cleanly -- including
when the restart immediately re-enters speculation.
"""

import pytest

from repro.core import (
    AlwaysTakenPredictor,
    SpeculativeRUUEngine,
    StaticBTFNPredictor,
    check_precision,
    run_with_recovery,
)
from repro.isa import assemble
from repro.machine import MachineConfig
from repro.trace import reference_state
from repro.workloads import branch_heavy, fault_probe, lll1

CONFIG = MachineConfig(window_size=16)


def spec_factory(predictor_cls=StaticBTFNPredictor):
    return lambda program, memory: SpeculativeRUUEngine(
        program, CONFIG, memory=memory, predictor=predictor_cls(),
    )


class TestFaultDuringSpeculation:
    @pytest.mark.parametrize("predictor_cls", [StaticBTFNPredictor,
                                               AlwaysTakenPredictor])
    def test_precise_and_restartable(self, predictor_cls):
        workload = fault_probe(fault_index=7)
        engine, records = run_with_recovery(
            spec_factory(predictor_cls), workload.program,
            workload.initial_memory, workload.fault_address,
        )
        assert len(records) == 1
        assert records[0].claims_precise
        clean = reference_state(workload.program, workload.initial_memory)
        assert engine.regs == clean.regs
        assert engine.memory == clean.memory
        assert not engine._pending_branches

    def test_precision_checked_against_prefix(self):
        workload = lll1()
        memory = workload.initial_memory.copy()
        memory.inject_fault(2008)  # y[8]
        engine = SpeculativeRUUEngine(workload.program, CONFIG,
                                      memory=memory)
        engine.run()
        assert engine.interrupt_record is not None
        report = check_precision(engine, workload.program,
                                 workload.initial_memory)
        assert report.precise, report.describe()

    def test_fault_on_branchy_code(self):
        workload = branch_heavy(length=80)
        # fault one of the value loads mid-stream
        fault_address = 2000 + 41
        engine, records = run_with_recovery(
            spec_factory(), workload.program, workload.initial_memory,
            fault_address,
        )
        assert records and records[0].claims_precise
        clean = reference_state(workload.program, workload.initial_memory)
        assert engine.regs == clean.regs
        assert engine.memory == clean.memory
        failures = workload.validate(engine.memory)
        assert not failures

    def test_wrong_path_load_fault_never_traps(self):
        """A page fault raised by a *wrong-path* load must be squashed,
        not serviced: predicted-not-taken runs into a load of an
        unmapped address, but the branch is actually taken."""
        source = """
            A_IMM A1, 900        ; unmapped page
            A_IMM A2, 3
            A_MUL A0, A2, A2     ; slow condition, nonzero -> taken
            BR_NONZERO A0, safe
            LOAD_S S1, A1[0]     ; wrong path: would page-fault
        safe:
            A_IMM A3, 1
            HALT
        """
        program = assemble(source)

        class NotTaken(StaticBTFNPredictor):
            def predict(self, inst):
                return False

        from repro.machine import Memory
        memory = Memory()
        memory.inject_fault(900)
        engine = SpeculativeRUUEngine(program, CONFIG, memory=memory,
                                      predictor=NotTaken())
        result = engine.run()
        assert engine.interrupt_record is None
        assert result.mispredictions == 1
        golden = reference_state(program, Memory())
        assert engine.regs == golden.regs
