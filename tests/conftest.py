"""Shared fixtures: cached workloads, golden states, engine helpers."""

from __future__ import annotations

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import CRAY1_LIKE, MachineConfig
from repro.trace import reference_state
from repro.workloads import all_loops
from repro.workloads.synthetic import (
    branch_heavy,
    dependency_chain,
    fault_probe,
    independent_streams,
    memory_alias_kernel,
    register_pressure,
)


@pytest.fixture(scope="session")
def livermore_loops():
    """The 14 Livermore workloads (instantiated once per session)."""
    return all_loops()


@pytest.fixture(scope="session")
def synthetic_workloads():
    return [
        dependency_chain(),
        independent_streams(),
        memory_alias_kernel(),
        branch_heavy(),
        register_pressure(),
        fault_probe(),
    ]


@pytest.fixture(scope="session")
def all_workloads(livermore_loops, synthetic_workloads):
    return list(livermore_loops) + list(synthetic_workloads)


@pytest.fixture(scope="session")
def golden(all_workloads):
    """Golden final state per workload name (functional executor)."""
    return {
        workload.name: reference_state(
            workload.program, workload.initial_memory
        )
        for workload in all_workloads
    }


@pytest.fixture
def config():
    """A small default machine configuration for unit tests."""
    return MachineConfig(window_size=8)
