"""The observability subsystem (`repro.obs`): recorder, attribution,
Chrome export and trace diff.

Three contracts are pinned here.  Attaching a recorder must never
change simulated behaviour (cycle counts, stall mix, architectural
state).  Attribution must classify *every* cycle -- the zoo-wide sweep
lives in ``test_full_invariant_sweep.py``; here the unit-level error
paths and the interrupt/misprediction corners are exercised.  And the
Chrome exporter's output must satisfy its own in-repo validator, which
is also what CI runs against every engine.
"""

import json

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.core import RUUEngine, SpeculativeRUUEngine, StaticBTFNPredictor
from repro.machine import MachineConfig
from repro.machine.timeline import Timeline
from repro.obs import (
    AttributionError,
    TraceRecorder,
    attribute_cycles,
    attribution_delta,
    chrome_trace,
    diff_against_iss,
    diff_recorders,
    diff_stage_events,
    structure_occupancy,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import COMMITTED, DRAIN, UNACCOUNTED
from repro.trace import FunctionalExecutor
from repro.workloads import branch_heavy, fault_probe


def recorded_run(workload, config, engine_name="ruu-bypass",
                 detail=True, sample_every=1):
    builder = ENGINE_FACTORIES[engine_name]
    engine = builder(workload.program, config, workload.make_memory())
    recorder = TraceRecorder(detail=detail, sample_every=sample_every)
    engine.recorder = recorder
    result = engine.run()
    return engine, recorder, result


# ----------------------------------------------------------------------
# TraceRecorder
# ----------------------------------------------------------------------

class TestRecorder:
    def test_no_recorder_by_default(self, livermore_loops, config):
        workload = livermore_loops[0]
        engine = RUUEngine(workload.program, config,
                           memory=workload.make_memory())
        assert engine.recorder is None

    def test_recording_does_not_perturb_the_simulation(
            self, livermore_loops, config):
        workload = livermore_loops[2]
        bare = RUUEngine(workload.program, config,
                         memory=workload.make_memory())
        bare_result = bare.run()
        engine, recorder, result = recorded_run(workload, config)
        assert result.cycles == bare_result.cycles
        assert result.instructions == bare_result.instructions
        assert dict(result.stalls) == dict(bare_result.stalls)
        assert engine.regs == bare.regs

    def test_stage_events_match_the_timeline(self, livermore_loops,
                                             config):
        workload = livermore_loops[0]
        builder = ENGINE_FACTORIES["ruu-bypass"]
        engine = builder(workload.program, config, workload.make_memory())
        engine.timeline = Timeline()
        recorder = TraceRecorder()
        engine.recorder = recorder
        engine.run()
        for seq in engine.timeline.sequences():
            assert recorder.stages.get(seq) \
                == engine.timeline.events_for(seq), seq

    def test_streaming_mode_keeps_no_detail(self, livermore_loops,
                                            config):
        _, recorder, result = recorded_run(
            livermore_loops[0], config, detail=False)
        assert recorder.cycles_seen == result.cycles
        assert recorder.stages == {}
        assert recorder.samples == []
        assert recorder.cycle_buckets == []
        assert sum(recorder.buckets.values()) == result.cycles

    def test_run_end_snapshot(self, livermore_loops, config):
        engine, recorder, result = recorded_run(livermore_loops[0],
                                                config)
        assert recorder.engine_name == engine.name
        assert recorder.workload == workload_name(livermore_loops[0])
        assert recorder.final_cycles == result.cycles
        assert recorder.commit_order == list(engine.retire_log)
        assert not recorder.interrupted

    def test_lifetime_spans_decode_to_retire(self, livermore_loops,
                                             config):
        _, recorder, result = recorded_run(livermore_loops[0], config)
        seq = recorder.commit_order[0]
        lifetime = recorder.lifetime(seq)
        assert lifetime is not None
        first, last = lifetime
        assert 0 <= first <= last <= result.cycles
        assert recorder.lifetime(10**9) is None

    def test_sample_every_thins_the_tape(self, livermore_loops, config):
        _, dense, _ = recorded_run(livermore_loops[0], config)
        _, sparse, _ = recorded_run(livermore_loops[0], config,
                                    sample_every=16)
        assert 0 < len(sparse.samples) < len(dense.samples)

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_occupancy_duck_typing(self, livermore_loops, config):
        expectations = {
            "ruu-bypass": "window",
            "dispatch-stack": "stack",
            "tomasulo": "stations",
        }
        workload = livermore_loops[0]
        for engine_name, key in expectations.items():
            _, recorder, _ = recorded_run(workload, config, engine_name)
            keys = set()
            for _, occupancy, _, _ in recorder.samples:
                keys.update(occupancy)
            assert key in keys, engine_name
        engine = RUUEngine(workload.program, config,
                           memory=workload.make_memory())
        assert "window" in structure_occupancy(engine)

    def test_describe_mentions_buckets(self, livermore_loops, config):
        _, recorder, _ = recorded_run(livermore_loops[0], config)
        text = recorder.describe()
        assert COMMITTED in text
        assert "cycles" in text


# ----------------------------------------------------------------------
# Cycle attribution
# ----------------------------------------------------------------------

class TestAttribution:
    def test_partition_sums_to_cycles(self, livermore_loops, config):
        _, recorder, result = recorded_run(livermore_loops[2], config)
        attribution = attribute_cycles(result, recorder)
        assert sum(attribution.buckets.values()) == result.cycles
        assert attribution.unaccounted == 0
        assert attribution.buckets[COMMITTED] > 0
        assert attribution.buckets.get(DRAIN, 0) > 0
        assert 0.0 < attribution.utilization <= 1.0

    def test_stall_events_reconcile(self, livermore_loops, config):
        _, recorder, result = recorded_run(livermore_loops[2], config)
        attribution = attribute_cycles(result, recorder)
        assert attribution.stall_events == dict(result.stalls)

    def test_late_attachment_is_rejected(self, livermore_loops, config):
        workload = livermore_loops[0]
        engine = RUUEngine(workload.program, config,
                           memory=workload.make_memory())
        result = engine.run()
        with pytest.raises(AttributionError):
            attribute_cycles(result, TraceRecorder())

    def test_interrupted_run_is_fully_attributed(self, config):
        probe = fault_probe()
        memory = probe.make_memory()
        memory.inject_fault(probe.fault_address)
        engine = RUUEngine(probe.program, config, memory=memory)
        recorder = TraceRecorder()
        engine.recorder = recorder
        result = engine.run()
        assert engine.interrupt_record is not None
        attribution = attribute_cycles(result, recorder)
        assert sum(attribution.buckets.values()) == result.cycles
        assert attribution.unaccounted == 0
        assert recorder.interrupted

    def test_misprediction_rollback_is_fully_attributed(self, config):
        workload = branch_heavy()
        engine = SpeculativeRUUEngine(
            workload.program, config, memory=workload.make_memory(),
            predictor=StaticBTFNPredictor(),
        )
        recorder = TraceRecorder()
        engine.recorder = recorder
        result = engine.run()
        attribution = attribute_cycles(result, recorder)
        assert attribution.unaccounted == 0
        # Wrong-path retirements were rolled back: the final commit
        # stream is exactly the architectural one.
        assert recorder.commit_order == list(engine.retire_log)
        assert len(recorder.commit_order) == result.instructions

    def test_json_and_describe(self, livermore_loops, config):
        _, recorder, result = recorded_run(livermore_loops[0], config)
        attribution = attribute_cycles(result, recorder)
        payload = attribution.to_json()
        assert payload["cycles"] == result.cycles
        assert sum(payload["buckets"].values()) == result.cycles
        json.dumps(payload)  # wire-serializable
        assert "cycle attribution" in attribution.describe()

    def test_delta_covers_both_runs(self, livermore_loops, config):
        _, rec_a, res_a = recorded_run(livermore_loops[0], config,
                                       "ruu-bypass")
        _, rec_b, res_b = recorded_run(livermore_loops[0], config,
                                       "tomasulo")
        delta = attribution_delta(attribute_cycles(res_a, rec_a),
                                  attribute_cycles(res_b, rec_b))
        assert sum(a for a, _ in delta.values()) == res_a.cycles
        assert sum(b for _, b in delta.values()) == res_b.cycles


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------

class TestChromeExport:
    def test_document_validates(self, livermore_loops, config):
        _, recorder, result = recorded_run(livermore_loops[2], config)
        document = chrome_trace(recorder)
        assert validate_chrome_trace(document, cycles=result.cycles) \
            == []

    def test_document_structure(self, livermore_loops, config):
        _, recorder, _ = recorded_run(livermore_loops[2], config)
        events = chrome_trace(recorder)["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "b", "e", "C"}
        names = {event["name"] for event in events if event["ph"] == "M"}
        assert "process_name" in names
        begins = sum(1 for e in events if e["ph"] == "b")
        ends = sum(1 for e in events if e["ph"] == "e")
        assert begins == ends > 0

    def test_streaming_recorder_rejected(self, livermore_loops, config):
        _, recorder, _ = recorded_run(livermore_loops[0], config,
                                      detail=False)
        with pytest.raises(ValueError):
            chrome_trace(recorder)

    def test_write_round_trips(self, livermore_loops, config, tmp_path):
        _, recorder, result = recorded_run(livermore_loops[0], config)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), recorder)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document, cycles=result.cycles) \
            == []
        assert document["otherData"]["cycles"] == result.cycles

    def test_counter_thinning(self, livermore_loops, config):
        _, recorder, _ = recorded_run(livermore_loops[0], config)
        dense = chrome_trace(recorder, counter_every=1)["traceEvents"]
        sparse = chrome_trace(recorder, counter_every=32)["traceEvents"]
        assert len(sparse) < len(dense)

    @pytest.mark.parametrize("document, fragment", [
        ("nope", "expected object"),
        ({"traceEvents": []}, "non-empty"),
        ({"traceEvents": [{"ph": "Q", "name": "x", "pid": 0}]},
         "unknown phase"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 1}]},
         "positive dur"),
        ({"traceEvents": [{"ph": "b", "name": "x", "pid": 0, "ts": 1,
                           "id": 7}]},
         "never closed"),
        ({"traceEvents": [{"ph": "e", "name": "x", "pid": 0, "ts": 1,
                           "id": 7}]},
         "without matching begin"),
    ])
    def test_validator_rejects(self, document, fragment):
        problems = validate_chrome_trace(document)
        assert any(fragment in problem for problem in problems), problems

    def test_validator_catches_timestamps_beyond_the_run(
            self, livermore_loops, config):
        _, recorder, result = recorded_run(livermore_loops[0], config)
        document = chrome_trace(recorder)
        problems = validate_chrome_trace(document, cycles=1)
        assert any("beyond" in problem for problem in problems)


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------

class TestDiff:
    def test_self_diff_is_identical(self, livermore_loops, config):
        _, rec_a, res_a = recorded_run(livermore_loops[0], config)
        _, rec_b, res_b = recorded_run(livermore_loops[0], config)
        diff = diff_recorders(rec_a, rec_b, res_a, res_b)
        assert diff.identical
        assert diff.commit_divergence is None
        assert "no divergence" in diff.describe()

    def test_cross_engine_diff_finds_divergence(self, livermore_loops,
                                                config):
        workload = livermore_loops[2]
        _, rec_a, res_a = recorded_run(workload, config, "ruu-bypass")
        _, rec_b, res_b = recorded_run(workload, config, "tomasulo")
        diff = diff_recorders(rec_a, rec_b, res_a, res_b)
        assert not diff.identical
        assert diff.cycles_a == res_a.cycles
        assert diff.cycles_b == res_b.cycles
        assert any(a != b for a, b in diff.bucket_deltas.values())
        json.dumps(diff.to_json())

    def test_workload_mismatch_rejected(self, livermore_loops, config):
        _, rec_a, _ = recorded_run(livermore_loops[0], config)
        _, rec_b, _ = recorded_run(livermore_loops[1], config)
        with pytest.raises(ValueError):
            diff_recorders(rec_a, rec_b)

    def test_stage_diff_works_on_timeline_json(self, livermore_loops,
                                               config):
        workload = livermore_loops[0]
        builder = ENGINE_FACTORIES["ruu-bypass"]
        engine = builder(workload.program, config, workload.make_memory())
        engine.timeline = Timeline()
        engine.run()
        events = Timeline.from_json(engine.timeline.to_json())
        maps = {
            seq: events.events_for(seq) for seq in events.sequences()
        }
        deltas = diff_stage_events(maps, maps)
        assert deltas
        assert all(delta.delta == 0 for delta in deltas)

    def test_precise_engine_matches_the_iss(self, livermore_loops,
                                            config):
        workload = livermore_loops[2]
        _, recorder, _ = recorded_run(workload, config, "ruu-bypass")
        golden = FunctionalExecutor(
            workload.program, workload.make_memory()).run()
        assert diff_against_iss(recorder, golden) is None

    def test_imprecise_engine_diverges_from_the_iss(
            self, livermore_loops, config):
        workload = livermore_loops[2]
        _, recorder, _ = recorded_run(workload, config, "tomasulo")
        golden = FunctionalExecutor(
            workload.program, workload.make_memory()).run()
        divergence = diff_against_iss(recorder, golden)
        assert divergence is not None
        assert divergence.seq_a != divergence.seq_b


# ----------------------------------------------------------------------
# Parallel-runner integration ("trace": true path)
# ----------------------------------------------------------------------

class TestRunPointTrace:
    def test_traced_point_carries_attribution(self, livermore_loops):
        from repro.analysis.parallel import SimPoint, run_point
        workload = livermore_loops[0]
        config = MachineConfig(window_size=8)
        traced = run_point(
            SimPoint("ruu-bypass", workload, config, trace=True))
        attribution = traced.extra["attribution"]
        assert sum(attribution["buckets"].values()) == traced.cycles
        assert attribution["buckets"].get(UNACCOUNTED, 0) == 0
        plain = run_point(SimPoint("ruu-bypass", workload, config))
        assert "attribution" not in plain.extra
        assert plain.cycles == traced.cycles


def workload_name(workload):
    return workload.program.name
