"""Tests for the simulation result cache."""

import dataclasses
import json
import os

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.analysis.cache import (
    ResultCache,
    _result_from_json,
    _result_to_json,
    cache_key,
)
from repro.isa.opcodes import FUClass
from repro.machine import MachineConfig
from repro.workloads import dependency_chain, fault_probe, lll3


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


CONFIG = MachineConfig(window_size=8)


class TestKeying:
    def test_key_is_stable(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) == \
            cache_key("rstu", workload, CONFIG)

    def test_key_varies_with_engine(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) != \
            cache_key("simple", workload, CONFIG)

    def test_key_varies_with_config(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) != \
            cache_key("rstu", workload, CONFIG.with_(window_size=9))

    def test_key_varies_with_program(self):
        assert cache_key("rstu", dependency_chain(30), CONFIG) != \
            cache_key("rstu", dependency_chain(31), CONFIG)

    def test_key_varies_with_data(self):
        a = dependency_chain(30)
        b = dependency_chain(30)
        b.initial_memory.poke(1000, 42.0)
        assert cache_key("rstu", a, CONFIG) != cache_key("rstu", b, CONFIG)

    def test_every_config_field_perturbs_key(self):
        """The fingerprint is derived from ``dataclasses.fields``, so a
        field added to MachineConfig later can never be silently left
        out of the cache key and serve stale results."""
        workload = dependency_chain(30)
        base_key = cache_key("rstu", workload, CONFIG)
        for field in dataclasses.fields(MachineConfig):
            value = getattr(CONFIG, field.name)
            if field.name == "latencies":
                first = next(iter(FUClass))
                perturbed = CONFIG.with_latency(
                    first, CONFIG.latency(first) + 1
                )
            elif isinstance(value, int):
                perturbed = CONFIG.with_(**{field.name: value + 1})
            else:  # pragma: no cover - future non-int fields
                pytest.fail(
                    f"add a perturbation rule for new config field "
                    f"{field.name!r}"
                )
            assert cache_key("rstu", workload, perturbed) != base_key, \
                f"config field {field.name!r} does not perturb the key"


class TestCaching:
    def test_miss_then_hit(self, cache):
        workload = dependency_chain(30)
        builder = ENGINE_FACTORIES["rstu"]
        first = cache.run(builder, "rstu", workload, CONFIG)
        second = cache.run(builder, "rstu", workload, CONFIG)
        assert cache.misses == 1 and cache.hits == 1
        assert second.cycles == first.cycles
        assert second.instructions == first.instructions
        assert second.stalls == first.stalls
        assert second.extra.get("from_cache")

    def test_cached_equals_fresh(self, cache):
        workload = lll3(n=50)
        builder = ENGINE_FACTORIES["ruu-bypass"]
        cache.run(builder, "ruu-bypass", workload, CONFIG)
        cached = cache.run(builder, "ruu-bypass", workload, CONFIG)
        fresh = builder(workload.program, CONFIG,
                        workload.make_memory()).run()
        assert cached.cycles == fresh.cycles
        assert cached.issue_rate == fresh.issue_rate

    def test_interrupted_runs_cache_and_round_trip(self, cache):
        """Since schema 3, injected fault addresses are part of the key
        and the interrupt record round-trips, so interrupted runs are
        cacheable -- and servicing the fault changes the key."""
        workload = fault_probe()
        workload.initial_memory.inject_fault(workload.fault_address)
        builder = ENGINE_FACTORIES["ruu-bypass"]
        first = cache.run(builder, "ruu-bypass", workload, CONFIG)
        second = cache.run(builder, "ruu-bypass", workload, CONFIG)
        assert cache.misses == 1 and cache.hits == 1
        assert second.extra.get("from_cache")
        restored = second.extra["interrupt"]
        assert restored.same_event(first.extra["interrupt"])
        assert restored.claims_precise
        # A fault-free copy of the same workload must not hit the
        # interrupted entry.
        workload.initial_memory.service_fault(workload.fault_address)
        clean = cache.run(builder, "ruu-bypass", workload, CONFIG)
        assert cache.misses == 2
        assert clean.interrupts == 0

    def test_clear(self, cache):
        workload = dependency_chain(30)
        cache.run(ENGINE_FACTORIES["simple"], "simple", workload, CONFIG)
        assert cache.clear() == 1
        cache.run(ENGINE_FACTORIES["simple"], "simple", workload, CONFIG)
        assert cache.misses == 2


class TestAtomicityAndCorruption:
    def _entry_path(self, cache, workload, engine="rstu"):
        return cache._path(cache_key(engine, workload, CONFIG))

    def test_put_leaves_no_temp_files(self, cache):
        workload = dependency_chain(30)
        cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, CONFIG)
        leftovers = [name for name in os.listdir(cache.directory)
                     if name.endswith(".tmp")]
        assert leftovers == []
        assert os.path.exists(self._entry_path(cache, workload))

    @pytest.mark.parametrize("garbage", [
        "",                      # interrupted before any byte was written
        "{\"engine\": \"rs",     # truncated mid-write
        "not json at all",
        "[1, 2, 3]",             # parseable but the wrong shape
        json.dumps({"schema": 999, "engine": "rstu"}),  # future schema
        json.dumps({"schema": 2}),                      # missing fields
    ])
    def test_corrupt_entry_is_a_miss(self, cache, garbage):
        workload = dependency_chain(30)
        builder = ENGINE_FACTORIES["rstu"]
        fresh = cache.run(builder, "rstu", workload, CONFIG)
        path = self._entry_path(cache, workload)
        with open(path, "w") as handle:
            handle.write(garbage)
        result = cache.run(builder, "rstu", workload, CONFIG)
        assert cache.hits == 0 and cache.misses == 2
        assert result.cycles == fresh.cycles
        # the corrupt entry was replaced by a good one: next read hits
        again = cache.run(builder, "rstu", workload, CONFIG)
        assert cache.hits == 1
        assert again.cycles == fresh.cycles

    def test_corrupt_entry_is_deleted_on_get(self, cache):
        workload = dependency_chain(30)
        cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, CONFIG)
        path = self._entry_path(cache, workload)
        with open(path, "w") as handle:
            handle.write("garbage")
        assert cache.get(cache_key("rstu", workload, CONFIG)) is None
        assert not os.path.exists(path)


class TestDegradation:
    """Cache trouble can never fail a sweep: a broken directory
    disables the cache (one warning), an unreadable entry is a miss.

    These tests run as root in CI containers, where permission bits are
    ignored -- so the failures are provoked structurally (a *file*
    where a directory must be, and vice versa), which no euid can
    bypass."""

    def test_uncreatable_directory_disables_cache(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir must go")
        with pytest.warns(RuntimeWarning, match="continuing without"):
            cache = ResultCache(str(blocker / "cache"))
        assert cache.disabled
        workload = dependency_chain(30)
        result = cache.run(
            ENGINE_FACTORIES["rstu"], "rstu", workload, CONFIG
        )
        assert result.cycles > 0
        assert cache.misses == 1 and cache.hits == 0

    def test_unreadable_entry_is_a_miss(self, cache):
        workload = dependency_chain(30)
        builder = ENGINE_FACTORIES["rstu"]
        fresh = cache.run(builder, "rstu", workload, CONFIG)
        path = cache._path(cache_key("rstu", workload, CONFIG))
        os.remove(path)
        os.mkdir(path)  # a directory where the entry file should be
        try:
            with pytest.warns(RuntimeWarning, match="cannot read"):
                again = cache.run(builder, "rstu", workload, CONFIG)
        finally:
            os.rmdir(path)
        assert again.cycles == fresh.cycles
        assert cache.misses == 2 and cache.hits == 0
        assert not cache.disabled  # only that entry degraded

    def test_warning_fires_once(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.warns(RuntimeWarning):
            cache = ResultCache(str(blocker / "cache"))
        workload = dependency_chain(30)
        with warnings_as_errors():
            cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, CONFIG)
            cache.run(ENGINE_FACTORIES["rstu"], "rstu", workload, CONFIG)
            assert cache.clear() == 0

    def test_unwritable_entry_degrades_put(self, cache):
        workload = dependency_chain(30)
        builder = ENGINE_FACTORIES["rstu"]
        key = cache_key("rstu", workload, CONFIG)
        os.mkdir(cache._path(key))  # unreadable entry + os.replace fails
        try:
            # One warning covers the whole degradation (warn-once); both
            # the blocked read and the blocked publish stay non-fatal.
            with pytest.warns(RuntimeWarning, match="continuing without"):
                cache.run(builder, "rstu", workload, CONFIG)
        finally:
            os.rmdir(cache._path(key))
        assert cache.misses == 1
        leftovers = [name for name in os.listdir(cache.directory)
                     if name.endswith(".tmp")]
        assert leftovers == []


class warnings_as_errors:
    def __enter__(self):
        import warnings
        self._ctx = warnings.catch_warnings()
        self._ctx.__enter__()
        warnings.simplefilter("error")
        return self

    def __exit__(self, *exc_info):
        return self._ctx.__exit__(*exc_info)


class TestRoundTrip:
    def test_round_trip_is_lossless(self):
        """Serialize -> JSON text -> deserialize reproduces the result
        of a real simulation exactly, ``extra`` included."""
        workload = lll3(n=50)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program, CONFIG, workload.make_memory()
        )
        fresh = engine.run()
        assert fresh.extra, "expected engine telemetry in extra"
        payload = json.loads(json.dumps(_result_to_json(fresh)))
        restored = _result_from_json(payload)
        assert restored == fresh

    def test_round_trip_covers_every_simresult_field(self):
        """A field added to SimResult later is serialized automatically
        (and its absence in old entries reads as corrupt -> miss)."""
        from repro.machine.stats import SimResult

        payload = _result_to_json(
            SimResult(engine="simple", workload="w", cycles=1,
                      instructions=1)
        )
        for field in dataclasses.fields(SimResult):
            assert field.name in payload

    def test_cached_result_preserves_extra(self, cache):
        workload = lll3(n=50)
        builder = ENGINE_FACTORIES["ruu-bypass"]
        fresh = cache.run(builder, "ruu-bypass", workload, CONFIG)
        cached = cache.run(builder, "ruu-bypass", workload, CONFIG)
        assert cached.extra.pop("from_cache") is True
        assert cached.extra == fresh.extra
        assert cached.stalls == fresh.stalls
        assert cached == fresh
