"""Tests for the simulation result cache."""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.analysis.cache import ResultCache, cache_key
from repro.machine import MachineConfig
from repro.workloads import dependency_chain, fault_probe, lll3


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


CONFIG = MachineConfig(window_size=8)


class TestKeying:
    def test_key_is_stable(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) == \
            cache_key("rstu", workload, CONFIG)

    def test_key_varies_with_engine(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) != \
            cache_key("simple", workload, CONFIG)

    def test_key_varies_with_config(self):
        workload = dependency_chain(30)
        assert cache_key("rstu", workload, CONFIG) != \
            cache_key("rstu", workload, CONFIG.with_(window_size=9))

    def test_key_varies_with_program(self):
        assert cache_key("rstu", dependency_chain(30), CONFIG) != \
            cache_key("rstu", dependency_chain(31), CONFIG)

    def test_key_varies_with_data(self):
        a = dependency_chain(30)
        b = dependency_chain(30)
        b.initial_memory.poke(1000, 42.0)
        assert cache_key("rstu", a, CONFIG) != cache_key("rstu", b, CONFIG)


class TestCaching:
    def test_miss_then_hit(self, cache):
        workload = dependency_chain(30)
        builder = ENGINE_FACTORIES["rstu"]
        first = cache.run(builder, "rstu", workload, CONFIG)
        second = cache.run(builder, "rstu", workload, CONFIG)
        assert cache.misses == 1 and cache.hits == 1
        assert second.cycles == first.cycles
        assert second.instructions == first.instructions
        assert second.stalls == first.stalls
        assert second.extra.get("from_cache")

    def test_cached_equals_fresh(self, cache):
        workload = lll3(n=50)
        builder = ENGINE_FACTORIES["ruu-bypass"]
        cache.run(builder, "ruu-bypass", workload, CONFIG)
        cached = cache.run(builder, "ruu-bypass", workload, CONFIG)
        fresh = builder(workload.program, CONFIG,
                        workload.make_memory()).run()
        assert cached.cycles == fresh.cycles
        assert cached.issue_rate == fresh.issue_rate

    def test_interrupted_runs_not_cached(self, cache):
        workload = fault_probe()
        workload.initial_memory.inject_fault(workload.fault_address)
        builder = ENGINE_FACTORIES["ruu-bypass"]
        cache.run(builder, "ruu-bypass", workload, CONFIG)
        cache.run(builder, "ruu-bypass", workload, CONFIG)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_clear(self, cache):
        workload = dependency_chain(30)
        cache.run(ENGINE_FACTORIES["simple"], "simple", workload, CONFIG)
        assert cache.clear() == 1
        cache.run(ENGINE_FACTORIES["simple"], "simple", workload, CONFIG)
        assert cache.misses == 2
